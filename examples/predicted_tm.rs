//! Predicted traffic matrices: route on a *forecast* and measure the MLU
//! on the matrix that actually arrives (§5.7). Compares the three TM
//! predictors and shows how an LP that optimizes the forecast exactly
//! ("Gurobi-Pred") performs on the true matrix.
//!
//! ```sh
//! cargo run --release --example predicted_tm
//! ```

use harp::models::{norm_mlu, Instance};
use harp::opt::MluOracle;
use harp::paths::TunnelSet;
use harp::topology::Topology;
use harp::traffic::predict::{ExpSmooth, LinReg, MovAvg, Predictor};
use harp::traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // a ring-with-chords WAN and a diurnal traffic series
    let mut topo = Topology::new(8);
    for i in 0..8 {
        topo.add_link(i, (i + 1) % 8, 100.0).unwrap();
    }
    topo.add_link(0, 4, 80.0).unwrap();
    topo.add_link(2, 6, 80.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &(0..8).collect::<Vec<_>>(), 3, 0.0);

    let mut cfg = GravityConfig::uniform(8, 400.0);
    cfg.diurnal_period = 24;
    cfg.noise_sigma = 0.12;
    let mut rng = StdRng::seed_from_u64(11);
    let tms = gravity_series(&cfg, &mut rng, 48);

    let oracle = MluOracle::default();
    let predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(MovAvg { window: 12 }),
        Box::new(ExpSmooth { alpha: 0.5 }),
        Box::new(LinReg { window: 12 }),
    ];

    println!("routing on forecasts, measuring on reality (LP-Pred = optimal for forecast):");
    println!(
        "  {:<12} {:>12} {:>16} {:>14}",
        "predictor", "TM error", "median NormMLU", "p90 NormMLU"
    );
    for p in &predictors {
        let mut nms = Vec::new();
        let mut errs = Vec::new();
        for t in 13..tms.len() {
            let history = &tms[t - 12..t];
            let predicted = p.predict(history);
            errs.push(tms[t].mean_relative_error(&predicted, 1e-9));

            // optimal routing for the forecast, applied to the real matrix
            let inst_pred = Instance::compile(&topo, &tunnels, &predicted);
            let pred_routing = oracle.solve(&inst_pred.program);
            let inst_true = Instance::compile(&topo, &tunnels, &tms[t]);
            let realized = inst_true.program.mlu(&pred_routing.splits);
            let best = oracle.solve(&inst_true.program).mlu;
            nms.push(norm_mlu(realized, best));
        }
        println!(
            "  {:<12} {:>11.1}% {:>16.3} {:>14.3}",
            p.name(),
            100.0 * errs.iter().sum::<f64>() / errs.len() as f64,
            harp::models::percentile(&nms, 50.0).expect("non-empty window"),
            harp::models::percentile(&nms, 90.0).expect("non-empty window"),
        );
    }
    println!(
        "\n(The paper's HARP-Pred closes most of this gap by *learning* to be\n\
         robust to forecast error — see `cargo run -p harp-bench --bin fig12`.)"
    );
}
