//! WAN evolution: generate a small AnonNet-like evolving WAN (clusters of
//! snapshots with changing topology, capacities, edge nodes and tunnels),
//! train HARP on the first clusters and test on later, unseen ones — the
//! paper's core transferability story end to end.
//!
//! ```sh
//! cargo run --release --example wan_evolution
//! ```

use harp::datasets::{AnonNetConfig, AnonNetDataset};
use harp::models::{
    evaluate_model, norm_mlu, train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig,
};
use harp::opt::MluOracle;
use harp::tensor::ParamStore;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // a compact evolving WAN: 10 clusters of snapshots
    let ds = AnonNetDataset::generate(&AnonNetConfig::tiny());
    println!(
        "AnonNet-like dataset: {} clusters, {} snapshots, universe of {} nodes",
        ds.clusters.len(),
        ds.num_snapshots(),
        ds.cfg.universe_nodes
    );
    for c in ds.clusters.iter().take(4) {
        let m = &c.snapshots[0].meta;
        println!(
            "  cluster {:>2}: {:>3} snapshots | {} active nodes, {} links, {} edge nodes, {} tunnels",
            c.id,
            c.snapshots.len(),
            m.active_nodes,
            m.active_links,
            c.edge_nodes.len(),
            c.tunnels.num_tunnels()
        );
    }

    let oracle = MluOracle::default();
    let labeled = |cid: usize| -> Vec<(Instance, f64)> {
        let c = &ds.clusters[cid];
        c.snapshots
            .iter()
            .map(|s| {
                let topo = c.topo_at(s);
                let inst = Instance::compile(&topo, &c.tunnels, &s.tm);
                let opt = oracle.solve(&inst.program).mlu;
                (inst, opt)
            })
            .collect()
    };

    // train on clusters 0-1, validate on 2
    let mut train_set = labeled(0);
    train_set.extend(labeled(1));
    let val_set = labeled(2);
    let train: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
    let val: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(2);
    let harp = Harp::new(&mut store, &mut rng, HarpConfig::default());
    let report = train_model(
        &harp,
        &mut store,
        &train,
        &val,
        TrainConfig {
            epochs: 8,
            batch_size: 8,
            ..Default::default()
        },
        EvalOptions::default(),
    )
    .expect("healthy training run");
    println!(
        "\ntrained on clusters 0-1 ({} snapshots): validation NormMLU {:.4}",
        train.len(),
        report.best_val
    );

    // test on the remaining, unseen clusters (different topologies/tunnels)
    println!("\ntransfer to unseen clusters:");
    for cid in 3..ds.clusters.len() {
        let test = labeled(cid);
        let nms: Vec<f64> = test
            .iter()
            .map(|(inst, opt)| {
                let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
                norm_mlu(mlu, *opt)
            })
            .collect();
        let med = harp::models::percentile(&nms, 50.0).expect("non-empty cluster");
        let max = harp::models::percentile(&nms, 100.0).expect("non-empty cluster");
        println!(
            "  cluster {cid:>2} ({} snapshots): median NormMLU {med:.3}, max {max:.3}",
            nms.len()
        );
    }
}
