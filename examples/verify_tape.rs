//! Demonstrates the `harp::verify` static analyzer on recorded tapes.
//!
//! Three scenarios:
//! 1. a real HARP training graph on the quickstart WAN — analyzes clean;
//! 2. a hand-built graph seeded with defects (NaN constant, unguarded
//!    division, parameter never reaching the loss) — each is diagnosed;
//! 3. the debug-build pre-flight inside `train_model` rejecting a model
//!    with an unreachable parameter before any gradient step runs.
//!
//! Run with `cargo run --example verify_tape`.

use harp::models::{
    mlu_loss, train_model, EvalOptions, Harp, HarpConfig, Instance, SplitModel, TrainConfig,
};
use harp::paths::TunnelSet;
use harp::tensor::{ParamStore, Tape, Var};
use harp::topology::Topology;
use harp::traffic::{gravity_series, GravityConfig};
use harp::verify::analyze;
use rand::{rngs::StdRng, SeedableRng};

/// The quickstart WAN: a 6-ring with two chords, 3-shortest-path tunnels,
/// one gravity-model traffic snapshot.
fn quickstart_instance() -> Instance {
    let mut topo = Topology::new(6);
    for i in 0..6 {
        topo.add_link(i, (i + 1) % 6, 100.0).expect("ring link");
    }
    topo.add_link(0, 3, 60.0).expect("chord");
    topo.add_link(1, 4, 60.0).expect("chord");
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 3, 0.0);
    let cfg = GravityConfig::uniform(topo.num_nodes(), 500.0);
    let mut rng = StdRng::seed_from_u64(1);
    let tm = &gravity_series(&cfg, &mut rng, 1)[0];
    Instance::compile(&topo, &tunnels, tm)
}

/// A model whose `orphan` parameter never reaches the loss — the kind of
/// wiring bug the pre-flight exists to catch.
struct OrphanModel {
    w: harp::tensor::ParamId,
    orphan: harp::tensor::ParamId,
}

impl SplitModel for OrphanModel {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, instance: &Instance) -> Var {
        let _dead = tape.param(store, self.orphan);
        let w = tape.param(store, self.w);
        let s = tape.sigmoid(w);
        tape.broadcast_scalar(s, instance.num_tunnels)
    }

    fn name(&self) -> &'static str {
        "orphan"
    }
}

fn main() {
    let inst = quickstart_instance();

    // 1. A real HARP training graph analyzes clean.
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let harp = Harp::new(
        &mut store,
        &mut rng,
        HarpConfig {
            gnn_layers: 2,
            gnn_hidden: 6,
            d_model: 8,
            settrans_layers: 1,
            heads: 2,
            d_ff: 16,
            mlp_hidden: 16,
            rau_iters: 2,
        },
    );
    let mut tape = Tape::new();
    let splits = harp.forward(&mut tape, &store, &inst);
    let loss = mlu_loss(&mut tape, splits, &inst);
    let report = analyze(&tape, loss, Some(&store));
    println!("== HARP training graph ({} tape nodes) ==", tape.len());
    println!("{report}");

    // 2. A graph seeded with defects: every class gets a diagnostic.
    let mut store = ParamStore::new();
    let used = store.register("used", vec![2], vec![0.5, 0.5]);
    let _orphan = store.register("orphan", vec![2], vec![1.0, 1.0]);
    let mut tape = Tape::new();
    let p = tape.param(&store, used);
    let bad = tape.constant(vec![2], vec![f32::NAN, 1.0]);
    let denom = tape.tanh(p); // range (-1, 1): may be zero
    let q = tape.div(bad, denom);
    let loss = tape.sum_all(q);
    let report = analyze(&tape, loss, Some(&store));
    println!("== seeded-defect graph ==");
    println!("{report}");

    // 3. train_model's debug-build pre-flight rejects the broken model.
    let mut store = ParamStore::new();
    let w = store.register("w", vec![], vec![0.0]);
    let orphan = store.register("orphan", vec![2], vec![1.0, 1.0]);
    let model = OrphanModel { w, orphan };
    let refs = vec![(&inst, 1.0)];
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        train_model(
            &model,
            &mut store,
            &refs,
            &[],
            TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            EvalOptions::default(),
        )
    }));
    println!("== train_model pre-flight (debug builds) ==");
    match outcome {
        Err(_) => println!("rejected the orphan-parameter model before training, as intended"),
        Ok(_) => println!("NOT rejected — pre-flight is only active in debug builds"),
    }
}
