//! Quickstart: build a small WAN, compute tunnels, train HARP for a few
//! epochs, and compare its routing with the optimal LP solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harp::models::{
    evaluate_model, norm_mlu, train_model, EvalOptions, Harp, HarpConfig, Instance, SplitModel,
    TrainConfig,
};
use harp::opt::MluOracle;
use harp::paths::TunnelSet;
use harp::tensor::ParamStore;
use harp::topology::Topology;
use harp::traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. A small WAN: 6 routers in a ring with two cross links.
    let mut topo = Topology::new(6);
    for i in 0..6 {
        topo.add_link(i, (i + 1) % 6, 100.0).expect("ring link");
    }
    topo.add_link(0, 3, 60.0).expect("chord");
    topo.add_link(1, 4, 60.0).expect("chord");
    println!(
        "topology: {} nodes / {} links",
        topo.num_nodes(),
        topo.links().len()
    );

    // 2. Tunnels: 3 shortest paths between every node pair.
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 3, 0.0);
    println!(
        "tunnels: {} flows x up to 3 paths = {} tunnels",
        tunnels.num_flows(),
        tunnels.num_tunnels()
    );

    // 3. Traffic: a seeded gravity-model series with temporal structure.
    let cfg = GravityConfig::uniform(topo.num_nodes(), 500.0);
    let mut rng = StdRng::seed_from_u64(1);
    let tms = gravity_series(&cfg, &mut rng, 24);

    // 4. Compile instances and get the optimal MLU for each (the paper
    //    normalizes everything against this oracle).
    let oracle = MluOracle::default();
    let labeled: Vec<(Instance, f64)> = tms
        .iter()
        .map(|tm| {
            let inst = Instance::compile(&topo, &tunnels, tm);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        })
        .collect();
    let (train, test) = labeled.split_at(18);
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();

    // 5. Train HARP.
    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(7);
    let harp = Harp::new(&mut store, &mut mrng, HarpConfig::default());
    println!("HARP parameters: {}", store.num_scalars());
    let report = train_model(
        &harp,
        &mut store,
        &train_refs,
        &train_refs[..4],
        TrainConfig {
            epochs: 8,
            batch_size: 6,
            ..Default::default()
        },
        EvalOptions::default(),
    )
    .expect("healthy training run");
    println!(
        "trained: best validation NormMLU {:.4} at epoch {}",
        report.best_val, report.best_epoch
    );

    // 6. Evaluate on held-out matrices.
    println!("\nheld-out results:");
    for (i, (inst, opt)) in test.iter().enumerate() {
        let (mlu, _) = evaluate_model(&harp, &store, inst, EvalOptions::default());
        println!(
            "  tm {:>2}: HARP MLU {:.4}  optimal {:.4}  NormMLU {:.3}",
            i,
            mlu,
            opt,
            norm_mlu(mlu, *opt)
        );
    }

    // 7. Inspect the learned split ratios of one flow.
    let (inst, _) = &test[0];
    let mut tape = harp::tensor::Tape::new();
    let splits = harp.forward(&mut tape, &store, inst);
    let v = tape.value(splits);
    println!("\nsplit ratios of flow 0 (its tunnels sum to 1):");
    let k = inst.tunnels_per_flow()[0];
    for (j, s) in v[..k].iter().enumerate() {
        println!("  tunnel {j}: {s:.3}");
    }
}
