//! Failure drill: train HARP on the healthy GEANT backbone, then fail each
//! link completely (without recomputing tunnels) and watch HARP route
//! around the failure — the paper's §5.5 experiment in miniature.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use harp::datasets::geant;
use harp::models::{
    boxplot_stats, evaluate_model, norm_mlu, train_model, EvalOptions, Harp, HarpConfig, Instance,
    TrainConfig,
};
use harp::opt::MluOracle;
use harp::paths::TunnelSet;
use harp::tensor::ParamStore;
use harp::traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let topo = geant();
    let n = topo.num_nodes();
    println!("GEANT: {} nodes / {} links", n, topo.links().len());
    let tunnels = TunnelSet::k_shortest(&topo, &(0..n).collect::<Vec<_>>(), 8, 0.0);

    // calibrated traffic
    let cfg = GravityConfig::uniform(n, 1.0);
    let mut rng = StdRng::seed_from_u64(5);
    let tms = gravity_series(&cfg, &mut rng, 20);
    let scale = harp::datasets::calibrate_demand_scale(&topo, &tunnels, &tms[..8], 0.7);
    let tms: Vec<_> = tms.iter().map(|t| t.scaled(scale)).collect();

    // train on the healthy topology
    let oracle = MluOracle::default();
    let labeled: Vec<(Instance, f64)> = tms
        .iter()
        .map(|tm| {
            let inst = Instance::compile(&topo, &tunnels, tm);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        })
        .collect();
    let train_refs: Vec<(&Instance, f64)> = labeled[..14].iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = labeled[14..16].iter().map(|(i, o)| (i, *o)).collect();

    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(3);
    let harp = Harp::new(&mut store, &mut mrng, HarpConfig::default());
    let report = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            epochs: 6,
            ..Default::default()
        },
        EvalOptions::default(),
    )
    .expect("healthy training run");
    println!(
        "trained on healthy GEANT: validation NormMLU {:.4}\n",
        report.best_val
    );

    // fail every fourth link (keep the example fast) and evaluate
    println!("single-link failure sweep (unseen in training, no rescaling):");
    println!(
        "  {:<10} {:>8} {:>8} {:>8}",
        "failed", "median", "p90", "max"
    );
    for (li, (u, v, f, r)) in topo.links().into_iter().enumerate() {
        if li % 4 != 0 {
            continue;
        }
        let mut failed = topo.clone();
        failed.set_capacity(f, 1e-4).unwrap();
        failed.set_capacity(r, 1e-4).unwrap();
        let mut nms = Vec::new();
        for tm in &tms[16..] {
            let inst = Instance::compile(&failed, &tunnels, tm);
            let opt = oracle.solve(&inst.program).mlu;
            let (mlu, _) = evaluate_model(&harp, &store, &inst, EvalOptions::default());
            nms.push(norm_mlu(mlu, opt));
        }
        let b = boxplot_stats(&nms).expect("non-empty drill window");
        println!(
            "  {u:>2}-{v:<7} {:>8.3} {:>8.3} {:>8.3}",
            b.median, b.p90, b.max
        );
    }
    println!("\n(HARP moves traffic off dead tunnels by itself — no local rescaling.)");
}
