//! Golden-statistics test: the default AnonNet configuration must keep the
//! §5.1 distributional properties the experiments rely on. If a generator
//! change drifts these, figures 1/3/15 stop matching the paper — fail fast
//! here instead.

use harp_datasets::{AnonNetConfig, AnonNetDataset};
use harp_paths::tunnel_churn;
use std::collections::HashMap;

fn dataset() -> AnonNetDataset {
    AnonNetDataset::generate(&AnonNetConfig::default())
}

#[test]
fn cluster_count_matches_paper() {
    let ds = dataset();
    assert_eq!(
        ds.clusters.len(),
        78,
        "paper groups snapshots into 78 clusters"
    );
    assert!(ds.num_snapshots() > 500);
}

#[test]
fn organic_growth_and_activity_gap() {
    let ds = dataset();
    let first = &ds.clusters.first().unwrap().snapshots[0].meta;
    let last = &ds.clusters.last().unwrap().snapshots[0].meta;
    assert!(last.total_nodes >= first.total_nodes);
    assert!(last.total_links >= first.total_links);
    // a meaningful share of snapshots must have inactive capacity somewhere
    let mut with_gap = 0usize;
    let mut total = 0usize;
    for c in &ds.clusters {
        for s in &c.snapshots {
            total += 1;
            if s.meta.active_links < s.meta.total_links {
                with_gap += 1;
            }
        }
    }
    assert!(
        with_gap as f64 / total as f64 > 0.5,
        "active < total in only {with_gap}/{total} snapshots"
    );
}

#[test]
fn tunnel_churn_in_paper_range() {
    let ds = dataset();
    let first = &ds.clusters[0];
    let last = ds.clusters.last().unwrap();
    let (common, only_last, only_first) =
        tunnel_churn(&first.tunnels, &first.topo, &last.tunnels, &last.topo);
    let frac_new = only_last as f64 / (common + only_last) as f64;
    let frac_gone = only_first as f64 / (common + only_first) as f64;
    // paper: ~20% new, ~8% gone; allow generous bands
    assert!(
        (0.05..0.45).contains(&frac_new),
        "unique-to-last fraction {frac_new}"
    );
    assert!(frac_gone < 0.30, "gone-from-first fraction {frac_gone}");
}

#[test]
fn capacity_variation_spread_over_dataset() {
    let ds = dataset();
    let mut per_link: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    for c in &ds.clusters {
        for (u, v, f, _) in c.topo.links() {
            let e = per_link.entry((u, v)).or_default();
            for s in &c.snapshots {
                e.push(s.capacities[f].to_bits());
            }
        }
    }
    let n = per_link.len() as f64;
    let multi = per_link
        .values()
        .filter(|vals| {
            let mut v = (*vals).clone();
            v.sort_unstable();
            v.dedup();
            v.len() > 1
        })
        .count() as f64;
    // paper: ~80% of links see more than one capacity value
    assert!(
        (0.5..=1.0).contains(&(multi / n)),
        "multi-value fraction {}",
        multi / n
    );
}

#[test]
fn every_cluster_is_usable_for_te() {
    let ds = dataset();
    for c in &ds.clusters {
        assert!(c.tunnels.num_flows() >= 2, "cluster {} has no flows", c.id);
        // every flow keeps at least one tunnel and demands are present
        let s = &c.snapshots[0];
        let demand: f64 = c
            .edge_nodes
            .iter()
            .flat_map(|&a| c.edge_nodes.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| s.tm.demand(a, b))
            .sum();
        assert!(demand > 0.0, "cluster {} carries no demand", c.id);
    }
}
