//! # harp-datasets
//!
//! Datasets for the HARP reproduction:
//!
//! * [`abilene`] / [`geant`] — embedded research WAN topologies (real link
//!   structure; GEANT capacities are representative tiers since the exact
//!   historical capacity map is not shipped with this repo).
//! * [`kdl_like`] / [`us_carrier_like`] / [`kdl_small`] — seeded synthetic
//!   graphs standing in for the Topology-Zoo KDL (754 nodes) and UsCarrier
//!   (158 nodes) graphs the paper uses for scale experiments.
//! * [`AnonNetConfig`] / [`AnonNetDataset`] — a seeded generator producing
//!   an evolving multi-cluster WAN snapshot stream with the statistical
//!   properties the paper reports for its private AnonNet dataset (§5.1):
//!   organic growth, active < total nodes/links, edge-node churn, per-link
//!   capacity levels from sub-link failures, rare full link failures, and
//!   tunnel churn across clusters.
//! * [`calibrate_demand_scale`] — scales a traffic series so a topology is
//!   meaningfully (but not hopelessly) loaded.

mod anonnet;
mod calibrate;
mod real;
mod zoo;

pub use anonnet::{
    AnonNetConfig, AnonNetDataset, Cluster, ClusterHeader, Snapshot, SnapshotDelta, SnapshotMeta,
    SnapshotStream, StreamItem,
};
pub use calibrate::calibrate_demand_scale;
pub use real::{abilene, geant};
pub use zoo::{kdl_like, kdl_small, us_carrier_like};
