//! The AnonNet-like evolving WAN generator.
//!
//! The paper evaluates on a private multi-week WAN snapshot stream. §5.1
//! characterizes it: snapshots group into 78 clusters (new cluster on any
//! change to active nodes, link additions, or the edge-node set); within a
//! cluster the tunnel set is fixed but link capacities vary (sub-link and
//! circuit failures produce multiple discrete capacity levels, occasionally
//! zero); across clusters the network organically grows and tunnels churn.
//!
//! This module reproduces that *distribution*: a seeded generator evolves a
//! universe topology through commissioning events, maintenance, edge-node
//! churn, and per-snapshot capacity dynamics, emitting the same artifacts
//! the paper's experiments consume (clusters with fixed tunnel sets +
//! per-snapshot capacities and traffic matrices). Figures 1, 3 and 15 are
//! *measured from the generated stream*, not hard-coded.

use std::collections::VecDeque;
use std::sync::Arc;

use harp_paths::TunnelSet;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::calibrate::calibrate_demand_scale;

/// Per-snapshot bookkeeping used by the Fig 1 measurements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Nodes commissioned so far (paper: "Total Nodes").
    pub total_nodes: usize,
    /// Commissioned nodes with at least one working link ("Active Nodes").
    pub active_nodes: usize,
    /// Number of edge nodes (traffic ingress/egress).
    pub edge_node_count: usize,
    /// Undirected links commissioned so far ("Total Links").
    pub total_links: usize,
    /// Undirected links with nonzero capacity in this snapshot.
    pub active_links: usize,
}

/// One topology+traffic snapshot within a cluster.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Global snapshot index across the dataset.
    pub time: usize,
    /// Per-directed-edge capacities aligned to the owning cluster's
    /// topology (full failures are floored at the configured `zero_cap`).
    pub capacities: Vec<f64>,
    /// The traffic matrix (indexed by universe node ids).
    pub tm: TrafficMatrix,
    /// Bookkeeping counters.
    pub meta: SnapshotMeta,
}

/// A maximal run of snapshots sharing active topology and tunnels.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Cluster index (0-based, chronological).
    pub id: usize,
    /// Topology over the full node universe; only this cluster's active
    /// links are present (capacities are the links' nominal values).
    pub topo: Topology,
    /// Edge nodes (traffic sources/sinks) for this cluster.
    pub edge_nodes: Vec<usize>,
    /// The tunnel set (recomputed per cluster, as the paper prescribes).
    pub tunnels: TunnelSet,
    /// The snapshots of this cluster, in time order.
    pub snapshots: Vec<Snapshot>,
}

impl Cluster {
    /// The topology as seen at `snapshot` (cluster links with that
    /// snapshot's capacities).
    pub fn topo_at(&self, snapshot: &Snapshot) -> Topology {
        let mut t = self.topo.clone();
        t.set_capacities(&snapshot.capacities)
            .expect("snapshot capacities align with cluster topology");
        t
    }
}

/// Generator configuration. Defaults produce a dataset with the §5.1
/// statistics at a scale trainable on CPU.
#[derive(Clone, Debug)]
pub struct AnonNetConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Total nodes ever commissioned.
    pub universe_nodes: usize,
    /// Nodes commissioned at dataset start.
    pub initial_nodes: usize,
    /// Undirected links in the final universe.
    pub universe_links: usize,
    /// Number of clusters to generate.
    pub num_clusters: usize,
    /// Snapshot-count range per cluster (inclusive); a few clusters are
    /// made `large_cluster_size` long to support within-cluster statistics.
    pub cluster_size_range: (usize, usize),
    /// Size of the three "large" clusters (paper's Fig 3/5/6 use the
    /// largest clusters).
    pub large_cluster_size: usize,
    /// Tunnels per flow (paper uses 15 on AnonNet).
    pub tunnels_per_flow: usize,
    /// Fraction of commissioned nodes acting as edge nodes.
    pub edge_node_fraction: f64,
    /// Sub-links per link (sampled uniformly in this inclusive range).
    pub sublinks_range: (usize, usize),
    /// Circuits per sub-link.
    pub circuits_per_sublink: usize,
    /// Per-snapshot probability a sub-link goes down (persisting a while).
    pub sublink_down_prob: f64,
    /// Per-snapshot probability a circuit degrades on an up sub-link.
    pub circuit_degrade_prob: f64,
    /// Per-snapshot probability of a *full* link failure (only applied when
    /// the active graph stays connected without the link).
    pub full_failure_prob: f64,
    /// Mean duration (snapshots) of sub-link/full failures.
    pub failure_duration: f64,
    /// Capacity floor substituted for failed links (paper uses 1e-4).
    pub zero_cap: f64,
    /// Nominal capacity tiers.
    pub capacity_tiers: [f64; 3],
    /// Target median uniform-split MLU after calibration.
    pub target_uniform_mlu: f64,
}

impl Default for AnonNetConfig {
    fn default() -> Self {
        AnonNetConfig {
            // Chosen so the default dataset sits inside the §5.1 golden
            // bands (tests/anonnet_stats.rs): first↔last tunnel churn
            // ~21% new / ~6% gone vs the paper's ~20% / ~8%.
            seed: 10,
            universe_nodes: 26,
            initial_nodes: 24,
            universe_links: 56,
            num_clusters: 78,
            cluster_size_range: (6, 18),
            large_cluster_size: 60,
            tunnels_per_flow: 15,
            edge_node_fraction: 0.5,
            sublinks_range: (1, 4),
            circuits_per_sublink: 4,
            sublink_down_prob: 0.004,
            circuit_degrade_prob: 0.002,
            full_failure_prob: 0.0005,
            failure_duration: 6.0,
            zero_cap: 1e-4,
            capacity_tiers: [400.0, 800.0, 1600.0],
            target_uniform_mlu: 0.75,
        }
    }
}

impl AnonNetConfig {
    /// A smaller/faster configuration for tests and quick experiment runs.
    pub fn tiny() -> Self {
        AnonNetConfig {
            universe_nodes: 14,
            initial_nodes: 11,
            universe_links: 26,
            num_clusters: 10,
            cluster_size_range: (4, 8),
            large_cluster_size: 16,
            tunnels_per_flow: 6,
            ..Default::default()
        }
    }
}

/// The generated dataset.
#[derive(Clone, Debug)]
pub struct AnonNetDataset {
    /// Generation parameters.
    pub cfg: AnonNetConfig,
    /// The final (fully-built) universe topology.
    pub universe: Topology,
    /// Clusters in chronological order.
    pub clusters: Vec<Cluster>,
}

/// Internal per-link dynamic state (symmetric across directions).
struct LinkState {
    nominal: f64,
    sublinks: usize,
    circuits: usize,
    /// remaining down-time per sub-link (0 = up)
    sub_down: Vec<u32>,
    /// remaining degraded-time per (sublink, circuit)
    circuit_down: Vec<u32>,
    /// remaining full-failure time
    full_down: u32,
}

impl LinkState {
    fn capacity(&self, zero_cap: f64) -> f64 {
        if self.full_down > 0 {
            return zero_cap;
        }
        let per_circuit = self.nominal / (self.sublinks * self.circuits) as f64;
        let mut up_circuits = 0usize;
        for s in 0..self.sublinks {
            if self.sub_down[s] > 0 {
                continue;
            }
            for c in 0..self.circuits {
                if self.circuit_down[s * self.circuits + c] == 0 {
                    up_circuits += 1;
                }
            }
        }
        if up_circuits == 0 {
            zero_cap
        } else {
            per_circuit * up_circuits as f64
        }
    }
}

/// What changed between consecutive [`SnapshotStream`] items.
#[derive(Clone, Debug, Default)]
pub struct SnapshotDelta {
    /// True when this item opens a new cluster (topology, tunnels, or
    /// edge-node set changed). `failed_links` then lists every link
    /// already down at cluster entry (the previous-state baseline is
    /// "all nominal").
    pub new_cluster: bool,
    /// Undirected links `(u, v)` that dropped to the zero-capacity floor
    /// since the previous item.
    pub failed_links: Vec<(usize, usize)>,
    /// Undirected links `(u, v)` that came back above the floor since the
    /// previous item.
    pub restored_links: Vec<(usize, usize)>,
}

/// The per-cluster invariants of a stream item, shared (via `Arc`) by
/// every snapshot of the cluster.
#[derive(Clone, Debug)]
pub struct ClusterHeader {
    /// Cluster index (0-based, chronological).
    pub id: usize,
    /// Topology over the full node universe; only this cluster's active
    /// links are present (capacities are the links' nominal values).
    pub topo: Topology,
    /// Edge nodes (traffic sources/sinks) for this cluster.
    pub edge_nodes: Vec<usize>,
    /// The tunnel set (recomputed per cluster, as the paper prescribes).
    pub tunnels: TunnelSet,
}

/// One streamed snapshot: its cluster, the snapshot itself (TM already
/// demand-calibrated), and the failure delta against the previous item.
#[derive(Clone, Debug)]
pub struct StreamItem {
    /// Per-cluster invariants.
    pub cluster: Arc<ClusterHeader>,
    /// The snapshot.
    pub snapshot: Snapshot,
    /// What changed since the previous item.
    pub delta: SnapshotDelta,
}

/// A pull-based, seeded snapshot stream: the same generator as
/// [`AnonNetDataset::generate`] (which is implemented on top of it),
/// yielding one snapshot at a time instead of materializing the whole
/// dataset. The lifecycle engine replays items as `topology_update` +
/// `infer` traffic; the figure harnesses collect them into clusters —
/// one code path, bitwise-identical output either way.
///
/// Cluster 0 is generated eagerly at construction (the single global
/// demand scale is calibrated on its unscaled traffic, exactly as the
/// batch generator does); later clusters are produced lazily as the
/// stream reaches them.
pub struct SnapshotStream {
    gen: GenState,
    scale: f64,
    current: Option<Arc<ClusterHeader>>,
    buffered: VecDeque<Snapshot>,
    /// Down-state per undirected link of the current cluster, in
    /// `topo.links()` order; drives the delta computation.
    prev_down: Vec<bool>,
    new_cluster: bool,
}

impl SnapshotStream {
    /// Open a stream over the dataset `cfg` describes (deterministic in
    /// `cfg.seed`).
    pub fn new(cfg: &AnonNetConfig) -> SnapshotStream {
        let mut gen = GenState::new(cfg);
        let first = gen.next_cluster().expect("num_clusters >= 1");
        let tms: Vec<TrafficMatrix> = first.snapshots.iter().map(|s| s.tm.clone()).collect();
        let scale =
            calibrate_demand_scale(&first.topo, &first.tunnels, &tms, cfg.target_uniform_mlu);
        let mut stream = SnapshotStream {
            gen,
            scale,
            current: None,
            buffered: VecDeque::new(),
            prev_down: Vec::new(),
            new_cluster: true,
        };
        stream.load_cluster(first);
        stream
    }

    /// The final (fully-built) universe topology.
    pub fn universe(&self) -> &Topology {
        &self.gen.universe
    }

    /// The global demand scale calibrated on cluster 0.
    pub fn demand_scale(&self) -> f64 {
        self.scale
    }

    fn load_cluster(&mut self, cluster: Cluster) {
        let Cluster {
            id,
            topo,
            edge_nodes,
            tunnels,
            snapshots,
        } = cluster;
        self.prev_down = vec![false; topo.links().len()];
        self.current = Some(Arc::new(ClusterHeader {
            id,
            topo,
            edge_nodes,
            tunnels,
        }));
        self.buffered = snapshots.into();
        self.new_cluster = true;
    }
}

impl Iterator for SnapshotStream {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        if self.buffered.is_empty() {
            let cluster = self.gen.next_cluster()?;
            self.load_cluster(cluster);
        }
        let mut snapshot = self.buffered.pop_front()?;
        // the batch generator applies the same factor to every snapshot,
        // so scaling at emission is bitwise-identical to scaling at the end
        snapshot.tm = snapshot.tm.scaled(self.scale);
        let header = Arc::clone(self.current.as_ref().expect("cluster loaded"));
        let mut delta = SnapshotDelta {
            new_cluster: self.new_cluster,
            ..SnapshotDelta::default()
        };
        for (li, (u, v, fwd, _)) in header.topo.links().into_iter().enumerate() {
            let down = snapshot.capacities[fwd] <= self.gen.cfg.zero_cap;
            if down && !self.prev_down[li] {
                delta.failed_links.push((u, v));
            } else if !down && self.prev_down[li] {
                delta.restored_links.push((u, v));
            }
            self.prev_down[li] = down;
        }
        self.new_cluster = false;
        Some(StreamItem {
            cluster: header,
            snapshot,
            delta,
        })
    }
}

impl AnonNetDataset {
    /// Generate the dataset (deterministic in `cfg.seed`). Implemented by
    /// draining a [`SnapshotStream`], so the batch and streaming paths
    /// cannot drift apart.
    pub fn generate(cfg: &AnonNetConfig) -> AnonNetDataset {
        let stream = SnapshotStream::new(cfg);
        let universe = stream.universe().clone();
        let mut clusters: Vec<Cluster> = Vec::with_capacity(cfg.num_clusters);
        for item in stream {
            if item.delta.new_cluster {
                clusters.push(Cluster {
                    id: item.cluster.id,
                    topo: item.cluster.topo.clone(),
                    edge_nodes: item.cluster.edge_nodes.clone(),
                    tunnels: item.cluster.tunnels.clone(),
                    snapshots: Vec::new(),
                });
            }
            let cluster = clusters
                .last_mut()
                .expect("stream opens with a new cluster");
            cluster.snapshots.push(item.snapshot);
        }
        AnonNetDataset {
            cfg: cfg.clone(),
            universe,
            clusters,
        }
    }

    /// Total snapshot count.
    pub fn num_snapshots(&self) -> usize {
        self.clusters.iter().map(|c| c.snapshots.len()).sum()
    }

    /// Indices of the `n` largest clusters (by snapshot count, descending).
    pub fn largest_clusters(&self, n: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.clusters.len()).collect();
        ids.sort_by_key(|&i| std::cmp::Reverse(self.clusters[i].snapshots.len()));
        ids.truncate(n);
        ids
    }
}

/// Incremental generator state: everything fixed at dataset start plus
/// the evolving topology/edge-set/RNG state, advanced one cluster at a
/// time by [`GenState::next_cluster`]. The RNG call sequence is exactly
/// the old monolithic generator's, so output is bitwise-unchanged.
struct GenState {
    cfg: AnonNetConfig,
    rng: StdRng,
    universe: Topology,
    /// BFS commissioning order (connected prefixes).
    order: Vec<usize>,
    commissioned: Vec<bool>,
    next_commission: usize,
    /// Universal undirected link list (u < v) with nominal capacities.
    links: Vec<(usize, usize, f64)>,
    /// Per-link long-term maintenance flag (down across clusters).
    maintenance: Vec<bool>,
    /// Per-link (sublinks, circuits) structure, fixed for the dataset.
    link_structs: Vec<(usize, usize)>,
    /// Links that never degrade (fully protected metro fiber).
    link_stable: Vec<bool>,
    /// Gravity node weights, fixed for the whole dataset.
    node_weight: Vec<f64>,
    /// Per-pair diurnal phases, fixed for the whole dataset.
    phases: Vec<f64>,
    edge_nodes: Vec<usize>,
    edge_net_adds: i64,
    removed_edge: Vec<usize>,
    /// Cluster ids forced to `large_cluster_size` snapshots.
    large_ids: Vec<usize>,
    /// Global snapshot index.
    time: usize,
    next_cid: usize,
}

impl GenState {
    fn new(cfg: &AnonNetConfig) -> GenState {
        assert!(cfg.initial_nodes >= 3 && cfg.initial_nodes <= cfg.universe_nodes);
        assert!(cfg.num_clusters >= 1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // --- final universe and commissioning order ---
        let universe = harp_topology::geometric_wan(
            harp_topology::GeometricConfig {
                nodes: cfg.universe_nodes,
                links: cfg.universe_links,
                capacity_tiers: cfg.capacity_tiers,
            },
            &mut rng,
        );
        // BFS commissioning order keeps every prefix connected.
        let order = bfs_order(&universe);
        let mut commissioned = vec![false; cfg.universe_nodes];
        for &u in order.iter().take(cfg.initial_nodes) {
            commissioned[u] = true;
        }

        // universal undirected link list (u < v) with nominal capacities
        let links: Vec<(usize, usize, f64)> = universe
            .links()
            .iter()
            .map(|&(u, v, f, _)| (u, v, universe.capacity(f)))
            .collect();

        // per-link sub-link structure, fixed for the dataset
        let link_structs: Vec<(usize, usize)> = (0..links.len())
            .map(|_| {
                (
                    rng.gen_range(cfg.sublinks_range.0..=cfg.sublinks_range.1),
                    cfg.circuits_per_sublink,
                )
            })
            .collect();
        // ~25% of links are "stable" (fully protected metro fiber): they
        // never degrade — this reproduces the paper's observation that a
        // sizable minority of links show exactly one capacity value across
        // the whole dataset (Fig 15).
        let link_stable: Vec<bool> = (0..links.len()).map(|_| rng.gen_bool(0.25)).collect();

        // gravity node weights fixed for the whole dataset
        let node_weight: Vec<f64> = (0..cfg.universe_nodes)
            .map(|_| {
                let u: f64 = rng.gen_range(0.05..1.0);
                u.powf(1.5) + 0.1
            })
            .collect();
        // per-pair diurnal phases fixed for the whole dataset
        let phases: Vec<f64> = (0..cfg.universe_nodes * cfg.universe_nodes)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();

        // initial edge nodes
        let edge_nodes: Vec<usize> = {
            let mut cands: Vec<usize> = (0..cfg.universe_nodes)
                .filter(|&u| commissioned[u])
                .collect();
            cands.shuffle(&mut rng);
            let n = ((cfg.initial_nodes as f64) * cfg.edge_node_fraction).round() as usize;
            let mut e = cands[..n.max(2)].to_vec();
            e.sort_unstable();
            e
        };

        // The first three clusters are the "large" ones: they serve as the
        // paper's training clusters (Fig 4/16) and as the largest clusters
        // used for the within-cluster comparisons (Figs 3/5/6), and making
        // them long gives training the capacity-configuration diversity
        // the paper's multi-week training windows have.
        let large_ids: Vec<usize> = (0..cfg.num_clusters.min(3)).collect();

        GenState {
            cfg: cfg.clone(),
            rng,
            universe,
            order,
            commissioned,
            next_commission: cfg.initial_nodes,
            maintenance: vec![false; links.len()],
            links,
            link_structs,
            link_stable,
            node_weight,
            phases,
            edge_nodes,
            // net edge-node additions are capped so the first and last
            // clusters keep comparable flow sets (the paper's churn is only
            // ~20%), and removed edge nodes are preferentially re-added
            // (maintenance toggles membership; it rarely changes it
            // permanently)
            edge_net_adds: 0,
            removed_edge: Vec::new(),
            large_ids,
            time: 0,
            next_cid: 0,
        }
    }

    /// Advance past one cluster boundary and generate the next cluster
    /// (snapshots carry **unscaled** traffic; the caller applies the
    /// global demand scale). `None` once `cfg.num_clusters` are done.
    fn next_cluster(&mut self) -> Option<Cluster> {
        if self.next_cid >= self.cfg.num_clusters {
            return None;
        }
        let cid = self.next_cid;
        self.next_cid += 1;
        let GenState {
            cfg,
            rng,
            order,
            commissioned,
            next_commission,
            links,
            maintenance,
            link_structs,
            link_stable,
            node_weight,
            phases,
            edge_nodes,
            edge_net_adds,
            removed_edge,
            large_ids,
            time,
            ..
        } = self;
        let diurnal_period = 96usize;
        let diurnal_amp = 0.3;
        let noise_sigma = 0.08;

        // --- cluster-boundary events (at least one per boundary) ---
        if cid > 0 {
            let mut changed = false;
            for _ in 0..4 {
                // event mix: commissioning and maintenance dominate;
                // edge-node churn is rarer (it reshapes many flows and
                // the paper's tunnel churn between first/last cluster
                // is only ~20%)
                let ev = match rng.gen_range(0..100) {
                    0..=24 => 0,
                    25..=58 => 1,
                    59..=93 => 2,
                    _ => 3,
                };
                match ev {
                    0 if *next_commission < cfg.universe_nodes => {
                        commissioned[order[*next_commission]] = true;
                        *next_commission += 1;
                        changed = true;
                    }
                    1 => {
                        // start maintenance on a random non-cut link
                        let cand: Vec<usize> = (0..links.len())
                            .filter(|&l| {
                                !maintenance[l]
                                    && link_removal_keeps_connectivity(
                                        links,
                                        maintenance,
                                        commissioned,
                                        l,
                                    )
                            })
                            .collect();
                        if let Some(&l) = cand.choose(&mut *rng) {
                            maintenance[l] = true;
                            changed = true;
                        }
                    }
                    2 => {
                        // end maintenance somewhere
                        let cand: Vec<usize> = (0..links.len())
                            .filter(|&l| {
                                maintenance[l]
                                    && commissioned[links[l].0]
                                    && commissioned[links[l].1]
                            })
                            .collect();
                        if let Some(&l) = cand.choose(&mut *rng) {
                            maintenance[l] = false;
                            changed = true;
                        }
                    }
                    _ => {
                        // edge-node churn (biased toward additions so
                        // the edge set grows mildly over the dataset,
                        // matching Fig 1a)
                        let min_edge = ((cfg.initial_nodes as f64) * cfg.edge_node_fraction * 0.8)
                            .round() as usize;
                        if rng.gen_bool(0.4)
                            && edge_nodes.len() > min_edge.max(3)
                            && *edge_net_adds > -1
                        {
                            let i = rng.gen_range(0..edge_nodes.len());
                            removed_edge.push(edge_nodes.remove(i));
                            *edge_net_adds -= 1;
                            changed = true;
                        } else if *edge_net_adds < 1 {
                            // re-add a previously removed edge node if
                            // any; otherwise promote a new one
                            let u = if let Some(u) = removed_edge.pop() {
                                Some(u)
                            } else {
                                let cand: Vec<usize> = (0..cfg.universe_nodes)
                                    .filter(|&u| commissioned[u] && !edge_nodes.contains(&u))
                                    .collect();
                                cand.choose(&mut *rng).copied()
                            };
                            if let Some(u) = u {
                                edge_nodes.push(u);
                                edge_nodes.sort_unstable();
                                *edge_net_adds += 1;
                                changed = true;
                            }
                        }
                    }
                }
                if changed && rng.gen_bool(0.7) {
                    break;
                }
            }
        }

        // --- cluster topology ---
        let mut topo = Topology::new(cfg.universe_nodes);
        let mut cluster_links: Vec<usize> = Vec::new();
        for (l, &(u, v, cap)) in links.iter().enumerate() {
            if commissioned[u] && commissioned[v] && !maintenance[l] {
                topo.add_link(u, v, cap).expect("cluster link");
                cluster_links.push(l);
            }
        }
        let tunnels = TunnelSet::k_shortest(&topo, edge_nodes, cfg.tunnels_per_flow, 0.0);

        // --- per-snapshot dynamics ---
        let n_snapshots = if large_ids.contains(&cid) {
            cfg.large_cluster_size
        } else {
            rng.gen_range(cfg.cluster_size_range.0..=cfg.cluster_size_range.1)
        };

        let mut states: Vec<LinkState> = cluster_links
            .iter()
            .map(|&l| {
                let (sub, circ) = link_structs[l];
                LinkState {
                    nominal: links[l].2,
                    sublinks: sub,
                    circuits: circ,
                    sub_down: vec![0; sub],
                    circuit_down: vec![0; sub * circ],
                    full_down: 0,
                }
            })
            .collect();

        let total_nodes = commissioned.iter().filter(|c| **c).count();
        let total_links = links
            .iter()
            .filter(|&&(u, v, _)| commissioned[u] && commissioned[v])
            .count();

        let mut snapshots = Vec::with_capacity(n_snapshots);
        for _ in 0..n_snapshots {
            // advance failure state machines
            for (si, st) in states.iter_mut().enumerate() {
                for d in st.sub_down.iter_mut().chain(st.circuit_down.iter_mut()) {
                    if *d > 0 {
                        *d -= 1;
                    }
                }
                if st.full_down > 0 {
                    st.full_down -= 1;
                }
                if link_stable[cluster_links[si]] {
                    continue;
                }
                for s in 0..st.sublinks {
                    if st.sub_down[s] == 0 && rng.gen_bool(cfg.sublink_down_prob) {
                        // lint: allow(as-cast) — duration in slots, exp-tail bounded far below u32::MAX
                        st.sub_down[s] = 1 + (cfg.failure_duration * rng_exp(&mut *rng)) as u32;
                    }
                    for c in 0..st.circuits {
                        let i = s * st.circuits + c;
                        if st.circuit_down[i] == 0 && rng.gen_bool(cfg.circuit_degrade_prob) {
                            st.circuit_down[i] = 1
                                // lint: allow(as-cast) — duration in slots, bounded below u32::MAX
                                + (cfg.failure_duration * rng_exp(&mut *rng)) as u32;
                        }
                    }
                }
                if st.full_down == 0 && rng.gen_bool(cfg.full_failure_prob) {
                    // only fail fully if the cluster graph stays connected
                    let l = cluster_links[si];
                    if link_removal_keeps_connectivity(links, maintenance, commissioned, l) {
                        // lint: allow(as-cast) — duration in slots, exp-tail bounded far below u32::MAX
                        st.full_down = 2 + (cfg.failure_duration * rng_exp(&mut *rng)) as u32;
                    }
                }
            }

            // capacities per directed edge (symmetric)
            let mut caps = vec![0.0f64; topo.num_edges()];
            for (si, &l) in cluster_links.iter().enumerate() {
                let c = states[si].capacity(cfg.zero_cap);
                let (u, v, _) = links[l];
                let fwd = topo.edge_id(u, v).expect("generated link present");
                let rev = topo.edge_id(v, u).expect("generated link present");
                caps[fwd] = c;
                caps[rev] = c;
            }

            // traffic matrix
            let mut tm = TrafficMatrix::zeros(cfg.universe_nodes);
            let mut base_total = 0.0;
            for &s in edge_nodes.iter() {
                for &t in edge_nodes.iter() {
                    if s != t {
                        base_total += node_weight[s] * node_weight[t];
                    }
                }
            }
            let norm = if base_total > 0.0 {
                1.0 / base_total
            } else {
                0.0
            };
            for &s in edge_nodes.iter() {
                for &t in edge_nodes.iter() {
                    if s == t {
                        continue;
                    }
                    let base = node_weight[s] * node_weight[t] * norm;
                    let diurnal = 1.0
                        + diurnal_amp
                            * (std::f64::consts::TAU * *time as f64 / diurnal_period as f64
                                + phases[s * cfg.universe_nodes + t])
                                .sin();
                    let noise = lognormal(&mut *rng, noise_sigma);
                    tm.set_demand(s, t, (base * diurnal * noise).max(0.0));
                }
            }

            let active_links = caps
                .iter()
                .step_by(1)
                .enumerate()
                .filter(|(e, c)| {
                    // count undirected links once (forward direction)
                    let edge = topo.edge(*e);
                    edge.src < edge.dst && **c > cfg.zero_cap
                })
                .count();
            let mut node_active = vec![false; cfg.universe_nodes];
            for (e, c) in caps.iter().enumerate() {
                if *c > cfg.zero_cap {
                    node_active[topo.edge(e).src] = true;
                    node_active[topo.edge(e).dst] = true;
                }
            }
            let meta = SnapshotMeta {
                total_nodes,
                active_nodes: node_active.iter().filter(|a| **a).count(),
                edge_node_count: edge_nodes.len(),
                total_links,
                active_links,
            };

            snapshots.push(Snapshot {
                time: *time,
                capacities: caps,
                tm,
                meta,
            });
            *time += 1;
        }

        Some(Cluster {
            id: cid,
            topo,
            edge_nodes: edge_nodes.clone(),
            tunnels,
            snapshots,
        })
    }
}

/// BFS order over the final universe (any start), guaranteeing connected
/// prefixes.
fn bfs_order(topo: &Topology) -> Vec<usize> {
    let n = topo.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    seen[0] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &(v, _) in topo.out_neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    // isolated nodes (shouldn't happen for connected universes) go last
    for u in 0..n {
        if !seen[u] {
            order.push(u);
        }
    }
    order
}

/// Does removing link `l` keep the commissioned, non-maintenance subgraph
/// connected?
fn link_removal_keeps_connectivity(
    links: &[(usize, usize, f64)],
    maintenance: &[bool],
    commissioned: &[bool],
    l: usize,
) -> bool {
    let n = commissioned.len();
    let nodes: Vec<usize> = (0..n).filter(|&u| commissioned[u]).collect();
    if nodes.len() <= 1 {
        return true;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(u, v, _)) in links.iter().enumerate() {
        if i != l && !maintenance[i] && commissioned[u] && commissioned[v] {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let mut seen = vec![false; n];
    let mut stack = vec![nodes[0]];
    seen[nodes[0]] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == nodes.len()
}

/// Exp(1) sample.
fn rng_exp<R: Rng>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln()
}

/// Lognormal(0, sigma) sample via Box–Muller.
fn lognormal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AnonNetDataset {
        AnonNetDataset::generate(&AnonNetConfig::tiny())
    }

    #[test]
    fn generates_requested_clusters() {
        let ds = tiny();
        assert_eq!(ds.clusters.len(), 10);
        assert!(ds.num_snapshots() > 10);
        for c in &ds.clusters {
            assert!(!c.snapshots.is_empty());
            assert!(c.tunnels.num_flows() > 0);
            assert!(c.edge_nodes.len() >= 2);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.num_snapshots(), b.num_snapshots());
        let sa = &a.clusters[3].snapshots[0];
        let sb = &b.clusters[3].snapshots[0];
        assert_eq!(sa.capacities, sb.capacities);
        assert_eq!(sa.tm, sb.tm);
    }

    #[test]
    fn snapshot_capacities_align_and_are_positive() {
        let ds = tiny();
        for c in &ds.clusters {
            for s in &c.snapshots {
                assert_eq!(s.capacities.len(), c.topo.num_edges());
                assert!(s.capacities.iter().all(|&x| x >= ds.cfg.zero_cap));
                // symmetric capacities
                for (u, v, f, r) in c.topo.links() {
                    let _ = (u, v);
                    assert_eq!(s.capacities[f], s.capacities[r]);
                }
            }
        }
    }

    #[test]
    fn topology_evolves_over_time() {
        let ds = AnonNetDataset::generate(&AnonNetConfig {
            num_clusters: 30,
            ..AnonNetConfig::tiny()
        });
        let first = &ds.clusters.first().unwrap().snapshots[0].meta;
        let last = &ds.clusters.last().unwrap().snapshots[0].meta;
        assert!(
            last.total_nodes >= first.total_nodes,
            "nodes only get commissioned"
        );
        // some growth happened across 30 cluster boundaries
        assert!(last.total_nodes > first.total_nodes || last.total_links != first.total_links);
    }

    #[test]
    fn capacity_variation_exists_within_large_cluster() {
        let ds = tiny();
        let large = ds.largest_clusters(1)[0];
        let c = &ds.clusters[large];
        // at least one link shows more than one distinct capacity value
        let mut varying = 0;
        for e in 0..c.topo.num_edges() {
            let mut vals: Vec<u64> = c
                .snapshots
                .iter()
                .map(|s| s.capacities[e].to_bits())
                .collect();
            vals.sort_unstable();
            vals.dedup();
            if vals.len() > 1 {
                varying += 1;
            }
        }
        assert!(varying > 0, "no capacity variation generated");
    }

    #[test]
    fn active_counts_bounded_by_totals() {
        let ds = tiny();
        for c in &ds.clusters {
            for s in &c.snapshots {
                assert!(s.meta.active_nodes <= s.meta.total_nodes);
                assert!(s.meta.active_links <= s.meta.total_links);
                assert!(s.meta.edge_node_count <= s.meta.active_nodes);
            }
        }
    }

    #[test]
    fn stream_and_generate_agree_bitwise() {
        let cfg = AnonNetConfig::tiny();
        let ds = AnonNetDataset::generate(&cfg);
        let items: Vec<StreamItem> = SnapshotStream::new(&cfg).collect();
        assert_eq!(items.len(), ds.num_snapshots());
        let flat: Vec<(&Cluster, &Snapshot)> = ds
            .clusters
            .iter()
            .flat_map(|c| c.snapshots.iter().map(move |s| (c, s)))
            .collect();
        for (item, &(c, s)) in items.iter().zip(&flat) {
            assert_eq!(item.cluster.id, c.id);
            assert_eq!(item.cluster.edge_nodes, c.edge_nodes);
            assert_eq!(item.snapshot.time, s.time);
            assert_eq!(item.snapshot.capacities, s.capacities);
            assert_eq!(item.snapshot.tm, s.tm);
            assert_eq!(item.snapshot.meta, s.meta);
        }
        // cluster boundaries are flagged exactly where generate() cuts them
        let boundaries: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, i)| i.delta.new_cluster)
            .map(|(k, _)| k)
            .collect();
        let mut expect = Vec::new();
        let mut at = 0;
        for c in &ds.clusters {
            expect.push(at);
            at += c.snapshots.len();
        }
        assert_eq!(boundaries, expect);
    }

    #[test]
    fn stream_deltas_replay_the_failure_sets() {
        use std::collections::BTreeSet;
        let cfg = AnonNetConfig::tiny();
        let mut down: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut saw_any_failure = false;
        for item in SnapshotStream::new(&cfg) {
            if item.delta.new_cluster {
                down.clear();
            }
            for &l in &item.delta.failed_links {
                assert!(down.insert(l), "link {l:?} failed twice without restore");
                saw_any_failure = true;
            }
            for &l in &item.delta.restored_links {
                assert!(down.remove(&l), "link {l:?} restored while up");
            }
            // accumulated deltas must reproduce the snapshot's down-set
            let mut expect = BTreeSet::new();
            for (u, v, fwd, _) in item.cluster.topo.links() {
                if item.snapshot.capacities[fwd] <= cfg.zero_cap {
                    expect.insert((u, v));
                }
            }
            assert_eq!(down, expect);
        }
        // the tiny config does produce full failures; if this stops being
        // true the test above is vacuous
        assert!(saw_any_failure, "no full failure in the tiny dataset");
    }

    #[test]
    fn topo_at_applies_capacities() {
        let ds = tiny();
        let c = &ds.clusters[0];
        let s = &c.snapshots[0];
        let t = c.topo_at(s);
        for e in 0..t.num_edges() {
            assert_eq!(t.capacity(e), s.capacities[e]);
        }
    }
}
