//! Demand calibration: scale a traffic series so a topology is loaded to a
//! target uniform-split MLU (keeping the optimal MLU comfortably below 1,
//! as the paper arranges by its choice of tunnel count).

use harp_opt::PathProgram;
use harp_paths::TunnelSet;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;

/// Return the factor by which `tms` should be scaled so that the *median*
/// matrix, routed with uniform splits over `tunnels`, hits `target_mlu`.
/// Returns 1.0 when the series carries no load.
pub fn calibrate_demand_scale(
    topo: &Topology,
    tunnels: &TunnelSet,
    tms: &[TrafficMatrix],
    target_mlu: f64,
) -> f64 {
    assert!(target_mlu > 0.0, "target MLU must be positive");
    assert!(!tms.is_empty(), "need at least one traffic matrix");
    let mut mlus: Vec<f64> = tms
        .iter()
        .map(|tm| {
            let prog = PathProgram::new(topo, tunnels, tm);
            prog.mlu(&prog.uniform_splits())
        })
        .filter(|m| m.is_finite() && *m > 0.0)
        .collect();
    if mlus.is_empty() {
        return 1.0;
    }
    mlus.sort_by(|a, b| a.total_cmp(b));
    let median = mlus[mlus.len() / 2];
    target_mlu / median
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_traffic::{gravity_series, GravityConfig};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn calibration_hits_target() {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 100.0).unwrap();
        topo.add_link(1, 2, 100.0).unwrap();
        topo.add_link(2, 3, 100.0).unwrap();
        topo.add_link(3, 0, 100.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 2, 0.0);
        let cfg = GravityConfig::uniform(4, 50.0);
        let mut rng = StdRng::seed_from_u64(5);
        let tms = gravity_series(&cfg, &mut rng, 9);
        let scale = calibrate_demand_scale(&topo, &tunnels, &tms, 0.8);
        let scaled: Vec<_> = tms.iter().map(|t| t.scaled(scale)).collect();
        let mut mlus: Vec<f64> = scaled
            .iter()
            .map(|tm| {
                let p = PathProgram::new(&topo, &tunnels, tm);
                p.mlu(&p.uniform_splits())
            })
            .collect();
        mlus.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((mlus[mlus.len() / 2] - 0.8).abs() < 1e-9);
    }
}
