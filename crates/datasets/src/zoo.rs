//! Topology-Zoo-scale synthetic stand-ins (documented substitution: the
//! exact KDL/UsCarrier graphs are not shipped; these match node/link counts
//! and WAN-like sparsity).

use harp_topology::{geometric_wan, GeometricConfig, Topology};
use rand::{rngs::StdRng, SeedableRng};

fn zoo_graph(nodes: usize, links: usize, seed: u64) -> Topology {
    let cfg = GeometricConfig {
        nodes,
        links,
        capacity_tiers: [1_000.0, 10_000.0, 40_000.0],
    };
    let mut rng = StdRng::seed_from_u64(seed);
    geometric_wan(cfg, &mut rng)
}

/// KDL-scale graph: 754 nodes / 895 undirected links (Topology Zoo's KDL
/// is 754 nodes, ~895 links). Used for computation-time scaling (Fig 11).
pub fn kdl_like() -> Topology {
    zoo_graph(754, 895, 0xD754)
}

/// UsCarrier-scale graph: 158 nodes / 189 undirected links.
pub fn us_carrier_like() -> Topology {
    zoo_graph(158, 189, 0xCA11)
}

/// A scaled-down KDL used for *training* experiments on this CPU-only
/// reproduction (Figs 7, 8, 18a): 96 nodes / 150 undirected links with the
/// same generator family and capacity tiers.
pub fn kdl_small() -> Topology {
    zoo_graph(96, 150, 0xD1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_targets() {
        let k = kdl_small();
        assert_eq!(k.num_nodes(), 96);
        assert_eq!(k.links().len(), 150);
        assert!(k.is_strongly_connected(0.0));

        let u = us_carrier_like();
        assert_eq!(u.num_nodes(), 158);
        assert_eq!(u.links().len(), 189);
        assert!(u.is_strongly_connected(0.0));
    }

    #[test]
    #[ignore = "slow: full 754-node build"]
    fn kdl_full_size() {
        let t = kdl_like();
        assert_eq!(t.num_nodes(), 754);
        assert_eq!(t.links().len(), 895);
        assert!(t.is_strongly_connected(0.0));
    }
}
