//! Embedded research WAN topologies.

use harp_topology::Topology;

/// The Abilene research backbone: 12 nodes (including the ATLA-M5
/// measurement node used by the public TM dataset), 15 bidirectional
/// links. Capacities are the historical OC-192 (~9.92 Gbps) trunks with the
/// OC-48 (~2.48 Gbps) ATLA–ATLA-M5 spur, in Mbps.
///
/// Node order: 0 STTL, 1 SNVA, 2 DNVR, 3 LOSA, 4 HSTN, 5 KSCY, 6 IPLS,
/// 7 ATLA, 8 WASH, 9 NYCM, 10 CHIN, 11 ATLA-M5.
pub fn abilene() -> Topology {
    let oc192 = 9920.0;
    let oc48 = 2480.0;
    let links = [
        (0usize, 1usize, oc192), // STTL - SNVA
        (0, 2, oc192),           // STTL - DNVR
        (1, 3, oc192),           // SNVA - LOSA
        (1, 2, oc192),           // SNVA - DNVR
        (3, 4, oc192),           // LOSA - HSTN
        (2, 5, oc192),           // DNVR - KSCY
        (4, 5, oc192),           // HSTN - KSCY
        (4, 7, oc192),           // HSTN - ATLA
        (5, 6, oc192),           // KSCY - IPLS
        (6, 10, oc192),          // IPLS - CHIN
        (6, 7, oc192),           // IPLS - ATLA
        (10, 9, oc192),          // CHIN - NYCM
        (7, 8, oc192),           // ATLA - WASH
        (8, 9, oc192),           // WASH - NYCM
        (7, 11, oc48),           // ATLA - ATLA-M5
    ];
    let mut t = Topology::new(12);
    for (u, v, c) in links {
        t.add_link(u, v, c).expect("abilene link");
    }
    t
}

/// A 22-node GEANT-like European research backbone with 38 bidirectional
/// links. The node set and mesh density match the GEANT snapshot used by
/// the TOTEM traffic-matrix dataset; the exact adjacency is an
/// approximation (documented substitution — see DESIGN.md), with capacity
/// tiers of 10 Gbps core, 2.5 Gbps regional and 622 Mbps spur links (Mbps).
///
/// Node order: 0 AT, 1 BE, 2 CH, 3 CZ, 4 DE, 5 ES, 6 FR, 7 GR, 8 HR, 9 HU,
/// 10 IE, 11 IL, 12 IT, 13 LU, 14 NL, 15 PL, 16 PT, 17 SE, 18 SI, 19 SK,
/// 20 UK, 21 NY (US peering).
pub fn geant() -> Topology {
    let g10 = 10_000.0;
    let g2 = 2_500.0;
    let g06 = 622.0;
    let links = [
        // 10G core ring + meshes
        (4usize, 6usize, g10), // DE - FR
        (4, 14, g10),          // DE - NL
        (4, 12, g10),          // DE - IT
        (4, 2, g10),           // DE - CH
        (4, 17, g10),          // DE - SE
        (4, 15, g10),          // DE - PL
        (4, 3, g10),           // DE - CZ
        (4, 0, g10),           // DE - AT
        (6, 2, g10),           // FR - CH
        (6, 20, g10),          // FR - UK
        (6, 5, g10),           // FR - ES
        (14, 20, g10),         // NL - UK
        (14, 1, g10),          // NL - BE
        (20, 21, g10),         // UK - NY
        (4, 21, g10),          // DE - NY
        (12, 2, g10),          // IT - CH
        (12, 0, g10),          // IT - AT
        (0, 9, g10),           // AT - HU
        (0, 18, g2),           // AT - SI
        (0, 3, g2),            // AT - CZ
        // 2.5G regional
        (1, 6, g2),   // BE - FR
        (3, 19, g2),  // CZ - SK
        (19, 9, g2),  // SK - HU
        (9, 8, g2),   // HU - HR
        (18, 8, g2),  // SI - HR
        (15, 3, g2),  // PL - CZ
        (17, 15, g2), // SE - PL
        (20, 10, g2), // UK - IE
        (5, 16, g2),  // ES - PT
        (5, 12, g2),  // ES - IT
        (7, 12, g2),  // GR - IT
        (7, 0, g2),   // GR - AT
        (11, 12, g2), // IL - IT
        (13, 4, g2),  // LU - DE
        (13, 6, g2),  // LU - FR
        // spurs
        (16, 20, g06), // PT - UK
        (11, 14, g06), // IL - NL
        (10, 14, g06), // IE - NL
    ];
    let mut t = Topology::new(22);
    for (u, v, c) in links {
        t.add_link(u, v, c).expect("geant link");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abilene_shape() {
        let t = abilene();
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.links().len(), 15);
        assert!(t.is_strongly_connected(0.0));
    }

    #[test]
    fn geant_shape() {
        let t = geant();
        assert_eq!(t.num_nodes(), 22);
        assert_eq!(t.links().len(), 38);
        assert!(t.is_strongly_connected(0.0));
    }

    #[test]
    fn geant_survives_any_single_link_failure() {
        // the paper's failure drills require the graph to stay connected
        let t = geant();
        for (u, v, f, r) in t.links() {
            let mut t2 = t.clone();
            t2.set_capacity(f, 0.0).unwrap();
            t2.set_capacity(r, 0.0).unwrap();
            assert!(
                t2.is_strongly_connected(1e-9),
                "failure of {u}-{v} disconnects GEANT"
            );
        }
    }

    #[test]
    fn abilene_single_failures_leave_at_most_spur_disconnected() {
        // the ATLA-M5 spur is the only cut link in Abilene
        let t = abilene();
        let mut cut_links = 0;
        for (_, _, f, r) in t.links() {
            let mut t2 = t.clone();
            t2.set_capacity(f, 0.0).unwrap();
            t2.set_capacity(r, 0.0).unwrap();
            if !t2.is_strongly_connected(1e-9) {
                cut_links += 1;
            }
        }
        assert_eq!(cut_links, 1);
    }
}
