//! One serving shard: a single-owner batcher thread plus its published
//! metadata.
//!
//! A shard is the PR-4 batcher, made multipliable. Each shard exclusively
//! owns its [`NetworkState`], its `Arc<ParamStore>`, and its
//! topology-epoch embedding cache — the single-owner concurrency model is
//! unchanged, there are just N owners now. What the router needs to make
//! decisions (queue depth, current epoch, liveness) is published through
//! [`ShardMeta`] atomics, so routing never takes a lock on serving state.
//!
//! A shard that panics mid-batch does not take the fleet down: the panic
//! is caught, the shard marks itself dead (routing stops immediately),
//! and the thread stays behind as a drain loop answering every queued or
//! late-routed job with a structured error until shutdown — no job is
//! ever silently dropped on the floor.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use harp_core::{
    run_inference, run_inference_cached, EpochCache, EvalOptions, Instance, SplitModel,
};
use harp_nn::load_params;
use harp_paths::TunnelSet;
use harp_runtime::Runtime;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use serde_json::Value;

use crate::protocol::{error_response, ok_response, Request};
use crate::reactor::Waker;
use crate::state::NetworkState;
use crate::stats::{DegradeReason, ServeStats};

/// How often a blocked shard re-checks the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// Lock-free shard state published for the router and the `stats` reply.
#[derive(Debug)]
pub struct ShardMeta {
    /// Jobs queued (sent, not yet dequeued by the batcher).
    pub depth: AtomicUsize,
    /// The shard's current topology epoch.
    pub epoch: AtomicU64,
    /// False once the shard has died (panic) or exited.
    pub alive: AtomicBool,
    /// Failed links at the current epoch.
    pub failed_links: AtomicUsize,
    /// Live tunnels at the current epoch.
    pub num_tunnels: AtomicUsize,
    /// Checkpoint generation the shard serves from: 0 at spawn, +1 per
    /// successful `reload_checkpoint`. The fleet-wide max minus this is
    /// the shard's model staleness.
    pub param_generation: AtomicU64,
}

impl ShardMeta {
    /// Fresh metadata for a shard about to start at epoch 0.
    pub fn new() -> Self {
        ShardMeta {
            depth: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            failed_links: AtomicUsize::new(0),
            num_tunnels: AtomicUsize::new(0),
            param_generation: AtomicU64::new(0),
        }
    }
}

impl Default for ShardMeta {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregates one broadcast's per-shard replies into a single response
/// (see [`ReplySink::send`]): the primary shard's reply is forwarded once
/// every shard has answered.
#[derive(Debug)]
pub struct Gather {
    remaining: AtomicUsize,
    primary: Mutex<Option<String>>,
    inner: ReplySink,
}

impl Gather {
    /// A gather over `fanout` shard replies, forwarding to `inner`.
    pub fn new(fanout: usize, inner: ReplySink) -> Arc<Self> {
        Arc::new(Gather {
            remaining: AtomicUsize::new(fanout.max(1)),
            primary: Mutex::new(None),
            inner,
        })
    }
}

/// Where a job's rendered response line goes.
#[derive(Clone, Debug)]
pub enum ReplySink {
    /// Straight into a channel (tests and programmatic callers).
    Channel(mpsc::Sender<String>),
    /// Back to the event loop: `(conn_token, line)` onto the completion
    /// queue, then ring the reactor.
    Conn {
        /// The connection's reactor token (generation | slot).
        token: u64,
        /// The event loop's completion queue.
        completions: mpsc::Sender<(u64, String)>,
        /// Wakes the reactor out of `epoll_wait`.
        waker: Waker,
    },
    /// One member of a control broadcast; the gather forwards the primary
    /// shard's reply when the last member answers.
    Gather {
        /// Shared aggregation state.
        gather: Arc<Gather>,
        /// True for the shard whose reply is forwarded.
        primary: bool,
    },
}

impl ReplySink {
    /// Deliver one response line. Never blocks and never fails loudly: a
    /// vanished receiver means the client is gone, which is not an error.
    pub fn send(&self, line: String) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(line);
            }
            ReplySink::Conn {
                token,
                completions,
                waker,
            } => {
                let _ = completions.send((*token, line));
                waker.wake();
            }
            ReplySink::Gather { gather, primary } => {
                if *primary {
                    if let Ok(mut slot) = gather.primary.lock() {
                        *slot = Some(line.clone());
                    }
                }
                if gather.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let chosen = gather
                        .primary
                        .lock()
                        .ok()
                        .and_then(|mut s| s.take())
                        .unwrap_or(line);
                    gather.inner.send(chosen);
                }
            }
        }
    }
}

/// One queued `infer` request.
pub struct InferJob {
    /// Wire request id (echoed in the response).
    pub id: u64,
    /// Validated `(src, dst, demand)` triples.
    pub demands: Vec<(usize, usize, f64)>,
    /// Epoch the request is pinned to, if any.
    pub epoch_pin: Option<u64>,
    /// Absolute deadline; missing it degrades the response.
    pub deadline: Instant,
    /// When the request was accepted (drives latency accounting).
    pub enqueued: Instant,
    /// Where the rendered response goes.
    pub reply: ReplySink,
}

/// Anything a shard processes.
pub enum Job {
    /// A batched inference request.
    Infer(InferJob),
    /// A control request (topology update, reload, ...). Acts as a batch
    /// barrier.
    Control {
        /// Wire request id.
        id: u64,
        /// The parsed request.
        req: Request,
        /// Where the response goes.
        reply: ReplySink,
    },
    /// Test/chaos hook: panic inside the shard loop to exercise failover.
    #[doc(hidden)]
    Crash,
}

/// Everything a shard thread needs at spawn.
pub(crate) struct ShardSpec {
    pub idx: usize,
    pub rx: mpsc::Receiver<Job>,
    pub meta: Arc<ShardMeta>,
    pub model: Arc<dyn SplitModel + Send + Sync>,
    pub store: ParamStore,
    pub topo: Topology,
    pub tunnels: TunnelSet,
    pub max_batch: usize,
    pub rt: Runtime,
    pub stop: Arc<AtomicBool>,
    pub stats: Arc<ServeStats>,
}

/// The shard thread body: run the batcher under panic containment, then
/// (dead or stopping) drain the queue with error replies until shutdown.
pub(crate) fn shard_main(spec: ShardSpec) {
    let ShardSpec {
        idx,
        rx,
        meta,
        model,
        store,
        topo,
        tunnels,
        max_batch,
        rt,
        stop,
        stats,
    } = spec;
    let state = NetworkState::new(topo, tunnels);
    publish_meta(&meta, &state, 0);
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        batcher_loop(
            &rx, state, model, store, max_batch, &rt, &stop, &stats, &meta,
        );
    }))
    .is_err();
    meta.alive.store(false, Ordering::SeqCst);
    if crashed {
        stats.record_shard_failover();
        harp_obs::warn_always("serve.shard_panic", &[("shard", (idx as u64).into())]);
        harp_obs::event("serve.shard_dead")
            .field("shard", idx)
            .emit();
        // Answer everything queued (and anything racing in before the
        // router noticed the death) with a structured error, so no client
        // ever hangs on a dead shard.
        while !stop.load(Ordering::SeqCst) {
            match rx.recv_timeout(POLL) {
                Ok(job) => {
                    meta.depth.fetch_sub(1, Ordering::SeqCst);
                    stats.record_shard_failover();
                    match job {
                        Job::Infer(j) => j
                            .reply
                            .send(error_response(Some(j.id), "shard failed; please retry")),
                        Job::Control { id, reply, .. } => {
                            reply.send(error_response(Some(id), "shard failed; please retry"))
                        }
                        Job::Crash => {}
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }
}

/// Copy the shard's current epoch state into its published metadata.
fn publish_meta(meta: &ShardMeta, state: &NetworkState, param_generation: u64) {
    meta.epoch.store(state.epoch(), Ordering::SeqCst);
    meta.failed_links
        .store(state.failed_edges().len(), Ordering::SeqCst);
    meta.num_tunnels
        .store(state.tunnels().num_tunnels(), Ordering::SeqCst);
    meta.param_generation
        .store(param_generation, Ordering::SeqCst);
}

/// The batcher loop: drain jobs, batch infers, apply control ops.
#[allow(clippy::too_many_arguments)]
fn batcher_loop(
    rx: &mpsc::Receiver<Job>,
    mut state: NetworkState,
    model: Arc<dyn SplitModel + Send + Sync>,
    store: ParamStore,
    max_batch: usize,
    rt: &Runtime,
    stop: &AtomicBool,
    stats: &ServeStats,
    meta: &ShardMeta,
) {
    let mut store = Arc::new(store);
    // TM-independent model state for the current (epoch, store) pair;
    // rebuilt lazily on the first infer after any topology update or
    // checkpoint reload. Only this shard touches it, so no locking.
    let mut epoch_cache: Option<EpochCache> = None;
    // Checkpoint generation served by this shard; mirrored into
    // `meta.param_generation` after every control op.
    let mut param_generation: u64 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let job = match rx.recv_timeout(POLL) {
            Ok(j) => j,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        meta.depth.fetch_sub(1, Ordering::SeqCst);
        match job {
            Job::Crash => {
                // lint: allow(panic) — deliberate chaos/failover hook
                panic!("harp-serve: injected shard crash");
            }
            Job::Control { id, req, reply } => {
                let resp = handle_control(
                    id,
                    req,
                    &mut state,
                    &mut store,
                    &mut epoch_cache,
                    &mut param_generation,
                    stop,
                    stats,
                );
                publish_meta(meta, &state, param_generation);
                reply.send(resp);
            }
            Job::Infer(first) => {
                let mut batch = vec![first];
                let mut barrier = None;
                while batch.len() < max_batch {
                    match rx.try_recv() {
                        Ok(Job::Infer(j)) => {
                            meta.depth.fetch_sub(1, Ordering::SeqCst);
                            batch.push(j);
                        }
                        Ok(ctl) => {
                            meta.depth.fetch_sub(1, Ordering::SeqCst);
                            barrier = Some(ctl);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                stats.record_batch(batch.len(), meta.depth.load(Ordering::SeqCst));
                if epoch_cache.is_none() {
                    // Zero-TM instance: precompute only reads the
                    // topology/tunnel tensors.
                    let blank = TrafficMatrix::zeros(state.topology().num_nodes());
                    let inst = Instance::compile(state.topology(), state.tunnels(), &blank);
                    epoch_cache = model.precompute_epoch(&store, &inst);
                }
                process_batch(
                    batch,
                    &mut state,
                    model.as_ref(),
                    &store,
                    epoch_cache.as_ref(),
                    param_generation,
                    rt,
                    stats,
                );
                match barrier {
                    Some(Job::Control { id, req, reply }) => {
                        let resp = handle_control(
                            id,
                            req,
                            &mut state,
                            &mut store,
                            &mut epoch_cache,
                            &mut param_generation,
                            stop,
                            stats,
                        );
                        publish_meta(meta, &state, param_generation);
                        reply.send(resp);
                    }
                    Some(Job::Crash) => {
                        // lint: allow(panic) — deliberate chaos/failover hook
                        panic!("harp-serve: injected shard crash");
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Run one batch of infer jobs through the model on the worker pool and
/// answer each, degrading individually on deadline miss or model error.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    batch: Vec<InferJob>,
    state: &mut NetworkState,
    model: &dyn SplitModel,
    store: &Arc<ParamStore>,
    epoch_cache: Option<&EpochCache>,
    param_generation: u64,
    rt: &Runtime,
    stats: &ServeStats,
) {
    let _span = harp_obs::span("serve.batch");
    let n = state.topology().num_nodes();
    let epoch = state.epoch();

    // Weed out jobs that can't run. The router already rejects stale pins
    // and the protocol layer bounds node ids, but both are re-checked
    // here: the epoch may have advanced since routing, and the shard must
    // stay safe even for jobs submitted programmatically.
    let mut runnable: Vec<InferJob> = Vec::with_capacity(batch.len());
    for job in batch {
        if let Some(pin) = job.epoch_pin {
            if pin != epoch {
                stats.record_stale_epoch();
                job.reply.send(error_response(
                    Some(job.id),
                    &format!("stale epoch: request pinned to {pin}, current is {epoch}"),
                ));
                continue;
            }
        }
        if let Some(&(s, t, _)) = job.demands.iter().find(|&&(s, t, _)| s >= n || t >= n) {
            job.reply.send(error_response(
                Some(job.id),
                &format!("demand ({s}, {t}) references a node >= {n}"),
            ));
            continue;
        }
        if Instant::now() >= job.deadline {
            degrade(&job, state, stats, DegradeReason::DeadlineMiss);
            continue;
        }
        runnable.push(job);
    }
    if runnable.is_empty() {
        return;
    }

    // Fan the batch across the worker pool. Each job compiles its own
    // instance (the TM differs per request; topology and tunnels are the
    // epoch's). Tunnels crossing failed links are already pruned, so no
    // local rescaling is needed on top.
    let matrices: Vec<TrafficMatrix> = runnable
        .iter()
        .map(|job| {
            let mut tm = TrafficMatrix::zeros(n);
            for &(s, t, d) in &job.demands {
                tm.set_demand(s, t, tm.demand(s, t) + d);
            }
            tm
        })
        .collect();
    let topo = state.topology().clone();
    let tunnels = state.tunnels().clone();
    let store_ref = Arc::clone(store);
    let deadlines: Vec<Instant> = runnable.iter().map(|j| j.deadline).collect();
    let results = rt.par_map(&matrices, |i, tm| {
        if Instant::now() >= deadlines[i] {
            return None; // expired while queued behind batch-mates
        }
        let _span = harp_obs::span("serve.infer");
        let instance = Instance::compile(&topo, &tunnels, tm);
        // Each inference reuses a pooled tape arena (see `harp_tensor::Tape`),
        // so the per-request hot loop is allocation-free after warm-up.
        Some(match epoch_cache {
            Some(c) => run_inference_cached(
                model,
                store_ref.as_ref(),
                &instance,
                EvalOptions::default(),
                c,
            ),
            None => run_inference(model, store_ref.as_ref(), &instance, EvalOptions::default()),
        })
    });

    let mut newest_good: Option<Vec<f64>> = None;
    for (job, result) in runnable.into_iter().zip(results) {
        match result {
            None => degrade(&job, state, stats, DegradeReason::DeadlineMiss),
            Some(inf) if !inf.is_finite() => {
                harp_obs::event("serve.model_error")
                    .field("id", job.id)
                    .emit();
                degrade(&job, state, stats, DegradeReason::ModelError);
            }
            Some(inf) if Instant::now() >= job.deadline => {
                // finished too late to ship; still remember the splits
                newest_good = Some(inf.splits);
                degrade(&job, state, stats, DegradeReason::DeadlineMiss);
            }
            Some(inf) => {
                let latency_us = job.enqueued.elapsed().as_micros() as u64;
                stats.record_infer_ok(latency_us);
                job.reply.send(ok_response(
                    job.id,
                    serde_json::json!({
                        "epoch": epoch,
                        "generation": param_generation,
                        "degraded": false,
                        "mlu": inf.mlu,
                        "splits": Value::from(inf.splits.clone()),
                        "latency_us": latency_us,
                    }),
                ));
                newest_good = Some(inf.splits);
            }
        }
    }
    if let Some(splits) = newest_good {
        state.set_last_good(splits);
    }
}

/// Answer one job from fallback splits and count it as degraded.
fn degrade(job: &InferJob, state: &NetworkState, stats: &ServeStats, reason: DegradeReason) {
    let (splits, source) = state.fallback_splits();
    let latency_us = job.enqueued.elapsed().as_micros() as u64;
    stats.record_degraded(reason, latency_us);
    let reason_str = match reason {
        DegradeReason::DeadlineMiss => "deadline_miss",
        DegradeReason::ModelError => "model_error",
    };
    job.reply.send(ok_response(
        job.id,
        serde_json::json!({
            "epoch": state.epoch(),
            "degraded": true,
            "reason": reason_str,
            "splits_source": source,
            "splits": Value::from(splits),
            "latency_us": latency_us,
        }),
    ));
}

/// Apply one control request on the shard thread.
#[allow(clippy::too_many_arguments)]
fn handle_control(
    id: u64,
    req: Request,
    state: &mut NetworkState,
    store: &mut Arc<ParamStore>,
    epoch_cache: &mut Option<EpochCache>,
    param_generation: &mut u64,
    stop: &AtomicBool,
    stats: &ServeStats,
) -> String {
    match req {
        Request::TopologyUpdate {
            fail_links,
            restore_links,
        } => {
            let _span = harp_obs::span("serve.topology_update");
            match state.apply_update(&fail_links, &restore_links) {
                Ok(s) => {
                    *epoch_cache = None; // tunnels changed: embeddings are stale
                    stats.record_topology_update();
                    harp_obs::event("serve.topology_update")
                        .field("epoch", s.epoch)
                        .field("failed_links", s.failed_links)
                        .emit();
                    ok_response(
                        id,
                        serde_json::json!({
                            "epoch": s.epoch,
                            "num_flows": s.num_flows,
                            "num_tunnels": s.num_tunnels,
                            "failed_links": s.failed_links,
                        }),
                    )
                }
                Err(e) => error_response(Some(id), &e),
            }
        }
        Request::ReloadCheckpoint { path } => {
            let _span = harp_obs::span("serve.reload_checkpoint");
            // Validate into a clone; the live store is swapped only after
            // the whole checkpoint passes the strict loader.
            let mut candidate = (**store).clone();
            match load_params(&mut candidate, std::path::Path::new(&path)) {
                Ok(()) => {
                    let params = candidate.ids().count();
                    *store = Arc::new(candidate);
                    *epoch_cache = None; // parameters changed: embeddings are stale
                    *param_generation += 1;
                    // A reload is a new epoch: requests pinned to the old
                    // epoch are stale everywhere the swap has landed, so a
                    // pin can never mix parameter generations even while
                    // the broadcast is still in flight on sibling shards.
                    state.bump_epoch();
                    stats.record_reload(true);
                    harp_obs::event("serve.reload")
                        .field("path", path)
                        .field("params", params)
                        .field("generation", *param_generation)
                        .emit();
                    ok_response(
                        id,
                        serde_json::json!({
                            "epoch": state.epoch(),
                            "generation": *param_generation,
                            "params": params,
                        }),
                    )
                }
                Err(e) => {
                    stats.record_reload(false);
                    error_response(Some(id), &format!("reload rejected: {e}"))
                }
            }
        }
        Request::Stats => {
            // Answered by the event loop from published metadata; a shard
            // only sees this via programmatic submission.
            ok_response(id, stats.snapshot())
        }
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            harp_obs::event("serve.shutdown").field("id", id).emit();
            ok_response(id, serde_json::json!({ "stopping": true }))
        }
        Request::Infer { .. } => error_response(Some(id), "infer routed as control"),
    }
}
