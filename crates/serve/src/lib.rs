//! # harp-serve
//!
//! The online TE controller: a zero-dependency TCP daemon that serves a
//! trained split model over a newline-delimited JSON protocol.
//!
//! * [`protocol`] — the wire format: `infer`, `topology_update`,
//!   `reload_checkpoint`, `stats`, `shutdown` requests, one JSON object
//!   per line each way; wire integers are bounds-checked against
//!   [`protocol::WireLimits`] before any cast.
//! * [`reactor`] — a zero-dependency nonblocking event notifier (epoll
//!   on Linux, a polling fallback elsewhere) with a cross-thread waker.
//! * [`conn`] — per-connection state machines: incremental line framing
//!   with a hard byte cap, staged out-buffers, idle/backpressure
//!   bookkeeping.
//! * [`state`] — epoch-versioned network state: base topology + tunnels,
//!   the failure overlay, pruned tunnels, and last-good splits.
//! * [`shard`] — a serving shard: single-owner batcher thread with its
//!   own `NetworkState`, parameter store, and topology-epoch embedding
//!   cache; panics are contained and reported as failovers.
//! * [`router`] — pure shard selection (epoch-pin match, least depth,
//!   deterministic shedding) and the [`router::Fleet`] that spawns and
//!   addresses the shards.
//! * [`server`] — the daemon: one reactor thread multiplexing every
//!   connection into the shard fleet, with admission control, per-reason
//!   load shedding, and deadline-bounded degradation to last-good splits
//!   (or uniform ECMP on cold start) instead of failing or blocking.
//! * [`stats`] — serving counters plus latency percentiles, mirrored
//!   into the `harp-obs` registry.
//!
//! See DESIGN.md §8 for the protocol and degradation policy, §13 for the
//! fleet serving layer.

pub mod conn;
pub mod protocol;
pub mod reactor;
pub mod router;
pub mod server;
pub mod shard;
pub mod state;
pub mod stats;

pub use conn::{Frame, LineFramer};
pub use protocol::{
    error_response, error_response_kind, ok_response, parse_request, parse_request_bounded,
    shed_response, ProtocolError, ProtocolErrorKind, Request, WireLimits,
};
pub use reactor::{Event, Interest, Reactor, Waker};
pub use router::{route_infer, Fleet, RouteDecision, ShardView};
pub use server::{serve, ServeConfig, ServerHandle};
pub use shard::{InferJob, Job, ReplySink};
pub use state::{carry_splits, uniform_splits, NetworkState, UpdateSummary, FAILED_CAPACITY};
pub use stats::{DegradeReason, ServeStats, ShedReason};
