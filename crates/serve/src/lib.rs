//! # harp-serve
//!
//! The online TE controller: a zero-dependency TCP daemon that serves a
//! trained split model over a newline-delimited JSON protocol.
//!
//! * [`protocol`] — the wire format: `infer`, `topology_update`,
//!   `reload_checkpoint`, `stats`, `shutdown` requests, one JSON object
//!   per line each way.
//! * [`state`] — epoch-versioned network state: base topology + tunnels,
//!   the failure overlay, pruned tunnels, and last-good splits.
//! * [`server`] — the daemon: per-connection reader threads feeding one
//!   batcher thread that owns all mutable state, fans `infer` batches
//!   across the `harp-runtime` pool, bounds every request with a
//!   deadline, and degrades to last-good splits (or uniform ECMP on cold
//!   start) instead of failing or blocking.
//! * [`stats`] — serving counters plus latency percentiles, mirrored
//!   into the `harp-obs` registry.
//!
//! See DESIGN.md §8 for the protocol and degradation policy.

pub mod protocol;
pub mod server;
pub mod state;
pub mod stats;

pub use protocol::{error_response, ok_response, parse_request, ProtocolError, Request};
pub use server::{serve, ServeConfig, ServerHandle};
pub use state::{carry_splits, uniform_splits, NetworkState, UpdateSummary, FAILED_CAPACITY};
pub use stats::{DegradeReason, ServeStats};
