//! Epoch-versioned network state: the single mutable picture of the WAN
//! the daemon serves against.
//!
//! All mutation happens on the batcher thread (see `server.rs`), so this
//! module is plain single-threaded data: a base topology + tunnel set, the
//! current failure set, the tunnels pruned against it, and the last-good
//! splits used for degraded responses. Every topology change bumps the
//! epoch; infer requests pinned to a stale epoch are rejected rather than
//! silently answered against a different network.

use std::collections::BTreeSet;

use harp_paths::{Path, TunnelSet};
use harp_topology::{EdgeId, Topology};

/// Capacity assigned to a failed link, following the paper's convention
/// of flooring failed capacities rather than zeroing them (see
/// `harp_opt::PathProgram::capacities`): an exactly-zero capacity makes
/// the exact MLU infinite even when the pruned tunnels place no load on
/// the edge, which would force every inference during a failure into the
/// degraded path.
pub const FAILED_CAPACITY: f64 = 1e-4;

/// Mutable serving state for one WAN.
#[derive(Clone, Debug)]
pub struct NetworkState {
    /// Pristine topology with design capacities (failures are overlaid).
    base_topo: Topology,
    /// Current topology: failed links floored to [`FAILED_CAPACITY`].
    topo: Topology,
    /// Tunnel set computed against the pristine topology.
    base_tunnels: TunnelSet,
    /// Base tunnels minus any path traversing a failed link.
    tunnels: TunnelSet,
    /// Directed edges currently failed.
    failed: BTreeSet<EdgeId>,
    /// Bumped on every applied topology update.
    epoch: u64,
    /// Last successfully-inferred splits, aligned with `tunnels`.
    last_good: Option<Vec<f64>>,
}

/// What an applied topology update did, for the client's reply.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateSummary {
    /// Epoch after the update.
    pub epoch: u64,
    /// Flows that still have at least one live tunnel.
    pub num_flows: usize,
    /// Tunnels surviving the prune.
    pub num_tunnels: usize,
    /// Directed edges currently failed (after this update).
    pub failed_links: usize,
}

impl NetworkState {
    /// State at epoch 0: no failures, tunnels as computed offline.
    pub fn new(topo: Topology, tunnels: TunnelSet) -> Self {
        NetworkState {
            base_topo: topo.clone(),
            topo,
            base_tunnels: tunnels.clone(),
            tunnels,
            failed: BTreeSet::new(),
            epoch: 0,
            last_good: None,
        }
    }

    /// Current topology (failed links at [`FAILED_CAPACITY`]).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Tunnels pruned against the current failure set.
    pub fn tunnels(&self) -> &TunnelSet {
        &self.tunnels
    }

    /// Current epoch; bumped by every applied [`Self::apply_update`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the epoch without touching the topology. Checkpoint
    /// reloads use this so an epoch pin can never observe two parameter
    /// generations: requests pinned to the pre-reload epoch are rejected
    /// as stale by any shard that already swapped its store.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Directed edge ids currently failed.
    pub fn failed_edges(&self) -> &BTreeSet<EdgeId> {
        &self.failed
    }

    /// Last successfully-inferred splits (aligned with [`Self::tunnels`]),
    /// if any inference has succeeded since the last cold start.
    pub fn last_good(&self) -> Option<&[f64]> {
        self.last_good.as_deref()
    }

    /// Record splits from a successful inference as the degradation
    /// fallback. Must be aligned with the *current* tunnel set.
    pub fn set_last_good(&mut self, splits: Vec<f64>) {
        debug_assert_eq!(splits.len(), self.tunnels.num_tunnels());
        self.last_good = Some(splits);
    }

    /// Fail and restore links (each `(u, v)` pair affects both directions),
    /// then re-prune tunnels and carry last-good splits onto the surviving
    /// set. Unknown node pairs are an error; the state is only mutated when
    /// every link resolves. Returns the post-update summary.
    pub fn apply_update(
        &mut self,
        fail_links: &[(usize, usize)],
        restore_links: &[(usize, usize)],
    ) -> Result<UpdateSummary, String> {
        // Resolve every link before touching anything, so a typo'd pair
        // can't leave the state half-updated.
        let mut fail_edges = Vec::new();
        for &(u, v) in fail_links {
            fail_edges.extend(self.resolve_pair(u, v, "fail_links")?);
        }
        let mut restore_edges = Vec::new();
        for &(u, v) in restore_links {
            restore_edges.extend(self.resolve_pair(u, v, "restore_links")?);
        }

        for e in restore_edges {
            self.failed.remove(&e);
            let cap = self.base_topo.capacity(e);
            self.topo
                .set_capacity(e, cap)
                .map_err(|err| format!("restore failed: {err:?}"))?;
        }
        for e in fail_edges {
            self.failed.insert(e);
            self.topo
                .set_capacity(e, FAILED_CAPACITY)
                .map_err(|err| format!("fail failed: {err:?}"))?;
        }

        let new_tunnels = self.base_tunnels.without_edges(&self.failed);
        self.last_good = self
            .last_good
            .take()
            .map(|old| carry_splits(&self.tunnels, &old, &new_tunnels));
        self.tunnels = new_tunnels;
        self.epoch += 1;

        Ok(UpdateSummary {
            epoch: self.epoch,
            num_flows: self.tunnels.num_flows(),
            num_tunnels: self.tunnels.num_tunnels(),
            failed_links: self.failed.len(),
        })
    }

    /// Splits to ship when inference can't be used: last-good if present,
    /// else uniform ECMP over the current tunnels. Also returns the reason
    /// tag reported to the client and counted in stats.
    pub fn fallback_splits(&self) -> (Vec<f64>, &'static str) {
        match &self.last_good {
            Some(s) => (s.clone(), "last_good"),
            None => (uniform_splits(&self.tunnels), "uniform_ecmp"),
        }
    }

    fn resolve_pair(&self, u: usize, v: usize, key: &str) -> Result<[EdgeId; 2], String> {
        let fwd = self
            .topo
            .edge_id(u, v)
            .ok_or_else(|| format!("{key}: no link {u} -> {v}"))?;
        let rev = self
            .topo
            .edge_id(v, u)
            .ok_or_else(|| format!("{key}: no link {v} -> {u}"))?;
        Ok([fwd, rev])
    }
}

/// Uniform ECMP splits (1/k per tunnel, per flow) in flat tunnel order.
pub fn uniform_splits(tunnels: &TunnelSet) -> Vec<f64> {
    let mut out = Vec::with_capacity(tunnels.num_tunnels());
    for f in 0..tunnels.num_flows() {
        let k = tunnels.tunnels_of(f).len();
        out.extend(std::iter::repeat_n(1.0 / k as f64, k));
    }
    out
}

/// Carry splits from one tunnel set onto another (typically after a
/// prune): each surviving tunnel keeps its old mass, matched by flow
/// endpoint pair and exact path; mass on vanished tunnels is redistributed
/// by per-flow renormalization. Flows with no surviving mass (all their
/// carried tunnels are new, or everything rounds to zero) fall back to
/// uniform. The result always sums to 1 per flow of `new_ts`.
pub fn carry_splits(old_ts: &TunnelSet, old_splits: &[f64], new_ts: &TunnelSet) -> Vec<f64> {
    debug_assert_eq!(old_splits.len(), old_ts.num_tunnels());
    // Flat offset of each old flow, for indexing old_splits.
    let mut old_offsets = Vec::with_capacity(old_ts.num_flows());
    let mut acc = 0usize;
    for f in 0..old_ts.num_flows() {
        old_offsets.push(acc);
        acc += old_ts.tunnels_of(f).len();
    }

    let lookup = |s: usize, t: usize, path: &Path| -> Option<f64> {
        let f = old_ts.flow_index(s, t)?;
        let pos = old_ts.tunnels_of(f).iter().position(|p| p == path)?;
        Some(old_splits[old_offsets[f] + pos])
    };

    let mut out = Vec::with_capacity(new_ts.num_tunnels());
    for f in 0..new_ts.num_flows() {
        let (s, t) = new_ts.flows()[f];
        let paths = new_ts.tunnels_of(f);
        let carried: Vec<f64> = paths
            .iter()
            .map(|p| lookup(s, t, p).unwrap_or(0.0))
            .collect();
        let total: f64 = carried.iter().sum();
        if total > f64::EPSILON {
            out.extend(carried.iter().map(|w| w / total));
        } else {
            let k = paths.len() as f64;
            out.extend(std::iter::repeat_n(1.0 / k, paths.len()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-node square with a diagonal: enough path diversity that failing
    /// one link prunes some tunnels without killing any flow.
    fn square() -> (Topology, TunnelSet) {
        let mut topo = Topology::new(4);
        topo.add_link(0, 1, 10.0).unwrap();
        topo.add_link(1, 2, 10.0).unwrap();
        topo.add_link(2, 3, 10.0).unwrap();
        topo.add_link(3, 0, 10.0).unwrap();
        topo.add_link(0, 2, 5.0).unwrap();
        let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 3, 0.0);
        (topo, tunnels)
    }

    #[test]
    fn apply_update_prunes_and_bumps_epoch() {
        let (topo, tunnels) = square();
        let mut st = NetworkState::new(topo, tunnels);
        assert_eq!(st.epoch(), 0);
        let before = st.tunnels().num_tunnels();

        let s = st.apply_update(&[(0, 1)], &[]).unwrap();
        assert_eq!(s.epoch, 1);
        assert_eq!(st.epoch(), 1);
        assert_eq!(s.failed_links, 2); // both directions
        assert!(s.num_tunnels < before);
        let e01 = st.topology().edge_id(0, 1).unwrap();
        assert_eq!(st.topology().capacity(e01), FAILED_CAPACITY);

        let s = st.apply_update(&[], &[(0, 1)]).unwrap();
        assert_eq!(s.epoch, 2);
        assert_eq!(s.failed_links, 0);
        assert_eq!(s.num_tunnels, before);
        assert_eq!(st.topology().capacity(e01), 10.0);
    }

    #[test]
    fn unknown_link_is_rejected_without_mutation() {
        let (topo, tunnels) = square();
        let mut st = NetworkState::new(topo, tunnels);
        // (0,1) exists but (1,3) does not: the whole update must be
        // rejected with nothing failed and no epoch bump.
        let err = st.apply_update(&[(0, 1), (1, 3)], &[]).unwrap_err();
        assert!(err.contains("no link"));
        assert_eq!(st.epoch(), 0);
        assert!(st.failed_edges().is_empty());
        let e01 = st.topology().edge_id(0, 1).unwrap();
        assert_eq!(st.topology().capacity(e01), 10.0);
    }

    #[test]
    fn fallback_is_uniform_on_cold_start_then_last_good() {
        let (topo, tunnels) = square();
        let mut st = NetworkState::new(topo, tunnels);
        let (u, reason) = st.fallback_splits();
        assert_eq!(reason, "uniform_ecmp");
        assert_eq!(u.len(), st.tunnels().num_tunnels());

        let mut good = uniform_splits(st.tunnels());
        // perturb one flow to make it distinguishable from uniform
        good[0] = 1.0;
        for i in 1..st.tunnels().tunnels_of(0).len() {
            good[i] = 0.0;
        }
        st.set_last_good(good.clone());
        let (s, reason) = st.fallback_splits();
        assert_eq!(reason, "last_good");
        assert_eq!(s, good);
    }

    #[test]
    fn last_good_is_carried_across_updates_and_stays_normalized() {
        let (topo, tunnels) = square();
        let mut st = NetworkState::new(topo, tunnels);
        let mut good = uniform_splits(st.tunnels());
        good[0] += 0.1; // slightly off-uniform (will be renormalized on carry)
        st.set_last_good(good);

        st.apply_update(&[(0, 1)], &[]).unwrap();
        let (carried, reason) = st.fallback_splits();
        assert_eq!(reason, "last_good");
        assert_eq!(carried.len(), st.tunnels().num_tunnels());
        // per-flow sums are 1
        let mut off = 0;
        for f in 0..st.tunnels().num_flows() {
            let k = st.tunnels().tunnels_of(f).len();
            let sum: f64 = carried[off..off + k].iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "flow {f} sums to {sum}");
            off += k;
        }
    }

    #[test]
    fn carry_splits_preserves_mass_on_surviving_tunnels() {
        let (_, tunnels) = square();
        let old = uniform_splits(&tunnels);
        // identity carry: same tunnel set → exactly the same splits
        let same = carry_splits(&tunnels, &old, &tunnels);
        for (a, b) in same.iter().zip(old.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
