//! Serving counters and latency percentiles.
//!
//! Two sinks fed from one recording API: process-local atomics answering
//! the `stats` request (always on, so operators can poll the daemon
//! without enabling observability), and the shared `harp-obs` registry
//! (counters/histograms/spans) so serve metrics land in the same
//! `HARP_OBS` report as kernel and training metrics.
//!
//! Load-shed decisions get the same per-reason treatment as degraded
//! responses: every shed is counted under its [`ShedReason`] both locally
//! and in the `serve.shed.*` obs counters, so an overloaded fleet is
//! diagnosable from the `stats` reply alone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use harp_core::percentile;
use harp_obs::{Counter, Histogram};
use serde_json::Value;

/// Latency observations kept for percentile estimates (ring buffer).
const LATENCY_WINDOW: usize = 4096;

// harp-obs registry statics: no-ops while the sink is off.
static OBS_REQUESTS: Counter = Counter::new("serve.requests");
static OBS_DEGRADED: Counter = Counter::new("serve.degraded");
static OBS_ERRORS: Counter = Counter::new("serve.protocol_errors");
static OBS_SHED_OVERLOAD: Counter = Counter::new("serve.shed.overload");
static OBS_SHED_CONN_LIMIT: Counter = Counter::new("serve.shed.conn_limit");
static OBS_SHED_STALE: Counter = Counter::new("serve.shed.stale_epoch");
static OBS_CONNS: Counter = Counter::new("serve.conns_accepted");
static OBS_FAILOVER: Counter = Counter::new("serve.shard_failover");
static OBS_LATENCY_US: Histogram = Histogram::new("serve.request_us");
static OBS_BATCH_SIZE: Histogram = Histogram::new("serve.batch_size");
static OBS_QUEUE_DEPTH: Histogram = Histogram::new("serve.queue_depth");

/// Why a response was served from fallback splits instead of the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The deadline expired before (or while) the model ran.
    DeadlineMiss,
    /// The model produced non-finite splits or MLU.
    ModelError,
}

/// Why a request (or connection) was refused outright instead of queued —
/// admission control's per-reason ledger, mirroring [`DegradeReason`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// Every eligible shard's queue was at the configured limit.
    Overload,
    /// The connection cap was reached; the connection was refused.
    ConnLimit,
}

impl ShedReason {
    /// Stable wire code used as `error_kind` in shed responses.
    pub fn code(self) -> &'static str {
        match self {
            ShedReason::Overload => "shed_overload",
            ShedReason::ConnLimit => "shed_conn_limit",
        }
    }
}

/// Thread-safe serving counters (the reactor and every shard record into
/// one shared instance).
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    infer_ok: AtomicU64,
    degraded_deadline: AtomicU64,
    degraded_model_error: AtomicU64,
    stale_epoch: AtomicU64,
    topology_updates: AtomicU64,
    reload_ok: AtomicU64,
    reload_failed: AtomicU64,
    protocol_errors: AtomicU64,
    shed_overload: AtomicU64,
    shed_conn_limit: AtomicU64,
    shard_failovers: AtomicU64,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    latencies_us: Mutex<VecDeque<u64>>,
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one parsed request of any type.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        OBS_REQUESTS.add(1);
    }

    /// Count a successful model-served inference and its latency.
    pub fn record_infer_ok(&self, latency_us: u64) {
        self.infer_ok.fetch_add(1, Ordering::Relaxed);
        self.push_latency(latency_us);
    }

    /// Count a degraded (fallback-served) inference and its latency.
    pub fn record_degraded(&self, reason: DegradeReason, latency_us: u64) {
        match reason {
            DegradeReason::DeadlineMiss => &self.degraded_deadline,
            DegradeReason::ModelError => &self.degraded_model_error,
        }
        .fetch_add(1, Ordering::Relaxed);
        OBS_DEGRADED.add(1);
        self.push_latency(latency_us);
    }

    /// Count one shed decision under its reason.
    pub fn record_shed(&self, reason: ShedReason) {
        match reason {
            ShedReason::Overload => {
                self.shed_overload.fetch_add(1, Ordering::Relaxed);
                OBS_SHED_OVERLOAD.add(1);
            }
            ShedReason::ConnLimit => {
                self.shed_conn_limit.fetch_add(1, Ordering::Relaxed);
                OBS_SHED_CONN_LIMIT.add(1);
            }
        }
    }

    /// Count an infer rejected for carrying a stale epoch pin.
    pub fn record_stale_epoch(&self) {
        self.stale_epoch.fetch_add(1, Ordering::Relaxed);
        OBS_SHED_STALE.add(1);
    }

    /// Count an applied topology update.
    pub fn record_topology_update(&self) {
        self.topology_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a checkpoint reload attempt.
    pub fn record_reload(&self, ok: bool) {
        if ok {
            &self.reload_ok
        } else {
            &self.reload_failed
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Count an unparseable or malformed request line.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        OBS_ERRORS.add(1);
    }

    /// Count an accepted connection.
    pub fn record_conn_open(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        OBS_CONNS.add(1);
    }

    /// Count a closed connection (any cause).
    pub fn record_conn_close(&self) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count jobs rerouted or failed over because a shard died.
    pub fn record_shard_failover(&self) {
        self.shard_failovers.fetch_add(1, Ordering::Relaxed);
        OBS_FAILOVER.add(1);
    }

    /// Record one drained batch: its size and the queue depth behind it.
    pub fn record_batch(&self, batch_size: usize, queue_depth: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(batch_size as u64, Ordering::Relaxed);
        OBS_BATCH_SIZE.record(batch_size as u64);
        OBS_QUEUE_DEPTH.record(queue_depth as u64);
    }

    /// Total degraded responses (all reasons).
    pub fn degraded_total(&self) -> u64 {
        self.degraded_deadline.load(Ordering::Relaxed)
            + self.degraded_model_error.load(Ordering::Relaxed)
    }

    /// Total shed requests/connections (all reasons).
    pub fn shed_total(&self) -> u64 {
        self.shed_overload.load(Ordering::Relaxed) + self.shed_conn_limit.load(Ordering::Relaxed)
    }

    /// Total model-served inferences.
    pub fn infer_ok_total(&self) -> u64 {
        self.infer_ok.load(Ordering::Relaxed)
    }

    /// Total protocol errors.
    pub fn protocol_errors_total(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Connections currently open (accepted minus closed).
    pub fn conns_open(&self) -> u64 {
        self.conns_accepted
            .load(Ordering::Relaxed)
            .saturating_sub(self.conns_closed.load(Ordering::Relaxed))
    }

    /// The `stats` reply payload: counters plus latency percentiles over
    /// the recent window (latency keys absent until anything completes).
    pub fn snapshot(&self) -> Value {
        let mut map = serde_json::Map::new();
        let get = |a: &AtomicU64| Value::from(a.load(Ordering::Relaxed) as f64);
        map.insert("requests".into(), get(&self.requests));
        map.insert("infer_ok".into(), get(&self.infer_ok));
        map.insert("degraded".into(), Value::from(self.degraded_total() as f64));
        map.insert("degraded_deadline".into(), get(&self.degraded_deadline));
        map.insert(
            "degraded_model_error".into(),
            get(&self.degraded_model_error),
        );
        map.insert("stale_epoch".into(), get(&self.stale_epoch));
        map.insert("topology_updates".into(), get(&self.topology_updates));
        map.insert("reload_ok".into(), get(&self.reload_ok));
        map.insert("reload_failed".into(), get(&self.reload_failed));
        map.insert("protocol_errors".into(), get(&self.protocol_errors));
        map.insert("shed".into(), Value::from(self.shed_total() as f64));
        map.insert("shed_overload".into(), get(&self.shed_overload));
        map.insert("shed_conn_limit".into(), get(&self.shed_conn_limit));
        map.insert("shard_failovers".into(), get(&self.shard_failovers));
        map.insert("conns_accepted".into(), get(&self.conns_accepted));
        map.insert("conns_open".into(), Value::from(self.conns_open() as f64));
        map.insert("batches".into(), get(&self.batches));
        map.insert("max_batch".into(), get(&self.max_batch));
        let batches = self.batches.load(Ordering::Relaxed);
        if batches > 0 {
            let mean = self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64;
            map.insert("mean_batch".into(), Value::from(mean));
        }
        if let Ok(window) = self.latencies_us.lock() {
            if !window.is_empty() {
                let vals: Vec<f64> = window.iter().map(|&v| v as f64).collect();
                for (key, p) in [
                    ("latency_p50_us", 50.0),
                    ("latency_p99_us", 99.0),
                    ("latency_p999_us", 99.9),
                    ("latency_max_us", 100.0),
                ] {
                    if let Some(v) = percentile(&vals, p) {
                        map.insert(key.into(), Value::from(v));
                    }
                }
            }
        }
        Value::Object(map)
    }

    fn push_latency(&self, latency_us: u64) {
        OBS_LATENCY_US.record(latency_us);
        if let Ok(mut window) = self.latencies_us.lock() {
            if window.len() == LATENCY_WINDOW {
                window.pop_front();
            }
            window.push_back(latency_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_counts_and_percentiles() {
        let st = ServeStats::new();
        st.record_request();
        st.record_request();
        st.record_infer_ok(100);
        st.record_degraded(DegradeReason::DeadlineMiss, 900);
        st.record_batch(2, 5);
        let v = st.snapshot();
        assert_eq!(v.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("infer_ok").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("degraded").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("degraded_deadline").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("max_batch").and_then(Value::as_u64), Some(2));
        assert!(v.get("latency_p99_us").and_then(Value::as_f64).is_some());
        assert!(v.get("latency_p999_us").and_then(Value::as_f64).is_some());
        assert_eq!(st.degraded_total(), 1);
    }

    #[test]
    fn empty_stats_omit_latency_keys() {
        let st = ServeStats::new();
        let v = st.snapshot();
        assert!(v.get("latency_p50_us").is_none());
        assert_eq!(v.get("requests").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn latency_window_is_bounded() {
        let st = ServeStats::new();
        for i in 0..(LATENCY_WINDOW as u64 + 100) {
            st.record_infer_ok(i);
        }
        let window = st.latencies_us.lock().unwrap();
        assert_eq!(window.len(), LATENCY_WINDOW);
        assert_eq!(*window.front().unwrap(), 100);
    }

    #[test]
    fn shed_and_conn_accounting() {
        let st = ServeStats::new();
        st.record_shed(ShedReason::Overload);
        st.record_shed(ShedReason::Overload);
        st.record_shed(ShedReason::ConnLimit);
        st.record_conn_open();
        st.record_conn_open();
        st.record_conn_close();
        st.record_shard_failover();
        let v = st.snapshot();
        assert_eq!(v.get("shed").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("shed_overload").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("shed_conn_limit").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("conns_accepted").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("conns_open").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("shard_failovers").and_then(Value::as_u64), Some(1));
        assert_eq!(st.shed_total(), 3);
        assert_eq!(ShedReason::Overload.code(), "shed_overload");
        assert_eq!(ShedReason::ConnLimit.code(), "shed_conn_limit");
    }
}
