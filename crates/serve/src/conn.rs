//! Per-connection state machines for the reactor event loop.
//!
//! Each accepted socket gets a [`Conn`]: a [`LineFramer`] turning the raw
//! nonblocking byte stream into protocol frames, an [`OutBuf`] staging
//! response bytes until the socket accepts them, and the bookkeeping the
//! event loop needs (idle clock, in-flight count, chaos pause,
//! backpressure gate). Nothing here blocks and nothing here spawns — the
//! structural fix for the old thread-per-connection design, whose handle
//! vector grew with churn and whose per-idle-connection poll wakeups
//! burned CPU.
//!
//! The framer enforces the same hostile-input contract the threaded
//! reader did: a line over the byte cap yields exactly one
//! [`Frame::Oversized`] (so the client hears a structured error) and the
//! remainder of that line is discarded through its newline, bounding
//! memory no matter what the peer streams. Slow-loris clients — bytes
//! dribbling in, never a newline — simply accumulate up to the cap and
//! otherwise cost one buffer, no thread, no wakeups.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// One unit of client input recovered from the byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete, cap-respecting request line (newline stripped; empty
    /// and whitespace-only lines are dropped by the framer).
    Line(String),
    /// A line exceeded the cap — `bytes` seen so far; the rest of the
    /// line is being discarded through its newline.
    Oversized {
        /// Bytes of the offending line observed when the cap tripped.
        bytes: usize,
    },
}

/// Incremental newline framer with a hard per-line byte cap.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    max_line: usize,
    discarding: bool,
}

impl LineFramer {
    /// A framer accepting lines up to `max_line` bytes (incl. newline).
    pub fn new(max_line: usize) -> Self {
        LineFramer {
            buf: Vec::new(),
            max_line,
            discarding: false,
        }
    }

    /// Bytes buffered for the current partial line.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True while discarding an oversized line (until its newline).
    pub fn discarding(&self) -> bool {
        self.discarding
    }

    /// Feed freshly-read bytes, appending recovered frames to `out`.
    /// Oversized lines emit exactly one [`Frame::Oversized`] each, at the
    /// moment the cap trips — even before the newline arrives, so an
    /// unterminated flood is rejected promptly and never buffered.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<Frame>) {
        let mut rest = chunk;
        while !rest.is_empty() {
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let (head, tail) = rest.split_at(pos + 1);
                    rest = tail;
                    if self.discarding {
                        // tail end of an already-reported oversized line
                        self.discarding = false;
                        continue;
                    }
                    let total = self.buf.len() + head.len();
                    if total > self.max_line {
                        out.push(Frame::Oversized { bytes: total });
                        self.buf.clear();
                        continue;
                    }
                    self.buf.extend_from_slice(&head[..head.len() - 1]);
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    if !line.trim().is_empty() {
                        out.push(Frame::Line(line));
                    }
                }
                None => {
                    if self.discarding {
                        return;
                    }
                    if self.buf.len() + rest.len() > self.max_line {
                        out.push(Frame::Oversized {
                            bytes: self.buf.len() + rest.len(),
                        });
                        self.buf.clear();
                        self.discarding = true;
                        return;
                    }
                    self.buf.extend_from_slice(rest);
                    return;
                }
            }
        }
    }
}

/// Outgoing bytes staged until the socket accepts them.
#[derive(Debug, Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl OutBuf {
    /// Queue response bytes for flushing.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unflushed bytes pending.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything queued has been flushed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Write as much as the socket will take. `Ok(true)` = fully flushed,
    /// `Ok(false)` = the socket is full (caller arms write interest).
    pub fn flush(&mut self, stream: &mut TcpStream) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match stream.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // reclaim flushed prefix so a slow reader can't make
                    // the buffer grow by its own history
                    if self.pos > 0 {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// What a readiness-driven read pass concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Connection still open (frames may have been produced).
    Open,
    /// Peer closed (serve remaining frames, flush, then drop).
    Eof,
}

/// Everything the event loop tracks per connection.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Byte stream → frames.
    pub framer: LineFramer,
    /// Staged response bytes.
    pub out: OutBuf,
    /// Last time the peer sent bytes (drives idle reaping).
    pub last_progress: Instant,
    /// Chaos `delay-conn`: ignore the socket until this instant.
    pub paused_until: Option<Instant>,
    /// Requests submitted to the fleet, replies still pending.
    pub inflight: usize,
    /// Close once the out-buffer drains (EOF seen or shutdown ack sent).
    pub close_after_flush: bool,
    /// Read side gated off for backpressure (out-buffer over high water).
    pub read_paused: bool,
    /// The interest set currently registered with the reactor (so the
    /// event loop only issues `epoll_ctl` when it actually changes).
    pub interest: crate::reactor::Interest,
    /// Slot generation, guarding stale completions after slot reuse.
    pub generation: u32,
}

impl Conn {
    /// Wrap a freshly-accepted nonblocking socket.
    pub fn new(stream: TcpStream, max_line: usize, generation: u32) -> Self {
        Conn {
            stream,
            framer: LineFramer::new(max_line),
            out: OutBuf::default(),
            last_progress: Instant::now(),
            paused_until: None,
            inflight: 0,
            close_after_flush: false,
            read_paused: false,
            interest: crate::reactor::Interest::NONE,
            generation,
        }
    }

    /// Drain the socket (until `WouldBlock`), pushing frames to `out`.
    pub fn read_ready(&mut self, out: &mut Vec<Frame>) -> io::Result<ReadOutcome> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => {
                    self.last_progress = Instant::now();
                    self.framer.push(&chunk[..n], out);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadOutcome::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => Err(e)?,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(framer: &mut LineFramer, input: &[u8]) -> Vec<Frame> {
        let mut out = Vec::new();
        framer.push(input, &mut out);
        out
    }

    #[test]
    fn frames_complete_lines_and_holds_partials() {
        let mut f = LineFramer::new(1024);
        assert_eq!(
            lines(&mut f, b"{\"a\":1}\n{\"b\":2}\n{\"c\""),
            vec![
                Frame::Line("{\"a\":1}".into()),
                Frame::Line("{\"b\":2}".into())
            ]
        );
        assert_eq!(f.buffered(), 4);
        assert_eq!(
            lines(&mut f, b":3}\n"),
            vec![Frame::Line("{\"c\":3}".into())]
        );
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn empty_and_whitespace_lines_are_dropped() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            lines(&mut f, b"\n  \n\t\nx\n"),
            vec![Frame::Line("x".into())]
        );
    }

    #[test]
    fn oversized_terminated_line_reports_once_then_recovers() {
        let mut f = LineFramer::new(8);
        let got = lines(&mut f, b"0123456789ab\nok\n");
        assert_eq!(
            got,
            vec![Frame::Oversized { bytes: 13 }, Frame::Line("ok".into())]
        );
    }

    #[test]
    fn oversized_unterminated_line_reports_at_cap_and_discards() {
        let mut f = LineFramer::new(8);
        // cap trips mid-line, before any newline: report immediately
        assert_eq!(
            lines(&mut f, b"0123456789"),
            vec![Frame::Oversized { bytes: 10 }]
        );
        assert!(f.discarding());
        // more bytes of the same line: silently dropped, no second report
        assert_eq!(lines(&mut f, b"more-of-the-flood"), vec![]);
        assert_eq!(f.buffered(), 0, "discarded bytes are not buffered");
        // the newline ends the discard; subsequent lines work again
        assert_eq!(lines(&mut f, b"tail\nok\n"), vec![Frame::Line("ok".into())]);
    }

    #[test]
    fn slow_loris_byte_dribble_buffers_at_most_the_cap() {
        let mut f = LineFramer::new(16);
        let mut out = Vec::new();
        for _ in 0..12 {
            f.push(b"x", &mut out);
        }
        assert!(out.is_empty(), "under cap: no frames yet");
        assert_eq!(f.buffered(), 12);
        for _ in 0..100 {
            f.push(b"x", &mut out);
        }
        assert_eq!(out, vec![Frame::Oversized { bytes: 17 }]);
        assert_eq!(f.buffered(), 0, "flood is discarded, not buffered");
    }

    #[test]
    fn split_newline_across_chunks() {
        let mut f = LineFramer::new(64);
        assert_eq!(lines(&mut f, b"ab"), vec![]);
        assert_eq!(lines(&mut f, b"c"), vec![]);
        assert_eq!(
            lines(&mut f, b"\nde\nf"),
            vec![Frame::Line("abc".into()), Frame::Line("de".into())]
        );
        assert_eq!(lines(&mut f, b"\n"), vec![Frame::Line("f".into())]);
    }

    #[test]
    fn outbuf_tracks_pending_bytes() {
        let mut out = OutBuf::default();
        assert!(out.is_empty());
        out.push(b"hello");
        out.push(b" world");
        assert_eq!(out.pending(), 11);
        assert!(!out.is_empty());
    }
}
