//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line with a numeric `id` (echoed
//! back) and a `type`; every response is one JSON object on one line with
//! the same `id` plus `ok` (and `error` + `error_kind` when `ok` is false).
//! Requests:
//!
//! | `type` | fields | reply payload |
//! |---|---|---|
//! | `infer` | `demands: [[src, dst, demand], ..]`, optional `deadline_ms`, optional `epoch` pin | `epoch`, `degraded`, `mlu`, `splits`, `latency_us` |
//! | `topology_update` | `fail_links: [[u, v], ..]`, `restore_links: [[u, v], ..]` | `epoch`, `num_flows`, `num_tunnels`, `failed_links` |
//! | `reload_checkpoint` | `path` | `epoch`, `params` |
//! | `stats` | — | counters + latency percentiles + per-shard table |
//! | `shutdown` | — | ack, then the fleet drains and exits |
//!
//! ## Hostile-input stance
//!
//! Wire integers are **validated before use**, not trusted: node ids are
//! checked against [`WireLimits::max_node`] (the served topology's node
//! count) and array lengths against `max_demands` / `max_links` at parse
//! time, so an out-of-range id can never reach indexing code. Violations
//! produce a typed [`ProtocolError`] whose [`ProtocolErrorKind`] is echoed
//! to the client as `error_kind`.

use harp_obs::Counter;
use serde_json::Value;

/// Responses that failed to serialize (should be impossible; counted so it
/// can never fail invisibly — see [`one_line`]).
static SERIALIZE_ERRORS: Counter = Counter::new("serve.serialize_error");

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Traffic matrix → per-tunnel splits.
    Infer {
        /// Sparse demands as `(src, dst, demand)` triples.
        demands: Vec<(usize, usize, f64)>,
        /// Per-request deadline override in milliseconds.
        deadline_ms: Option<u64>,
        /// When set, the request is only valid against this topology epoch.
        epoch: Option<u64>,
    },
    /// Fail and/or restore links (both directions), re-pruning tunnels.
    TopologyUpdate {
        /// Links to fail, as undirected `(u, v)` node pairs.
        fail_links: Vec<(usize, usize)>,
        /// Links to restore to their base capacity.
        restore_links: Vec<(usize, usize)>,
    },
    /// Swap in a new checkpoint after strict validation.
    ReloadCheckpoint {
        /// Path to a checkpoint written by `harp_nn::save_params`.
        path: String,
    },
    /// Serving counters and latency percentiles.
    Stats,
    /// Acknowledge, then drain and exit.
    Shutdown,
}

/// Bounds a request line is validated against at parse time. The serving
/// layer builds these from the live topology ([`WireLimits::for_nodes`]);
/// [`WireLimits::unbounded`] keeps standalone parsing (tests, tools)
/// permissive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireLimits {
    /// Node ids must be `< max_node` (the topology's node count).
    pub max_node: usize,
    /// Most demand triples accepted in one `infer`.
    pub max_demands: usize,
    /// Most link pairs accepted per `fail_links` / `restore_links` array.
    pub max_links: usize,
}

impl WireLimits {
    /// No bounds: any id that fits in `usize`, any array length.
    pub fn unbounded() -> Self {
        WireLimits {
            max_node: usize::MAX,
            max_demands: usize::MAX,
            max_links: usize::MAX,
        }
    }

    /// Limits for a topology with `n` nodes: ids `< n`, at most `4·n²`
    /// demand triples (a dense matrix is `n²`; the slack admits duplicate
    /// triples, which the server sums) and `4·n²` link pairs.
    pub fn for_nodes(n: usize) -> Self {
        let quad = n.saturating_mul(n).saturating_mul(4).max(16);
        WireLimits {
            max_node: n,
            max_demands: quad,
            max_links: quad,
        }
    }
}

/// Classification of a [`ProtocolError`], echoed on the wire as
/// `error_kind` so clients and chaos harnesses can assert on failure
/// classes instead of scraping message strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolErrorKind {
    /// The line is not a JSON object.
    InvalidJson,
    /// Valid JSON, but not a well-formed request (missing/mis-typed
    /// fields, unknown type, non-finite demand).
    InvalidRequest,
    /// A node id is negative, non-integral, or `>=` the topology's node
    /// count.
    NodeOutOfRange,
    /// An array exceeds the configured wire limits.
    TooLarge,
    /// The request line exceeded the byte cap before a newline arrived.
    Oversized,
}

impl ProtocolErrorKind {
    /// Stable wire code for the `error_kind` response field.
    pub fn code(self) -> &'static str {
        match self {
            ProtocolErrorKind::InvalidJson => "invalid_json",
            ProtocolErrorKind::InvalidRequest => "invalid_request",
            ProtocolErrorKind::NodeOutOfRange => "node_out_of_range",
            ProtocolErrorKind::TooLarge => "too_large",
            ProtocolErrorKind::Oversized => "oversized",
        }
    }
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolError {
    /// The request `id`, when one could still be recovered (echoed back so
    /// the client can correlate the error).
    pub id: Option<u64>,
    /// Failure class (also sent on the wire as `error_kind`).
    pub kind: ProtocolErrorKind,
    /// Human-readable reason.
    pub reason: String,
}

impl ProtocolError {
    fn new(id: Option<u64>, kind: ProtocolErrorKind, reason: impl Into<String>) -> Self {
        ProtocolError {
            id,
            kind,
            reason: reason.into(),
        }
    }

    /// Render this error as a response line.
    pub fn to_response(&self) -> String {
        error_response_kind(self.id, self.kind, &self.reason)
    }
}

/// Parse one request line with no bounds (standalone tools and tests).
/// Serving code must use [`parse_request_bounded`] with the live
/// topology's [`WireLimits`].
pub fn parse_request(line: &str) -> Result<(u64, Request), ProtocolError> {
    parse_request_bounded(line, &WireLimits::unbounded())
}

/// Parse one request line, validating every wire integer against
/// `limits` before it is converted to an index. On success returns
/// `(id, request)`.
pub fn parse_request_bounded(
    line: &str,
    limits: &WireLimits,
) -> Result<(u64, Request), ProtocolError> {
    use ProtocolErrorKind as K;
    let v: Value = serde_json::from_str(line.trim())
        .map_err(|e| ProtocolError::new(None, K::InvalidJson, format!("invalid JSON: {e:?}")))?;
    if v.as_object().is_none() {
        return Err(ProtocolError::new(
            None,
            K::InvalidJson,
            "request line is not a JSON object",
        ));
    }
    let id = v
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| ProtocolError::new(None, K::InvalidRequest, "missing numeric 'id'"))?;
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::new(Some(id), K::InvalidRequest, "missing string 'type'"))?;
    let req = match ty {
        "infer" => Request::Infer {
            demands: parse_demands(&v, limits)
                .map_err(|(k, r)| ProtocolError::new(Some(id), k, r))?,
            deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            epoch: v.get("epoch").and_then(Value::as_u64),
        },
        "topology_update" => Request::TopologyUpdate {
            fail_links: parse_links(&v, "fail_links", limits)
                .map_err(|(k, r)| ProtocolError::new(Some(id), k, r))?,
            restore_links: parse_links(&v, "restore_links", limits)
                .map_err(|(k, r)| ProtocolError::new(Some(id), k, r))?,
        },
        "reload_checkpoint" => Request::ReloadCheckpoint {
            path: v
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    ProtocolError::new(
                        Some(id),
                        K::InvalidRequest,
                        "reload_checkpoint needs 'path'",
                    )
                })?
                .to_string(),
        },
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ProtocolError::new(
                Some(id),
                K::InvalidRequest,
                format!("unknown request type {other:?}"),
            ))
        }
    };
    Ok((id, req))
}

/// Convert one wire integer to a validated node index. Rejects anything
/// that is not an exact non-negative integer below `max_node` — the cast
/// happens only after the bound check, so a hostile id can never become an
/// out-of-range index.
fn node_id(
    raw: &Value,
    what: impl Fn() -> String,
    limits: &WireLimits,
) -> Result<usize, (ProtocolErrorKind, String)> {
    let Some(u) = raw.as_u64() else {
        // as_u64 is None for negatives, floats with fractions, and
        // non-numbers: all "not a node id".
        return Err((
            ProtocolErrorKind::NodeOutOfRange,
            format!("{}: {raw:?} is not a non-negative integer node id", what()),
        ));
    };
    match usize::try_from(u) {
        Ok(idx) if idx < limits.max_node => Ok(idx),
        _ => Err((
            ProtocolErrorKind::NodeOutOfRange,
            format!(
                "{}: node id {u} is out of range (topology has {} nodes)",
                what(),
                limits.max_node
            ),
        )),
    }
}

#[allow(clippy::type_complexity)]
fn parse_demands(
    v: &Value,
    limits: &WireLimits,
) -> Result<Vec<(usize, usize, f64)>, (ProtocolErrorKind, String)> {
    use ProtocolErrorKind as K;
    let arr = v.get("demands").and_then(Value::as_array).ok_or((
        K::InvalidRequest,
        "infer needs 'demands': [[src, dst, demand], ..]".to_string(),
    ))?;
    if arr.len() > limits.max_demands {
        return Err((
            K::TooLarge,
            format!(
                "demands has {} triples, limit is {}",
                arr.len(),
                limits.max_demands
            ),
        ));
    }
    let mut out = Vec::with_capacity(arr.len());
    for (i, triple) in arr.iter().enumerate() {
        let t = triple.as_array().filter(|t| t.len() == 3).ok_or_else(|| {
            (
                K::InvalidRequest,
                format!("demands[{i}] is not a [src, dst, demand] triple"),
            )
        })?;
        let s = node_id(&t[0], || format!("demands[{i}].src"), limits)?;
        let d = node_id(&t[1], || format!("demands[{i}].dst"), limits)?;
        let demand = t[2].as_f64().ok_or_else(|| {
            (
                K::InvalidRequest,
                format!("demands[{i}]: demand is not a number"),
            )
        })?;
        if !demand.is_finite() || demand < 0.0 {
            return Err((
                K::InvalidRequest,
                format!("demands[{i}]: demand {demand} is not finite and >= 0"),
            ));
        }
        out.push((s, d, demand));
    }
    Ok(out)
}

#[allow(clippy::type_complexity)]
fn parse_links(
    v: &Value,
    key: &str,
    limits: &WireLimits,
) -> Result<Vec<(usize, usize)>, (ProtocolErrorKind, String)> {
    use ProtocolErrorKind as K;
    let Some(arr) = v.get(key) else {
        return Ok(Vec::new());
    };
    let arr = arr.as_array().ok_or_else(|| {
        (
            K::InvalidRequest,
            format!("'{key}' must be an array of [u, v] pairs"),
        )
    })?;
    if arr.len() > limits.max_links {
        return Err((
            K::TooLarge,
            format!(
                "{key} has {} pairs, limit is {}",
                arr.len(),
                limits.max_links
            ),
        ));
    }
    let mut out = Vec::with_capacity(arr.len());
    for (i, pair) in arr.iter().enumerate() {
        let p = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
            (
                K::InvalidRequest,
                format!("{key}[{i}] is not a [u, v] pair"),
            )
        })?;
        let u = node_id(&p[0], || format!("{key}[{i}].u"), limits)?;
        let w = node_id(&p[1], || format!("{key}[{i}].v"), limits)?;
        out.push((u, w));
    }
    Ok(out)
}

/// Render a success response: `{"id":.., "ok":true, ..payload}`.
pub fn ok_response(id: u64, payload: Value) -> String {
    let mut map = match payload {
        Value::Object(m) => m,
        _ => serde_json::Map::new(),
    };
    map.insert("id".to_string(), Value::from(id as f64));
    map.insert("ok".to_string(), Value::Bool(true));
    one_line(&Value::Object(map))
}

/// Render an error response: `{"id":.., "ok":false, "error":..}`. A `None`
/// id (unparseable request) serializes as JSON `null`.
pub fn error_response(id: Option<u64>, error: &str) -> String {
    let idv = match id {
        Some(i) => Value::from(i as f64),
        None => Value::Null,
    };
    one_line(&serde_json::json!({ "id": idv, "ok": false, "error": error }))
}

/// Render a typed error response carrying `error_kind` (see
/// [`ProtocolErrorKind::code`]; also used for shed responses).
pub fn error_response_kind(id: Option<u64>, kind: ProtocolErrorKind, error: &str) -> String {
    let idv = match id {
        Some(i) => Value::from(i as f64),
        None => Value::Null,
    };
    one_line(&serde_json::json!({
        "id": idv,
        "ok": false,
        "error": error,
        "error_kind": kind.code(),
    }))
}

/// Render a shed (admission-control) error response with a
/// `shed`-prefixed `error_kind` so clients can distinguish overload from
/// protocol mistakes.
pub fn shed_response(id: Option<u64>, reason_code: &str, error: &str) -> String {
    let idv = match id {
        Some(i) => Value::from(i as f64),
        None => Value::Null,
    };
    one_line(&serde_json::json!({
        "id": idv,
        "ok": false,
        "error": error,
        "error_kind": reason_code,
        "shed": true,
    }))
}

/// Serialize one response line. A serialization failure is structurally
/// impossible for the value shapes this module builds, but if it ever
/// happens it must not be invisible: it is counted
/// (`serve.serialize_error`) and shouted via `harp-obs` before the
/// fallback error line is returned.
fn one_line(v: &Value) -> String {
    match serde_json::to_string(v) {
        Ok(mut s) => {
            s.push('\n');
            s
        }
        Err(e) => {
            SERIALIZE_ERRORS.add(1);
            harp_obs::warn_always(
                "serve.serialize_error",
                &[("error", format!("{e:?}").into())],
            );
            "{\"id\":null,\"ok\":false,\"error\":\"internal: response serialization failed\",\"error_kind\":\"serialize_error\"}\n"
                .to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_infer() {
        let (id, req) = parse_request(
            r#"{"id": 7, "type": "infer", "demands": [[0, 2, 4.5], [2, 0, 1]], "deadline_ms": 50}"#,
        )
        .unwrap();
        assert_eq!(id, 7);
        assert_eq!(
            req,
            Request::Infer {
                demands: vec![(0, 2, 4.5), (2, 0, 1.0)],
                deadline_ms: Some(50),
                epoch: None,
            }
        );
    }

    #[test]
    fn parses_topology_update_with_defaults() {
        let (_, req) =
            parse_request(r#"{"id": 1, "type": "topology_update", "fail_links": [[0, 1]]}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::TopologyUpdate {
                fail_links: vec![(0, 1)],
                restore_links: vec![],
            }
        );
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(
            parse_request(r#"{"id": 2, "type": "stats"}"#).unwrap().1,
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"id": 3, "type": "shutdown"}"#).unwrap().1,
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"id": 4, "type": "reload_checkpoint", "path": "m.json"}"#)
                .unwrap()
                .1,
            Request::ReloadCheckpoint {
                path: "m.json".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_requests_keeping_id() {
        let e = parse_request(r#"{"id": 9, "type": "warp"}"#).unwrap_err();
        assert_eq!(e.id, Some(9));
        assert_eq!(e.kind, ProtocolErrorKind::InvalidRequest);
        assert!(e.reason.contains("warp"));

        let e = parse_request(r#"{"type": "stats"}"#).unwrap_err();
        assert_eq!(e.id, None);

        let e = parse_request("not json").unwrap_err();
        assert_eq!(e.id, None);
        assert_eq!(e.kind, ProtocolErrorKind::InvalidJson);

        let e =
            parse_request(r#"{"id": 5, "type": "infer", "demands": [[0, 1, -3]]}"#).unwrap_err();
        assert_eq!(e.id, Some(5));
        assert!(e.reason.contains("finite"));
    }

    #[test]
    fn node_ids_are_bounds_checked_before_any_cast() {
        let limits = WireLimits::for_nodes(4);

        // in-range ids parse
        let (_, req) = parse_request_bounded(
            r#"{"id": 1, "type": "infer", "demands": [[0, 3, 1.0]]}"#,
            &limits,
        )
        .unwrap();
        assert!(matches!(req, Request::Infer { .. }));

        // id == node count is out of range (0-based ids)
        let e = parse_request_bounded(
            r#"{"id": 2, "type": "infer", "demands": [[0, 4, 1.0]]}"#,
            &limits,
        )
        .unwrap_err();
        assert_eq!(e.kind, ProtocolErrorKind::NodeOutOfRange);
        assert_eq!(e.id, Some(2));
        assert!(e.reason.contains("4 nodes"), "{}", e.reason);

        // a huge wire integer is rejected, never truncated into an index
        let e = parse_request_bounded(
            r#"{"id": 3, "type": "infer", "demands": [[18446744073709551615, 0, 1.0]]}"#,
            &limits,
        )
        .unwrap_err();
        assert_eq!(e.kind, ProtocolErrorKind::NodeOutOfRange);

        // negative ids are NodeOutOfRange, not a generic schema error
        let e = parse_request_bounded(
            r#"{"id": 4, "type": "infer", "demands": [[-1, 0, 1.0]]}"#,
            &limits,
        )
        .unwrap_err();
        assert_eq!(e.kind, ProtocolErrorKind::NodeOutOfRange);

        // link pairs get the same treatment
        let e = parse_request_bounded(
            r#"{"id": 5, "type": "topology_update", "fail_links": [[0, 99]]}"#,
            &limits,
        )
        .unwrap_err();
        assert_eq!(e.kind, ProtocolErrorKind::NodeOutOfRange);
    }

    #[test]
    fn oversized_arrays_are_rejected_as_too_large() {
        let limits = WireLimits {
            max_node: 4,
            max_demands: 2,
            max_links: 2,
        };
        let e = parse_request_bounded(
            r#"{"id": 1, "type": "infer", "demands": [[0,1,1],[1,2,1],[2,3,1]]}"#,
            &limits,
        )
        .unwrap_err();
        assert_eq!(e.kind, ProtocolErrorKind::TooLarge);

        let e = parse_request_bounded(
            r#"{"id": 2, "type": "topology_update", "restore_links": [[0,1],[1,2],[2,3]]}"#,
            &limits,
        )
        .unwrap_err();
        assert_eq!(e.kind, ProtocolErrorKind::TooLarge);
    }

    #[test]
    fn typed_errors_render_error_kind_on_the_wire() {
        let e = parse_request_bounded(
            r#"{"id": 8, "type": "infer", "demands": [[7, 0, 1.0]]}"#,
            &WireLimits::for_nodes(2),
        )
        .unwrap_err();
        let line = e.to_response();
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error_kind").and_then(Value::as_str),
            Some("node_out_of_range")
        );
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(8));
    }

    #[test]
    fn responses_are_single_lines() {
        let ok = ok_response(3, serde_json::json!({"epoch": 1}));
        assert!(ok.ends_with('\n'));
        assert_eq!(ok.matches('\n').count(), 1);
        let v: Value = serde_json::from_str(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));

        let err = error_response(None, "bad");
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("id").unwrap().is_null());
    }

    #[test]
    fn shed_responses_are_marked() {
        let line = shed_response(Some(4), "shed_overload", "queue full");
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("shed").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("error_kind").and_then(Value::as_str),
            Some("shed_overload")
        );
    }

    #[test]
    fn serialize_fallback_line_is_valid_json() {
        // The fallback string in one_line must itself parse, so even the
        // impossible path yields a protocol-conformant line.
        let fallback = "{\"id\":null,\"ok\":false,\"error\":\"internal: response serialization failed\",\"error_kind\":\"serialize_error\"}\n";
        let v: Value = serde_json::from_str(fallback).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    }
}
