//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line with a numeric `id` (echoed
//! back) and a `type`; every response is one JSON object on one line with
//! the same `id` plus `ok` (and `error` when `ok` is false). Requests:
//!
//! | `type` | fields | reply payload |
//! |---|---|---|
//! | `infer` | `demands: [[src, dst, demand], ..]`, optional `deadline_ms`, optional `epoch` pin | `epoch`, `degraded`, `mlu`, `splits`, `latency_us` |
//! | `topology_update` | `fail_links: [[u, v], ..]`, `restore_links: [[u, v], ..]` | `epoch`, `num_flows`, `num_tunnels`, `failed_links` |
//! | `reload_checkpoint` | `path` | `epoch`, `params` |
//! | `stats` | — | counters + latency percentiles |
//! | `shutdown` | — | ack, then the daemon drains and exits |

use serde_json::Value;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Traffic matrix → per-tunnel splits.
    Infer {
        /// Sparse demands as `(src, dst, demand)` triples.
        demands: Vec<(usize, usize, f64)>,
        /// Per-request deadline override in milliseconds.
        deadline_ms: Option<u64>,
        /// When set, the request is only valid against this topology epoch.
        epoch: Option<u64>,
    },
    /// Fail and/or restore links (both directions), re-pruning tunnels.
    TopologyUpdate {
        /// Links to fail, as undirected `(u, v)` node pairs.
        fail_links: Vec<(usize, usize)>,
        /// Links to restore to their base capacity.
        restore_links: Vec<(usize, usize)>,
    },
    /// Swap in a new checkpoint after strict validation.
    ReloadCheckpoint {
        /// Path to a checkpoint written by `harp_nn::save_params`.
        path: String,
    },
    /// Serving counters and latency percentiles.
    Stats,
    /// Acknowledge, then drain and exit.
    Shutdown,
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolError {
    /// The request `id`, when one could still be recovered (echoed back so
    /// the client can correlate the error).
    pub id: Option<u64>,
    /// Human-readable reason.
    pub reason: String,
}

impl ProtocolError {
    fn new(id: Option<u64>, reason: impl Into<String>) -> Self {
        ProtocolError {
            id,
            reason: reason.into(),
        }
    }
}

/// Parse one request line. On success returns `(id, request)`.
pub fn parse_request(line: &str) -> Result<(u64, Request), ProtocolError> {
    let v: Value = serde_json::from_str(line.trim())
        .map_err(|e| ProtocolError::new(None, format!("invalid JSON: {e:?}")))?;
    let id = v
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| ProtocolError::new(None, "missing numeric 'id'"))?;
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::new(Some(id), "missing string 'type'"))?;
    let req = match ty {
        "infer" => Request::Infer {
            demands: parse_demands(&v).map_err(|r| ProtocolError::new(Some(id), r))?,
            deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
            epoch: v.get("epoch").and_then(Value::as_u64),
        },
        "topology_update" => Request::TopologyUpdate {
            fail_links: parse_links(&v, "fail_links")
                .map_err(|r| ProtocolError::new(Some(id), r))?,
            restore_links: parse_links(&v, "restore_links")
                .map_err(|r| ProtocolError::new(Some(id), r))?,
        },
        "reload_checkpoint" => Request::ReloadCheckpoint {
            path: v
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| ProtocolError::new(Some(id), "reload_checkpoint needs 'path'"))?
                .to_string(),
        },
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ProtocolError::new(
                Some(id),
                format!("unknown request type {other:?}"),
            ))
        }
    };
    Ok((id, req))
}

fn parse_demands(v: &Value) -> Result<Vec<(usize, usize, f64)>, String> {
    let arr = v
        .get("demands")
        .and_then(Value::as_array)
        .ok_or("infer needs 'demands': [[src, dst, demand], ..]")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, triple) in arr.iter().enumerate() {
        let t = triple
            .as_array()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| format!("demands[{i}] is not a [src, dst, demand] triple"))?;
        let s = t[0]
            .as_u64()
            .ok_or_else(|| format!("demands[{i}]: src is not a node id"))?;
        let d = t[1]
            .as_u64()
            .ok_or_else(|| format!("demands[{i}]: dst is not a node id"))?;
        let demand = t[2]
            .as_f64()
            .ok_or_else(|| format!("demands[{i}]: demand is not a number"))?;
        if !demand.is_finite() || demand < 0.0 {
            return Err(format!(
                "demands[{i}]: demand {demand} is not finite and >= 0"
            ));
        }
        out.push((s as usize, d as usize, demand));
    }
    Ok(out)
}

fn parse_links(v: &Value, key: &str) -> Result<Vec<(usize, usize)>, String> {
    let Some(arr) = v.get(key) else {
        return Ok(Vec::new());
    };
    let arr = arr
        .as_array()
        .ok_or_else(|| format!("'{key}' must be an array of [u, v] pairs"))?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, pair) in arr.iter().enumerate() {
        let p = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{key}[{i}] is not a [u, v] pair"))?;
        let u = p[0]
            .as_u64()
            .ok_or_else(|| format!("{key}[{i}]: u is not a node id"))?;
        let w = p[1]
            .as_u64()
            .ok_or_else(|| format!("{key}[{i}]: v is not a node id"))?;
        out.push((u as usize, w as usize));
    }
    Ok(out)
}

/// Render a success response: `{"id":.., "ok":true, ..payload}`.
pub fn ok_response(id: u64, payload: Value) -> String {
    let mut map = match payload {
        Value::Object(m) => m,
        _ => serde_json::Map::new(),
    };
    map.insert("id".to_string(), Value::from(id as f64));
    map.insert("ok".to_string(), Value::Bool(true));
    one_line(&Value::Object(map))
}

/// Render an error response: `{"id":.., "ok":false, "error":..}`. A `None`
/// id (unparseable request) serializes as JSON `null`.
pub fn error_response(id: Option<u64>, error: &str) -> String {
    let idv = match id {
        Some(i) => Value::from(i as f64),
        None => Value::Null,
    };
    one_line(&serde_json::json!({ "id": idv, "ok": false, "error": error }))
}

fn one_line(v: &Value) -> String {
    let mut s = serde_json::to_string(v).unwrap_or_else(|_| "{\"ok\":false}".to_string());
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_infer() {
        let (id, req) = parse_request(
            r#"{"id": 7, "type": "infer", "demands": [[0, 2, 4.5], [2, 0, 1]], "deadline_ms": 50}"#,
        )
        .unwrap();
        assert_eq!(id, 7);
        assert_eq!(
            req,
            Request::Infer {
                demands: vec![(0, 2, 4.5), (2, 0, 1.0)],
                deadline_ms: Some(50),
                epoch: None,
            }
        );
    }

    #[test]
    fn parses_topology_update_with_defaults() {
        let (_, req) =
            parse_request(r#"{"id": 1, "type": "topology_update", "fail_links": [[0, 1]]}"#)
                .unwrap();
        assert_eq!(
            req,
            Request::TopologyUpdate {
                fail_links: vec![(0, 1)],
                restore_links: vec![],
            }
        );
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(
            parse_request(r#"{"id": 2, "type": "stats"}"#).unwrap().1,
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"id": 3, "type": "shutdown"}"#).unwrap().1,
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"id": 4, "type": "reload_checkpoint", "path": "m.json"}"#)
                .unwrap()
                .1,
            Request::ReloadCheckpoint {
                path: "m.json".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_requests_keeping_id() {
        let e = parse_request(r#"{"id": 9, "type": "warp"}"#).unwrap_err();
        assert_eq!(e.id, Some(9));
        assert!(e.reason.contains("warp"));

        let e = parse_request(r#"{"type": "stats"}"#).unwrap_err();
        assert_eq!(e.id, None);

        let e = parse_request("not json").unwrap_err();
        assert_eq!(e.id, None);

        let e =
            parse_request(r#"{"id": 5, "type": "infer", "demands": [[0, 1, -3]]}"#).unwrap_err();
        assert_eq!(e.id, Some(5));
        assert!(e.reason.contains("finite"));
    }

    #[test]
    fn responses_are_single_lines() {
        let ok = ok_response(3, serde_json::json!({"epoch": 1}));
        assert!(ok.ends_with('\n'));
        assert_eq!(ok.matches('\n').count(), 1);
        let v: Value = serde_json::from_str(&ok).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));

        let err = error_response(None, "bad");
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("id").unwrap().is_null());
    }
}
