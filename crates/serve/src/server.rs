//! The daemon: TCP listener, per-connection reader threads, and the
//! single batcher thread that owns all mutable serving state.
//!
//! Concurrency model — one owner, no locks on the hot state:
//!
//! * every connection thread parses request lines and enqueues jobs onto
//!   one mpsc queue, then blocks for the rendered response line;
//! * the **batcher thread** is the only owner of [`NetworkState`] and the
//!   current parameter store. It drains the queue, groups consecutive
//!   `infer` jobs into a batch (control jobs act as barriers), fans the
//!   batch across the `harp-runtime` worker pool, and applies topology
//!   updates / checkpoint swaps between batches. Epoch reads, tunnel
//!   pruning, and `Arc<ParamStore>` swaps therefore never race.
//!
//! Degradation policy: a response is *degraded* — served from last-good
//! splits, or uniform ECMP before any inference has succeeded — when the
//! request's deadline expires before or during inference, or when the
//! model returns non-finite splits. Degraded responses carry
//! `degraded: true` plus a `reason`, and are counted in `stats`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use harp_core::{
    run_inference, run_inference_cached, EpochCache, EvalOptions, Instance, SplitModel,
};
use harp_nn::load_params;
use harp_paths::TunnelSet;
use harp_runtime::Runtime;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use serde_json::Value;

use crate::protocol::{error_response, ok_response, parse_request, Request};
use crate::state::NetworkState;
use crate::stats::{DegradeReason, ServeStats};

/// Daemon configuration; see [`ServeConfig::from_env`] for the env knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7447` (port 0 picks a free port).
    pub addr: String,
    /// Default per-request deadline in milliseconds (requests may override
    /// with their own `deadline_ms`).
    pub deadline_ms: u64,
    /// Most infer jobs fanned out in one batch.
    pub max_batch: usize,
    /// Close a connection after this long without receiving any bytes
    /// (0 disables the idle timeout). A client that hangs mid-request must
    /// not pin a reader thread forever.
    pub read_timeout_ms: u64,
    /// Longest accepted request line in bytes. An oversized line gets a
    /// structured JSON error and is discarded up to its newline — it must
    /// never buffer unboundedly or crash the reader.
    pub max_line_bytes: usize,
    /// Fault-injection plan for chaos tests (connection drop/delay faults
    /// at accept). `None` falls back to the process-wide `HARP_FAULT` plan.
    pub chaos: Option<Arc<harp_chaos::FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7447".to_string(),
            deadline_ms: 250,
            max_batch: 32,
            read_timeout_ms: 30_000,
            max_line_bytes: 64 * 1024,
            chaos: None,
        }
    }
}

impl ServeConfig {
    /// Configuration from the environment: `HARP_SERVE_ADDR` (listen
    /// address), `HARP_SERVE_DEADLINE_MS` (default deadline), and
    /// `HARP_SERVE_READ_TIMEOUT_MS` (idle-connection timeout; `0`
    /// disables). Invalid values warn via `harp-obs` and fall back to the
    /// defaults, matching the `HARP_THREADS` convention of failing loudly
    /// but not fatally.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(addr) = std::env::var("HARP_SERVE_ADDR") {
            if !addr.is_empty() {
                cfg.addr = addr;
            }
        }
        if let Ok(raw) = std::env::var("HARP_SERVE_DEADLINE_MS") {
            match raw.parse::<u64>() {
                Ok(ms) if ms > 0 => cfg.deadline_ms = ms,
                _ => harp_obs::warn_always(
                    "serve.deadline_fallback",
                    &[
                        ("value", raw.clone().into()),
                        ("fallback_ms", cfg.deadline_ms.into()),
                    ],
                ),
            }
        }
        if let Ok(raw) = std::env::var("HARP_SERVE_READ_TIMEOUT_MS") {
            match raw.parse::<u64>() {
                Ok(ms) => cfg.read_timeout_ms = ms,
                Err(_) => harp_obs::warn_always(
                    "serve.read_timeout_fallback",
                    &[
                        ("value", raw.clone().into()),
                        ("fallback_ms", cfg.read_timeout_ms.into()),
                    ],
                ),
            }
        }
        cfg
    }
}

/// One queued `infer` request.
struct InferJob {
    id: u64,
    demands: Vec<(usize, usize, f64)>,
    epoch_pin: Option<u64>,
    deadline: Instant,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

/// Anything the batcher thread processes.
enum Job {
    Infer(InferJob),
    Control {
        id: u64,
        req: Request,
        reply: mpsc::Sender<String>,
    },
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send a `shutdown` request).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    listener: Option<thread::JoinHandle<()>>,
    batcher: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared serving counters (also reachable via the `stats` request).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Stop accepting, drain in-flight work, and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
    }
}

/// How often blocked threads re-check the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// Start the daemon: bind `cfg.addr`, spawn the batcher and listener
/// threads, and return a handle. `model` + `store` are the serving model
/// (the store is hot-swappable via `reload_checkpoint`); `topo` +
/// `tunnels` define epoch 0 of the network.
pub fn serve(
    cfg: ServeConfig,
    model: Arc<dyn SplitModel + Send + Sync>,
    store: ParamStore,
    topo: Topology,
    tunnels: TunnelSet,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServeStats::new());
    let queue_depth = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<Job>();

    harp_obs::event("serve.start")
        .field("addr", addr.to_string())
        .field("deadline_ms", cfg.deadline_ms)
        .emit();

    let batcher = {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let depth = Arc::clone(&queue_depth);
        let cfg = cfg.clone();
        thread::spawn(move || {
            let state = NetworkState::new(topo, tunnels);
            batcher_loop(rx, state, model, store, cfg, stop, stats, depth);
        })
    };

    let listener_thread = {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let depth = Arc::clone(&queue_depth);
        let conn_cfg = cfg.clone();
        let chaos = cfg.chaos.clone().or_else(harp_chaos::global_plan);
        thread::spawn(move || {
            let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Chaos: drop or delay this connection at accept,
                        // simulating a flaky network path to the daemon.
                        if let Some(plan) = &chaos {
                            match plan.conn_fault() {
                                Some(harp_chaos::ConnFault::Drop) => {
                                    drop(stream);
                                    continue;
                                }
                                Some(harp_chaos::ConnFault::DelayMs(ms)) => {
                                    thread::sleep(Duration::from_millis(ms));
                                }
                                None => {}
                            }
                        }
                        let tx = tx.clone();
                        let stop = Arc::clone(&stop);
                        let stats = Arc::clone(&stats);
                        let depth = Arc::clone(&depth);
                        let conn_cfg = conn_cfg.clone();
                        conns.push(thread::spawn(move || {
                            handle_connection(stream, tx, stop, stats, depth, &conn_cfg);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(POLL);
                    }
                    Err(_) => break,
                }
                conns.retain(|h| !h.is_finished());
            }
            drop(tx); // batcher's rx disconnects once all connections close
            for h in conns {
                let _ = h.join();
            }
        })
    };

    Ok(ServerHandle {
        addr,
        stop,
        stats,
        listener: Some(listener_thread),
        batcher: Some(batcher),
    })
}

/// Read request lines off one client connection, enqueue jobs, and write
/// back rendered responses (one per request, in request order).
///
/// Hostile-input hardening: any byte sequence a client sends must produce
/// either a response line or a closed connection — never a panic, never
/// unbounded buffering. A line over [`ServeConfig::max_line_bytes`] gets a
/// structured JSON error and is discarded through its newline; a
/// connection idle past [`ServeConfig::read_timeout_ms`] is closed.
fn handle_connection(
    stream: TcpStream,
    jobs: mpsc::Sender<Job>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    depth: Arc<AtomicUsize>,
    cfg: &ServeConfig,
) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let idle_budget = (cfg.read_timeout_ms > 0).then(|| Duration::from_millis(cfg.read_timeout_ms));
    let mut last_progress = Instant::now();
    // When an oversized line tripped the cap: keep dropping bytes until
    // its terminating newline instead of buffering them.
    let mut discarding = false;

    // Announce a cap violation: structured error back to the client, then
    // discard the rest of the line. Returns false if the peer is gone.
    fn reject_oversized(
        writer: &mut TcpStream,
        buf: &mut Vec<u8>,
        stats: &ServeStats,
        max_line_bytes: usize,
    ) -> bool {
        stats.record_protocol_error();
        harp_obs::event("serve.oversized_line")
            .field("bytes", buf.len())
            .field("max_bytes", max_line_bytes)
            .emit();
        let resp = error_response(
            None,
            &format!("request line exceeds {max_line_bytes} bytes"),
        );
        buf.clear();
        writer.write_all(resp.as_bytes()).is_ok() && writer.flush().is_ok()
    }

    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                last_progress = Instant::now();
                let complete = buf.last() == Some(&b'\n');
                if discarding {
                    discarding = !complete;
                    buf.clear();
                    continue;
                }
                if buf.len() > cfg.max_line_bytes {
                    if !reject_oversized(&mut writer, &mut buf, &stats, cfg.max_line_bytes) {
                        break;
                    }
                    discarding = !complete;
                    continue;
                }
                // a timeout may have returned a partial line earlier; only
                // a newline terminates a request
                if !complete {
                    continue;
                }
                let line = String::from_utf8_lossy(&buf).into_owned();
                buf.clear();
                if line.trim().is_empty() {
                    continue;
                }
                let response = dispatch_line(&line, &jobs, &stats, &depth, cfg.deadline_ms);
                if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // A timed-out read still appends what it got to `buf` —
                // enforce the cap here too, or a client streaming one
                // endless unterminated line would buffer without bound
                // and never hear back.
                if discarding {
                    buf.clear();
                } else if buf.len() > cfg.max_line_bytes {
                    if !reject_oversized(&mut writer, &mut buf, &stats, cfg.max_line_bytes) {
                        break;
                    }
                    discarding = true;
                }
                if let Some(budget) = idle_budget {
                    if last_progress.elapsed() >= budget {
                        harp_obs::event("serve.conn_idle_timeout")
                            .field("idle_ms", last_progress.elapsed().as_millis() as u64)
                            .emit();
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
}

/// Parse one request line, route it through the batcher, and return the
/// rendered response line.
fn dispatch_line(
    line: &str,
    jobs: &mpsc::Sender<Job>,
    stats: &ServeStats,
    depth: &AtomicUsize,
    deadline_ms: u64,
) -> String {
    let (id, req) = match parse_request(line) {
        Ok(parsed) => parsed,
        Err(e) => {
            stats.record_protocol_error();
            return error_response(e.id, &e.reason);
        }
    };
    stats.record_request();

    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let enqueued = Instant::now();
    let job = match req {
        Request::Infer {
            demands,
            deadline_ms: per_req,
            epoch,
        } => {
            let budget = Duration::from_millis(per_req.unwrap_or(deadline_ms));
            Job::Infer(InferJob {
                id,
                demands,
                epoch_pin: epoch,
                deadline: enqueued + budget,
                enqueued,
                reply: reply_tx,
            })
        }
        other => Job::Control {
            id,
            req: other,
            reply: reply_tx,
        },
    };
    depth.fetch_add(1, Ordering::Relaxed);
    if jobs.send(job).is_err() {
        depth.fetch_sub(1, Ordering::Relaxed);
        return error_response(Some(id), "server is shutting down");
    }
    // The batcher always answers every dequeued job; a long timeout only
    // guards against it having died mid-request.
    match reply_rx.recv_timeout(Duration::from_secs(60)) {
        Ok(resp) => resp,
        Err(_) => error_response(Some(id), "server did not answer in time"),
    }
}

/// The batcher thread body: drain jobs, batch infers, apply control ops.
#[allow(clippy::too_many_arguments)]
fn batcher_loop(
    rx: mpsc::Receiver<Job>,
    mut state: NetworkState,
    model: Arc<dyn SplitModel + Send + Sync>,
    store: ParamStore,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    depth: Arc<AtomicUsize>,
) {
    let rt = Runtime::global();
    let mut store = Arc::new(store);
    // TM-independent model state for the current (epoch, store) pair;
    // rebuilt lazily on the first infer after any topology update or
    // checkpoint reload. Only the batcher touches it, so no locking.
    let mut epoch_cache: Option<EpochCache> = None;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let job = match rx.recv_timeout(POLL) {
            Ok(j) => j,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        depth.fetch_sub(1, Ordering::Relaxed);
        match job {
            Job::Control { id, req, reply } => {
                let resp = handle_control(
                    id,
                    req,
                    &mut state,
                    &mut store,
                    &mut epoch_cache,
                    &stop,
                    &stats,
                );
                let _ = reply.send(resp);
            }
            Job::Infer(first) => {
                let mut batch = vec![first];
                let mut barrier = None;
                while batch.len() < cfg.max_batch {
                    match rx.try_recv() {
                        Ok(Job::Infer(j)) => {
                            depth.fetch_sub(1, Ordering::Relaxed);
                            batch.push(j);
                        }
                        Ok(ctl) => {
                            depth.fetch_sub(1, Ordering::Relaxed);
                            barrier = Some(ctl);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                stats.record_batch(batch.len(), depth.load(Ordering::Relaxed));
                if epoch_cache.is_none() {
                    // Zero-TM instance: precompute only reads the
                    // topology/tunnel tensors.
                    let blank = TrafficMatrix::zeros(state.topology().num_nodes());
                    let inst = Instance::compile(state.topology(), state.tunnels(), &blank);
                    epoch_cache = model.precompute_epoch(&store, &inst);
                }
                process_batch(
                    batch,
                    &mut state,
                    model.as_ref(),
                    &store,
                    epoch_cache.as_ref(),
                    &rt,
                    &stats,
                );
                if let Some(Job::Control { id, req, reply }) = barrier {
                    let resp = handle_control(
                        id,
                        req,
                        &mut state,
                        &mut store,
                        &mut epoch_cache,
                        &stop,
                        &stats,
                    );
                    let _ = reply.send(resp);
                }
            }
        }
    }
}

/// Run one batch of infer jobs through the model on the worker pool and
/// answer each, degrading individually on deadline miss or model error.
fn process_batch(
    batch: Vec<InferJob>,
    state: &mut NetworkState,
    model: &dyn SplitModel,
    store: &Arc<ParamStore>,
    epoch_cache: Option<&EpochCache>,
    rt: &Runtime,
    stats: &ServeStats,
) {
    let _span = harp_obs::span("serve.batch");
    let n = state.topology().num_nodes();
    let epoch = state.epoch();

    // Weed out jobs that can't run: stale epoch pins and bad node ids get
    // error responses; already-expired deadlines degrade immediately.
    let mut runnable: Vec<InferJob> = Vec::with_capacity(batch.len());
    for job in batch {
        if let Some(pin) = job.epoch_pin {
            if pin != epoch {
                stats.record_stale_epoch();
                let _ = job.reply.send(error_response(
                    Some(job.id),
                    &format!("stale epoch: request pinned to {pin}, current is {epoch}"),
                ));
                continue;
            }
        }
        if let Some(&(s, t, _)) = job.demands.iter().find(|&&(s, t, _)| s >= n || t >= n) {
            let _ = job.reply.send(error_response(
                Some(job.id),
                &format!("demand ({s}, {t}) references a node >= {n}"),
            ));
            continue;
        }
        if Instant::now() >= job.deadline {
            degrade(&job, state, stats, DegradeReason::DeadlineMiss);
            continue;
        }
        runnable.push(job);
    }
    if runnable.is_empty() {
        return;
    }

    // Fan the batch across the worker pool. Each job compiles its own
    // instance (the TM differs per request; topology and tunnels are the
    // epoch's). Tunnels crossing failed links are already pruned, so no
    // local rescaling is needed on top.
    let matrices: Vec<TrafficMatrix> = runnable
        .iter()
        .map(|job| {
            let mut tm = TrafficMatrix::zeros(n);
            for &(s, t, d) in &job.demands {
                tm.set_demand(s, t, tm.demand(s, t) + d);
            }
            tm
        })
        .collect();
    let topo = state.topology().clone();
    let tunnels = state.tunnels().clone();
    let store_ref = Arc::clone(store);
    let deadlines: Vec<Instant> = runnable.iter().map(|j| j.deadline).collect();
    let results = rt.par_map(&matrices, |i, tm| {
        if Instant::now() >= deadlines[i] {
            return None; // expired while queued behind batch-mates
        }
        let _span = harp_obs::span("serve.infer");
        let instance = Instance::compile(&topo, &tunnels, tm);
        // Each inference reuses a pooled tape arena (see `harp_tensor::Tape`),
        // so the per-request hot loop is allocation-free after warm-up.
        Some(match epoch_cache {
            Some(c) => run_inference_cached(
                model,
                store_ref.as_ref(),
                &instance,
                EvalOptions::default(),
                c,
            ),
            None => run_inference(model, store_ref.as_ref(), &instance, EvalOptions::default()),
        })
    });

    let mut newest_good: Option<Vec<f64>> = None;
    for (job, result) in runnable.into_iter().zip(results) {
        match result {
            None => degrade(&job, state, stats, DegradeReason::DeadlineMiss),
            Some(inf) if !inf.is_finite() => {
                harp_obs::event("serve.model_error")
                    .field("id", job.id)
                    .emit();
                degrade(&job, state, stats, DegradeReason::ModelError);
            }
            Some(inf) if Instant::now() >= job.deadline => {
                // finished too late to ship; still remember the splits
                newest_good = Some(inf.splits);
                degrade(&job, state, stats, DegradeReason::DeadlineMiss);
            }
            Some(inf) => {
                let latency_us = job.enqueued.elapsed().as_micros() as u64;
                stats.record_infer_ok(latency_us);
                let _ = job.reply.send(ok_response(
                    job.id,
                    serde_json::json!({
                        "epoch": epoch,
                        "degraded": false,
                        "mlu": inf.mlu,
                        "splits": Value::from(inf.splits.clone()),
                        "latency_us": latency_us,
                    }),
                ));
                newest_good = Some(inf.splits);
            }
        }
    }
    if let Some(splits) = newest_good {
        state.set_last_good(splits);
    }
}

/// Answer one job from fallback splits and count it as degraded.
fn degrade(job: &InferJob, state: &NetworkState, stats: &ServeStats, reason: DegradeReason) {
    let (splits, source) = state.fallback_splits();
    let latency_us = job.enqueued.elapsed().as_micros() as u64;
    stats.record_degraded(reason, latency_us);
    let reason_str = match reason {
        DegradeReason::DeadlineMiss => "deadline_miss",
        DegradeReason::ModelError => "model_error",
    };
    let _ = job.reply.send(ok_response(
        job.id,
        serde_json::json!({
            "epoch": state.epoch(),
            "degraded": true,
            "reason": reason_str,
            "splits_source": source,
            "splits": Value::from(splits),
            "latency_us": latency_us,
        }),
    ));
}

/// Apply one control request on the batcher thread.
fn handle_control(
    id: u64,
    req: Request,
    state: &mut NetworkState,
    store: &mut Arc<ParamStore>,
    epoch_cache: &mut Option<EpochCache>,
    stop: &AtomicBool,
    stats: &ServeStats,
) -> String {
    match req {
        Request::TopologyUpdate {
            fail_links,
            restore_links,
        } => {
            let _span = harp_obs::span("serve.topology_update");
            match state.apply_update(&fail_links, &restore_links) {
                Ok(s) => {
                    *epoch_cache = None; // tunnels changed: embeddings are stale
                    stats.record_topology_update();
                    harp_obs::event("serve.topology_update")
                        .field("epoch", s.epoch)
                        .field("failed_links", s.failed_links)
                        .emit();
                    ok_response(
                        id,
                        serde_json::json!({
                            "epoch": s.epoch,
                            "num_flows": s.num_flows,
                            "num_tunnels": s.num_tunnels,
                            "failed_links": s.failed_links,
                        }),
                    )
                }
                Err(e) => error_response(Some(id), &e),
            }
        }
        Request::ReloadCheckpoint { path } => {
            let _span = harp_obs::span("serve.reload_checkpoint");
            // Validate into a clone; the live store is swapped only after
            // the whole checkpoint passes the strict loader.
            let mut candidate = (**store).clone();
            match load_params(&mut candidate, Path::new(&path)) {
                Ok(()) => {
                    let params = candidate.ids().count();
                    *store = Arc::new(candidate);
                    *epoch_cache = None; // parameters changed: embeddings are stale
                    stats.record_reload(true);
                    harp_obs::event("serve.reload")
                        .field("path", path)
                        .field("params", params)
                        .emit();
                    ok_response(
                        id,
                        serde_json::json!({ "epoch": state.epoch(), "params": params }),
                    )
                }
                Err(e) => {
                    stats.record_reload(false);
                    error_response(Some(id), &format!("reload rejected: {e}"))
                }
            }
        }
        Request::Stats => {
            let mut payload = stats.snapshot();
            if let Value::Object(map) = &mut payload {
                map.insert("epoch".into(), Value::from(state.epoch() as f64));
                map.insert(
                    "failed_links".into(),
                    Value::from(state.failed_edges().len() as f64),
                );
                map.insert(
                    "num_tunnels".into(),
                    Value::from(state.tunnels().num_tunnels() as f64),
                );
            }
            ok_response(id, payload)
        }
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            harp_obs::event("serve.shutdown").field("id", id).emit();
            ok_response(id, serde_json::json!({ "stopping": true }))
        }
        Request::Infer { .. } => error_response(Some(id), "infer routed as control"),
    }
}
