//! The daemon: one reactor thread multiplexing every connection, a shard
//! fleet doing the inference, and nothing else.
//!
//! Concurrency model — single owners all the way down:
//!
//! * the **reactor thread** (epoll event loop, see [`crate::reactor`])
//!   owns the listener and every connection's state machine
//!   ([`crate::conn`]). It accepts, frames, parses, and validates request
//!   lines, answers protocol errors / stats / shed decisions inline, and
//!   routes infer + control work to the fleet. No thread is ever spawned
//!   per connection, so connection churn cannot leak handles — the bug
//!   class the old `conns.push(thread::spawn(...))` design had — and an
//!   idle connection costs zero wakeups: the loop sleeps in `epoll_wait`
//!   until a socket actually has bytes.
//! * each **shard** ([`crate::shard`]) is the single owner of its
//!   `NetworkState`, parameter store, and topology-epoch embedding cache;
//!   the **router** ([`crate::router`]) picks shards with a pure function
//!   over published atomics (epoch pin match, then least queue depth) and
//!   sheds work when every eligible queue is at the admission limit.
//! * shards hand finished response lines back on a completion queue and
//!   ring the reactor's waker; the reactor flushes them into the
//!   connections' out-buffers, with write-interest and read-gating
//!   backpressure when a client reads slowly.
//!
//! Degradation policy is unchanged from the threaded design: a response
//! is *degraded* — served from last-good splits, or uniform ECMP before
//! any inference has succeeded — when the request's deadline expires
//! before or during inference, or when the model returns non-finite
//! splits. Degraded responses carry `degraded: true` plus a `reason`, and
//! are counted in `stats`. Shedding is different from degrading: a shed
//! request is refused outright (`error_kind: shed_*`) without touching a
//! shard.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use harp_core::SplitModel;
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use serde_json::Value;

use crate::conn::{Conn, Frame, ReadOutcome};
use crate::protocol::{
    error_response, error_response_kind, ok_response, parse_request_bounded, shed_response,
    ProtocolErrorKind, Request, WireLimits,
};
use crate::reactor::{Event, Interest, Reactor, Waker};
use crate::router::{Fleet, RouteDecision};
use crate::shard::{InferJob, ReplySink};
use crate::stats::{ServeStats, ShedReason};

/// Daemon configuration; see [`ServeConfig::from_env`] for the env knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7447` (port 0 picks a free port).
    pub addr: String,
    /// Default per-request deadline in milliseconds (requests may override
    /// with their own `deadline_ms`).
    pub deadline_ms: u64,
    /// Most infer jobs fanned out in one batch.
    pub max_batch: usize,
    /// Close a connection after this long without receiving any bytes
    /// (0 disables the idle timeout). A client that hangs mid-request must
    /// not pin server state forever.
    pub read_timeout_ms: u64,
    /// Longest accepted request line in bytes. An oversized line gets a
    /// structured JSON error and is discarded up to its newline — it must
    /// never buffer unboundedly or crash the reader.
    pub max_line_bytes: usize,
    /// Number of serving shards (each its own batcher + embedding cache).
    pub shards: usize,
    /// Most connections held open at once; excess connects are refused
    /// with a `shed_conn_limit` error line (admission control).
    pub max_conns: usize,
    /// Per-shard queue depth at which infer requests are shed with
    /// `shed_overload` instead of queued (admission control).
    pub queue_limit: usize,
    /// Fault-injection plan for chaos tests (connection drop/delay faults
    /// at accept). `None` falls back to the process-wide `HARP_FAULT` plan.
    pub chaos: Option<Arc<harp_chaos::FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7447".to_string(),
            deadline_ms: 250,
            max_batch: 32,
            read_timeout_ms: 30_000,
            max_line_bytes: 64 * 1024,
            shards: 1,
            max_conns: 1024,
            queue_limit: 512,
            chaos: None,
        }
    }
}

impl ServeConfig {
    /// Configuration from the environment: `HARP_SERVE_ADDR` (listen
    /// address), `HARP_SERVE_DEADLINE_MS` (default deadline),
    /// `HARP_SERVE_READ_TIMEOUT_MS` (idle-connection timeout; `0`
    /// disables), `HARP_SERVE_SHARDS` (replica-group size),
    /// `HARP_SERVE_MAX_CONNS` (connection cap), and
    /// `HARP_SERVE_QUEUE_LIMIT` (per-shard shed threshold). Invalid
    /// values warn via `harp-obs` and fall back to the defaults, matching
    /// the `HARP_THREADS` convention of failing loudly but not fatally.
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(addr) = std::env::var("HARP_SERVE_ADDR") {
            if !addr.is_empty() {
                cfg.addr = addr;
            }
        }
        if let Ok(raw) = std::env::var("HARP_SERVE_DEADLINE_MS") {
            match raw.parse::<u64>() {
                Ok(ms) if ms > 0 => cfg.deadline_ms = ms,
                _ => harp_obs::warn_always(
                    "serve.deadline_fallback",
                    &[
                        ("value", raw.clone().into()),
                        ("fallback_ms", cfg.deadline_ms.into()),
                    ],
                ),
            }
        }
        if let Ok(raw) = std::env::var("HARP_SERVE_READ_TIMEOUT_MS") {
            match raw.parse::<u64>() {
                Ok(ms) => cfg.read_timeout_ms = ms,
                Err(_) => harp_obs::warn_always(
                    "serve.read_timeout_fallback",
                    &[
                        ("value", raw.clone().into()),
                        ("fallback_ms", cfg.read_timeout_ms.into()),
                    ],
                ),
            }
        }
        for (var, name, field) in [
            ("HARP_SERVE_SHARDS", "serve.shards_fallback", 0usize),
            ("HARP_SERVE_MAX_CONNS", "serve.max_conns_fallback", 1),
            ("HARP_SERVE_QUEUE_LIMIT", "serve.queue_limit_fallback", 2),
        ] {
            if let Ok(raw) = std::env::var(var) {
                match raw.parse::<usize>() {
                    Ok(v) if v > 0 => match field {
                        0 => cfg.shards = v,
                        1 => cfg.max_conns = v,
                        _ => cfg.queue_limit = v,
                    },
                    _ => {
                        let fallback = match field {
                            0 => cfg.shards,
                            1 => cfg.max_conns,
                            _ => cfg.queue_limit,
                        };
                        harp_obs::warn_always(
                            name,
                            &[
                                ("value", raw.clone().into()),
                                ("fallback", (fallback as u64).into()),
                            ],
                        );
                    }
                }
            }
        }
        cfg
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send a `shutdown` request).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    waker: Waker,
    reactor: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared serving counters (also reachable via the `stats` request).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Stop accepting, flush in-flight responses, and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

/// Reactor token for the listener socket (`u64::MAX` is the waker's).
const LISTENER_TOKEN: u64 = u64::MAX - 2;
/// Out-buffer size at which a connection's read side is gated off.
const HIGH_WATER: usize = 1024 * 1024;
/// Out-buffer size at which a gated read side is re-enabled.
const LOW_WATER: usize = 64 * 1024;
/// Longest the loop sleeps with nothing scheduled (bounds stop-flag
/// latency even if a wake is lost).
const MAX_TICK: Duration = Duration::from_millis(500);

/// Start the daemon: bind `cfg.addr`, spawn the shard fleet and the
/// reactor thread, and return a handle. `model` + `store` are the serving
/// model (the store is hot-swappable via `reload_checkpoint`); `topo` +
/// `tunnels` define epoch 0 of the network.
pub fn serve(
    cfg: ServeConfig,
    model: Arc<dyn SplitModel + Send + Sync>,
    store: ParamStore,
    topo: Topology,
    tunnels: TunnelSet,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServeStats::new());
    let limits = WireLimits::for_nodes(topo.num_nodes());
    let reactor = Reactor::new()?;
    let waker = reactor.waker();

    harp_obs::event("serve.start")
        .field("addr", addr.to_string())
        .field("deadline_ms", cfg.deadline_ms)
        .field("shards", cfg.shards)
        .emit();

    let fleet = Fleet::spawn(
        cfg.shards,
        cfg.max_batch,
        cfg.queue_limit,
        model,
        store,
        topo,
        tunnels,
        Arc::clone(&stop),
        Arc::clone(&stats),
    );

    let reactor_thread = {
        let stop = Arc::clone(&stop);
        let stats = Arc::clone(&stats);
        let chaos = cfg.chaos.clone().or_else(harp_chaos::global_plan);
        thread::Builder::new()
            .name("harp-serve-reactor".to_string())
            .spawn(move || {
                let mut el =
                    EventLoop::new(reactor, listener, fleet, cfg, limits, stop, stats, chaos);
                el.run();
            })?
    };

    Ok(ServerHandle {
        addr,
        stop,
        stats,
        waker,
        reactor: Some(reactor_thread),
    })
}

/// Everything the reactor thread owns.
struct EventLoop {
    reactor: Reactor,
    listener: TcpListener,
    fleet: Fleet,
    cfg: ServeConfig,
    limits: WireLimits,
    stop: Arc<AtomicBool>,
    stats: Arc<ServeStats>,
    chaos: Option<Arc<harp_chaos::FaultPlan>>,
    conns: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
    open: usize,
    completions_tx: mpsc::Sender<(u64, String)>,
    completions_rx: mpsc::Receiver<(u64, String)>,
    waker: Waker,
    idle_budget: Option<Duration>,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        reactor: Reactor,
        listener: TcpListener,
        fleet: Fleet,
        cfg: ServeConfig,
        limits: WireLimits,
        stop: Arc<AtomicBool>,
        stats: Arc<ServeStats>,
        chaos: Option<Arc<harp_chaos::FaultPlan>>,
    ) -> Self {
        let (completions_tx, completions_rx) = mpsc::channel();
        let waker = reactor.waker();
        let idle_budget =
            (cfg.read_timeout_ms > 0).then(|| Duration::from_millis(cfg.read_timeout_ms));
        EventLoop {
            reactor,
            listener,
            fleet,
            cfg,
            limits,
            stop,
            stats,
            chaos,
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            open: 0,
            completions_tx,
            completions_rx,
            waker,
            idle_budget,
        }
    }

    fn run(&mut self) {
        if self
            .reactor
            .register(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .is_err()
        {
            harp_obs::warn_always("serve.reactor_register_failed", &[]);
            self.stop.store(true, Ordering::SeqCst);
        }
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let timeout = self.next_timeout();
            if self.reactor.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            self.drain_completions();
            for i in 0..events.len() {
                let ev = events[i];
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_ready(ev);
                }
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            self.expire_pauses();
            self.reap_idle();
        }
        self.graceful_exit();
    }

    /// Sleep until the next scheduled instant (pause expiry or idle
    /// deadline), capped at [`MAX_TICK`]. With thousands of idle
    /// connections this is ~2 wakeups/second total — not per connection,
    /// which is the structural fix for the old per-connection poll loop.
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| {
            next = Some(next.map_or(t, |n: Instant| n.min(t)));
        };
        for conn in self.conns.iter().flatten() {
            if let Some(p) = conn.paused_until {
                consider(p);
            }
            if let Some(budget) = self.idle_budget {
                if conn.inflight == 0 {
                    consider(conn.last_progress + budget);
                }
            }
        }
        match next {
            None => MAX_TICK,
            Some(t) => t
                .saturating_duration_since(now)
                .max(Duration::from_millis(1))
                .min(MAX_TICK),
        }
    }

    /// Accept until `WouldBlock`, applying chaos faults and admission
    /// control.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        // Chaos: drop or delay this connection at accept, simulating a
        // flaky network path to the daemon.
        let mut pause = None;
        if let Some(plan) = &self.chaos {
            match plan.conn_fault() {
                Some(harp_chaos::ConnFault::Drop) => {
                    drop(stream);
                    return;
                }
                Some(harp_chaos::ConnFault::DelayMs(ms)) => {
                    pause = Some(Instant::now() + Duration::from_millis(ms));
                }
                None => {}
            }
        }
        // Admission control: refuse connections over the cap with a
        // structured shed line (the socket is still blocking here, and
        // one small write to a fresh socket's buffer cannot stall).
        if self.open >= self.cfg.max_conns {
            self.stats.record_shed(ShedReason::ConnLimit);
            harp_obs::event("serve.shed_conn")
                .field("open", self.open)
                .field("max_conns", self.cfg.max_conns)
                .emit();
            let line = shed_response(
                None,
                ShedReason::ConnLimit.code(),
                &format!("connection limit {} reached", self.cfg.max_conns),
            );
            let mut stream = stream;
            let _ = io::Write::write_all(&mut stream, line.as_bytes());
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            }
        };
        let generation = self.generations[slot];
        let mut conn = Conn::new(stream, self.cfg.max_line_bytes, generation);
        conn.paused_until = pause;
        let interest = if pause.is_some() {
            Interest::NONE
        } else {
            Interest::READ
        };
        let token = conn_token(slot, generation);
        if self
            .reactor
            .register(conn.stream.as_raw_fd(), token, interest)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        conn.interest = interest;
        self.conns[slot] = Some(conn);
        self.open += 1;
        self.stats.record_conn_open();
    }

    /// Handle readiness on a connection token.
    fn conn_ready(&mut self, ev: Event) {
        let Some((slot, generation)) = split_token(ev.token) else {
            return;
        };
        let alive = matches!(&self.conns.get(slot), Some(Some(c)) if c.generation == generation);
        if !alive {
            return;
        }
        let mut frames: Vec<Frame> = Vec::new();
        let mut close_now = false;
        {
            let Some(conn) = &mut self.conns[slot] else {
                return;
            };
            if ev.readable && conn.paused_until.is_none() && !conn.read_paused {
                match conn.read_ready(&mut frames) {
                    Ok(ReadOutcome::Open) => {}
                    Ok(ReadOutcome::Eof) => conn.close_after_flush = true,
                    Err(_) => close_now = true,
                }
            }
        }
        if close_now {
            self.close_conn(slot);
            return;
        }
        for frame in frames {
            let stop_requested = self.process_frame(slot, ev.token, frame);
            if stop_requested {
                self.stop.store(true, Ordering::SeqCst);
                break;
            }
            if self.conns[slot].is_none() {
                return; // closed mid-processing
            }
        }
        self.flush_conn(slot);
    }

    /// Turn one frame into response bytes and/or routed work. Returns
    /// true when the frame was a shutdown request.
    fn process_frame(&mut self, slot: usize, token: u64, frame: Frame) -> bool {
        let line = match frame {
            Frame::Oversized { bytes } => {
                self.stats.record_protocol_error();
                harp_obs::event("serve.oversized_line")
                    .field("bytes", bytes)
                    .field("max_bytes", self.cfg.max_line_bytes)
                    .emit();
                let resp = error_response_kind(
                    None,
                    ProtocolErrorKind::Oversized,
                    &format!("request line exceeds {} bytes", self.cfg.max_line_bytes),
                );
                self.push_out(slot, &resp);
                return false;
            }
            Frame::Line(l) => l,
        };
        let (id, req) = match parse_request_bounded(&line, &self.limits) {
            Ok(parsed) => parsed,
            Err(e) => {
                self.stats.record_protocol_error();
                let resp = e.to_response();
                self.push_out(slot, &resp);
                return false;
            }
        };
        self.stats.record_request();
        match req {
            Request::Infer {
                demands,
                deadline_ms,
                epoch,
            } => {
                let enqueued = Instant::now();
                let budget = Duration::from_millis(deadline_ms.unwrap_or(self.cfg.deadline_ms));
                let pin = epoch;
                let job = InferJob {
                    id,
                    demands,
                    epoch_pin: pin,
                    deadline: enqueued + budget,
                    enqueued,
                    reply: ReplySink::Conn {
                        token,
                        completions: self.completions_tx.clone(),
                        waker: self.waker.clone(),
                    },
                };
                match self.fleet.submit_infer(job) {
                    Ok(_) => {
                        if let Some(conn) = &mut self.conns[slot] {
                            conn.inflight += 1;
                        }
                    }
                    Err(RouteDecision::StaleEpoch { current }) => {
                        self.stats.record_stale_epoch();
                        let p = pin.unwrap_or(current);
                        let resp = error_response(
                            Some(id),
                            &format!("stale epoch: request pinned to {p}, current is {current}"),
                        );
                        self.push_out(slot, &resp);
                    }
                    Err(RouteDecision::Overloaded) => {
                        self.stats.record_shed(ShedReason::Overload);
                        let resp = shed_response(
                            Some(id),
                            ShedReason::Overload.code(),
                            "overloaded: request shed, retry with backoff",
                        );
                        self.push_out(slot, &resp);
                    }
                    Err(_) => {
                        let resp = error_response(Some(id), "no live shards");
                        self.push_out(slot, &resp);
                    }
                }
            }
            Request::Stats => {
                let mut payload = self.stats.snapshot();
                if let Value::Object(map) = &mut payload {
                    map.insert(
                        "epoch".into(),
                        Value::from(self.fleet.current_epoch() as f64),
                    );
                    let (failed_links, num_tunnels) = self.fleet.topology_summary();
                    map.insert("failed_links".into(), Value::from(failed_links as f64));
                    map.insert("num_tunnels".into(), Value::from(num_tunnels as f64));
                    let (generation, staleness) = self.fleet.generation_summary();
                    map.insert("param_generation".into(), Value::from(generation as f64));
                    map.insert("model_staleness".into(), Value::from(staleness as f64));
                    map.insert("shards".into(), self.fleet.shards_payload());
                }
                let resp = ok_response(id, payload);
                self.push_out(slot, &resp);
            }
            Request::Shutdown => {
                harp_obs::event("serve.shutdown").field("id", id).emit();
                let resp = ok_response(id, serde_json::json!({ "stopping": true }));
                self.push_out(slot, &resp);
                return true;
            }
            control @ (Request::TopologyUpdate { .. } | Request::ReloadCheckpoint { .. }) => {
                let sink = ReplySink::Conn {
                    token,
                    completions: self.completions_tx.clone(),
                    waker: self.waker.clone(),
                };
                self.fleet.broadcast_control(id, control, sink);
                if let Some(conn) = &mut self.conns[slot] {
                    conn.inflight += 1;
                }
            }
        }
        false
    }

    /// Append bytes to a connection's out-buffer.
    fn push_out(&mut self, slot: usize, line: &str) {
        if let Some(conn) = &mut self.conns[slot] {
            conn.out.push(line.as_bytes());
        }
    }

    /// Move completed responses from the fleet into their connections'
    /// out-buffers (dropping lines whose connection is gone), then flush.
    fn drain_completions(&mut self) {
        let mut touched: Vec<usize> = Vec::new();
        while let Ok((token, line)) = self.completions_rx.try_recv() {
            let Some((slot, generation)) = split_token(token) else {
                continue;
            };
            match self.conns.get_mut(slot) {
                Some(Some(conn)) if conn.generation == generation => {
                    conn.inflight = conn.inflight.saturating_sub(1);
                    conn.out.push(line.as_bytes());
                    if !touched.contains(&slot) {
                        touched.push(slot);
                    }
                }
                _ => {} // connection closed while the job was in flight
            }
        }
        for slot in touched {
            self.flush_conn(slot);
        }
    }

    /// Flush a connection's out-buffer, update backpressure gating and
    /// epoll interest, and close if the connection is finished.
    fn flush_conn(&mut self, slot: usize) {
        let mut close = false;
        {
            let Some(Some(conn)) = self.conns.get_mut(slot) else {
                return;
            };
            match conn.out.flush(&mut conn.stream) {
                Ok(true) => {
                    if conn.close_after_flush && conn.inflight == 0 {
                        close = true;
                    }
                }
                Ok(false) => {}
                Err(_) => close = true,
            }
            if !close {
                // read-gating backpressure against slow readers
                let pending = conn.out.pending();
                if pending > HIGH_WATER {
                    conn.read_paused = true;
                } else if conn.read_paused && pending <= LOW_WATER {
                    conn.read_paused = false;
                }
                let desired = Interest {
                    readable: conn.paused_until.is_none()
                        && !conn.read_paused
                        && !conn.close_after_flush,
                    writable: !conn.out.is_empty(),
                };
                if desired != conn.interest {
                    let token = conn_token(slot, conn.generation);
                    if self
                        .reactor
                        .reregister(conn.stream.as_raw_fd(), token, desired)
                        .is_ok()
                    {
                        conn.interest = desired;
                    }
                }
            }
        }
        if close {
            self.close_conn(slot);
        }
    }

    /// Un-pause connections whose chaos delay has elapsed.
    fn expire_pauses(&mut self) {
        let now = Instant::now();
        let expired: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, c)| match c {
                Some(conn) => (conn.paused_until.is_some_and(|t| t <= now)).then_some(slot),
                None => None,
            })
            .collect();
        for slot in expired {
            if let Some(Some(conn)) = self.conns.get_mut(slot) {
                conn.paused_until = None;
                conn.last_progress = Instant::now();
            }
            // flush_conn recomputes interest (read re-enabled) and the
            // level-triggered reactor re-reports any bytes that arrived
            // during the pause.
            self.flush_conn(slot);
        }
    }

    /// Close connections idle past the budget (no bytes, nothing queued).
    fn reap_idle(&mut self) {
        let Some(budget) = self.idle_budget else {
            return;
        };
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, c)| match c {
                Some(conn)
                    if conn.inflight == 0
                        && conn.paused_until.is_none()
                        && conn.out.is_empty()
                        && conn.last_progress.elapsed() >= budget =>
                {
                    Some(slot)
                }
                _ => None,
            })
            .collect();
        for slot in stale {
            if let Some(Some(conn)) = self.conns.get(slot) {
                harp_obs::event("serve.conn_idle_timeout")
                    .field("idle_ms", conn.last_progress.elapsed().as_millis() as u64)
                    .emit();
            }
            self.close_conn(slot);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.reactor.deregister(conn.stream.as_raw_fd());
            self.generations[slot] = self.generations[slot].wrapping_add(1);
            self.free.push(slot);
            self.open -= 1;
            self.stats.record_conn_close();
        }
    }

    /// Best-effort drain on shutdown: give in-flight responses a short
    /// window to land and flush, then close everything and join the
    /// shards.
    fn graceful_exit(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut events: Vec<Event> = Vec::new();
        loop {
            self.drain_completions();
            let pending = self
                .conns
                .iter()
                .flatten()
                .any(|c| !c.out.is_empty() || c.inflight > 0);
            if !pending || Instant::now() >= deadline {
                break;
            }
            let _ = self
                .reactor
                .wait(&mut events, Some(Duration::from_millis(10)));
        }
        for slot in 0..self.conns.len() {
            self.close_conn(slot);
        }
        self.fleet.join();
        harp_obs::event("serve.stopped").emit();
    }
}

/// Build a connection token: generation in the high 32 bits, slot low.
fn conn_token(slot: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | (slot as u64 & 0xFFFF_FFFF)
}

/// Split a token back into `(slot, generation)`; `None` for reserved
/// tokens.
fn split_token(token: u64) -> Option<(usize, u32)> {
    if token == LISTENER_TOKEN {
        return None;
    }
    let slot = usize::try_from(token & 0xFFFF_FFFF).ok()?;
    let generation = u32::try_from(token >> 32).ok()?;
    Some((slot, generation))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_roundtrip_slot_and_generation() {
        for (slot, generation) in [(0usize, 0u32), (7, 3), (0xFFFF_FFFE, u32::MAX - 1)] {
            let token = conn_token(slot, generation);
            assert_eq!(split_token(token), Some((slot, generation)));
        }
        assert_eq!(split_token(LISTENER_TOKEN), None);
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.shards, 1);
        assert!(cfg.max_conns >= 64);
        assert!(cfg.queue_limit >= 1);
    }
}
