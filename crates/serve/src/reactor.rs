//! A zero-dependency readiness reactor: the thinnest possible epoll
//! wrapper plus a cross-thread waker.
//!
//! This is the mio-shaped core of the serving event loop. One reactor
//! multiplexes the listener and every client connection onto a single
//! thread; shards finishing work ring the [`Waker`] to pull the loop out
//! of `epoll_wait` so responses flush immediately instead of waiting for
//! the next timeout tick.
//!
//! Design constraints, in order:
//!
//! * **zero dependencies** — raw `epoll_create1`/`epoll_ctl`/`epoll_wait`
//!   FFI, confined to the [`sys`] module (the only `unsafe` in the
//!   workspace, ~40 lines, auditable at a glance);
//! * **level-triggered** — readiness is re-reported until drained, so the
//!   event loop can stop reading mid-backlog (backpressure) without
//!   losing the connection;
//! * **spurious-readiness tolerant** — callers must treat any event as a
//!   hint and handle `WouldBlock`. That tolerance is what lets the
//!   non-Linux fallback (timed polling over all registered fds) share the
//!   exact same caller contract, keeping the crate portable.
//!
//! Tokens are caller-chosen `u64`s; [`WAKER_TOKEN`] is reserved for the
//! internal wake channel and never surfaces in [`Reactor::wait`] results.

use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Reserved token for the internal wake channel (never reported).
pub const WAKER_TOKEN: u64 = u64::MAX;

/// What readiness a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (used while a response is part-flushed).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Write-only interest (read side paused for backpressure).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No interest (connection paused; only errors/hangups surface).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Reactor::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable, peer hung up, or errored (caller discovers which by
    /// reading).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
pub use linux::{Reactor, Waker};

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::os::unix::prelude::{AsRawFd, RawFd};

    /// Raw epoll FFI: four libc calls with fully-owned arguments (no
    /// borrowed pointers outlive the call), wrapped immediately into
    /// `io::Result`. (The only other unsafe in the workspace is the
    /// equally small signal FFI in `harp-super`.)
    #[allow(unsafe_code)]
    mod sys {
        use std::io;

        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        const EPOLL_CLOEXEC: i32 = 0o2000000;

        /// Kernel ABI struct for epoll (packed on x86-64 per the kernel
        /// headers).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn close(fd: i32) -> i32;
        }

        pub fn create() -> io::Result<i32> {
            // SAFETY: no pointers; returns a new fd or -1.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(fd)
        }

        pub fn ctl(epfd: i32, op: i32, fd: i32, mut ev: Option<EpollEvent>) -> io::Result<()> {
            let ptr = ev
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live stack value
            // that outlives the call; the kernel copies it synchronously.
            let rc = unsafe { epoll_ctl(epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let cap = i32::try_from(buf.len()).unwrap_or(i32::MAX);
            // SAFETY: `buf` is a live, writable slice for the duration of
            // the call; the kernel writes at most `cap` entries.
            let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), cap, timeout_ms) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(usize::try_from(rc).unwrap_or(0))
        }

        pub fn close_fd(fd: i32) {
            // SAFETY: callers pass an fd they own exactly once (Drop).
            let _ = unsafe { close(fd) };
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// Wakes a [`Reactor`] blocked in [`Reactor::wait`] from another
    /// thread. Cheap to clone; writes are idempotent while a wake is
    /// already pending.
    #[derive(Clone, Debug)]
    pub struct Waker {
        tx: Arc<UnixStream>,
    }

    impl Waker {
        /// Ring the reactor. Never blocks: a full pipe means a wake is
        /// already pending, which is all we need.
        pub fn wake(&self) {
            let _ = (&*self.tx).write(&[1u8]);
        }
    }

    /// The epoll instance plus the internal wake channel.
    pub struct Reactor {
        epfd: i32,
        wake_rx: UnixStream,
        waker: Waker,
        buf: Vec<sys::EpollEvent>,
    }

    impl Reactor {
        /// A new reactor with its wake channel registered under
        /// [`WAKER_TOKEN`].
        pub fn new() -> io::Result<Self> {
            let epfd = sys::create()?;
            let (tx, rx) = match UnixStream::pair() {
                Ok(p) => p,
                Err(e) => {
                    sys::close_fd(epfd);
                    return Err(e);
                }
            };
            let init = (|| {
                tx.set_nonblocking(true)?;
                rx.set_nonblocking(true)?;
                sys::ctl(
                    epfd,
                    sys::EPOLL_CTL_ADD,
                    rx.as_raw_fd(),
                    Some(sys::EpollEvent {
                        events: interest_bits(Interest::READ),
                        data: WAKER_TOKEN,
                    }),
                )
            })();
            if let Err(e) = init {
                sys::close_fd(epfd);
                return Err(e);
            }
            Ok(Reactor {
                epfd,
                wake_rx: rx,
                waker: Waker { tx: Arc::new(tx) },
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        /// A handle other threads use to interrupt [`Reactor::wait`].
        pub fn waker(&self) -> Waker {
            self.waker.clone()
        }

        /// Start watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                Some(sys::EpollEvent {
                    events: interest_bits(interest),
                    data: token,
                }),
            )
        }

        /// Change the interest set of an already-registered fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                Some(sys::EpollEvent {
                    events: interest_bits(interest),
                    data: token,
                }),
            )
        }

        /// Stop watching `fd`. Safe to call right before closing it.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None)
        }

        /// Block until readiness or `timeout` (`None` blocks
        /// indefinitely), appending reports to `events` (cleared first).
        /// Wake-channel events are drained internally and not reported.
        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let timeout_ms = match timeout {
                None => -1,
                // round up so a 0 < t < 1ms timeout doesn't busy-spin
                Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                    .unwrap_or(i32::MAX),
            };
            let n = match sys::wait(self.epfd, &mut self.buf, timeout_ms) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &self.buf[..n] {
                // copy out of the (possibly packed) ABI struct first
                let (bits, token) = (ev.events, ev.data);
                if token == WAKER_TOKEN {
                    let mut sink = [0u8; 64];
                    while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits
                        & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR)
                        != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Reactor {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
pub use fallback::{Reactor, Waker};

#[cfg(not(target_os = "linux"))]
mod fallback {
    //! Portable stand-in: timed polling with spurious readiness. Every
    //! registered fd is reported ready each tick; since reactor callers
    //! must tolerate `WouldBlock` anyway (the epoll contract), the event
    //! loop stays correct — it just burns a ~2ms tick instead of
    //! sleeping, which is acceptable for a non-Linux dev machine and
    //! never ships to the benched configuration.
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Raw fd alias so the public API matches the Linux backend.
    pub type RawFd = i32;

    /// Sets a flag [`Reactor::wait`] polls between sleep slices.
    #[derive(Clone, Debug)]
    pub struct Waker {
        rung: Arc<AtomicBool>,
    }

    impl Waker {
        /// Ring the reactor.
        pub fn wake(&self) {
            self.rung.store(true, Ordering::Release);
        }
    }

    /// Registration table + wake flag.
    pub struct Reactor {
        registered: Mutex<BTreeMap<RawFd, (u64, Interest)>>,
        rung: Arc<AtomicBool>,
    }

    impl Reactor {
        /// A new empty reactor.
        pub fn new() -> io::Result<Self> {
            Ok(Reactor {
                registered: Mutex::new(BTreeMap::new()),
                rung: Arc::new(AtomicBool::new(false)),
            })
        }

        /// A handle other threads use to interrupt [`Reactor::wait`].
        pub fn waker(&self) -> Waker {
            Waker {
                rung: Arc::clone(&self.rung),
            }
        }

        /// Start watching `fd` under `token`.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if let Ok(mut map) = self.registered.lock() {
                map.insert(fd, (token, interest));
            }
            Ok(())
        }

        /// Change the interest set of an already-registered fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            if let Ok(mut map) = self.registered.lock() {
                map.remove(&fd);
            }
            Ok(())
        }

        /// Report every registered fd as ready (spurious readiness) after
        /// a short sleep, or immediately when the waker rang.
        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let budget = timeout.unwrap_or(Duration::from_millis(2));
            let slice = Duration::from_millis(1);
            let mut slept = Duration::ZERO;
            while slept < budget && !self.rung.swap(false, Ordering::AcqRel) {
                std::thread::sleep(slice.min(budget - slept));
                slept += slice;
            }
            if let Ok(map) = self.registered.lock() {
                for (&_fd, &(token, interest)) in map.iter() {
                    events.push(Event {
                        token,
                        readable: interest.readable,
                        writable: interest.writable,
                    });
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    #[cfg(target_os = "linux")]
    use std::os::unix::prelude::AsRawFd;

    #[cfg(target_os = "linux")]
    #[test]
    fn reports_readable_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(listener.as_raw_fd(), 1, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // nothing pending: a short wait returns empty
        reactor
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let mut client = TcpStream::connect(addr).unwrap();
        reactor
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        reactor
            .register(server_side.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        client.write_all(b"ping").unwrap();
        reactor
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 8];
        assert_eq!(server_side.read(&mut buf).unwrap(), 4);

        // level-triggered: once drained, no more readable reports
        reactor
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 2 && e.readable));

        reactor.deregister(server_side.as_raw_fd()).unwrap();
        drop(client);
        reactor
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 2));
    }

    #[test]
    fn waker_interrupts_wait_from_another_thread() {
        let mut reactor = Reactor::new().unwrap();
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        // a 10s timeout cut short by the waker proves the interrupt works
        reactor
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "waker must interrupt the wait"
        );
        handle.join().unwrap();
        // waker events are internal: never surfaced to the caller
        assert!(events.iter().all(|e| e.token != WAKER_TOKEN));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn writable_interest_fires_for_connected_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(client.as_raw_fd(), 7, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        reactor
            .wait(&mut events, Some(Duration::from_millis(2000)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        // drop write interest: no more writable reports
        reactor
            .reregister(client.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        reactor
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 7 && e.writable));
    }
}
