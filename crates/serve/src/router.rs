//! The router: N shards behind one cheap, deterministic routing decision.
//!
//! Routing is a pure function ([`route_infer`]) over a snapshot of
//! published shard state ([`ShardView`]): epoch-pinned requests may only
//! land on a shard whose epoch matches the pin; unpinned requests go to
//! the least-loaded live shard (lowest index breaks ties, so identical
//! snapshots always route identically); and when every eligible shard's
//! queue is at the admission limit the request is **shed** — refused with
//! a structured `shed_overload` error — instead of queued into a latency
//! collapse. Control requests (topology updates, checkpoint reloads)
//! broadcast to every live shard and the replies gather into one
//! response, so the fleet's epochs advance in lockstep from the client's
//! point of view.
//!
//! [`Fleet`] owns the shard threads. It is deliberately thread-agnostic:
//! the serving event loop calls it inline (routing is a few atomic loads
//! — a hop through a dedicated thread would only add latency), and tests
//! drive it directly with channel sinks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use harp_core::SplitModel;
use harp_paths::TunnelSet;
use harp_runtime::Runtime;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use serde_json::Value;

use crate::protocol::{error_response, Request};
use crate::shard::{shard_main, Gather, InferJob, Job, ReplySink, ShardMeta, ShardSpec};
use crate::stats::ServeStats;

/// A routing-relevant snapshot of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardView {
    /// The shard's current topology epoch.
    pub epoch: u64,
    /// Jobs queued on the shard.
    pub depth: usize,
    /// False once the shard has died.
    pub alive: bool,
}

/// What [`route_infer`] decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Enqueue on this shard index.
    Shard(usize),
    /// The pin matches no live shard; `current` is the fleet's epoch.
    StaleEpoch {
        /// Highest epoch among live shards.
        current: u64,
    },
    /// Every eligible shard is at the queue limit — shed the request.
    Overloaded,
    /// No live shards remain.
    NoShards,
}

/// Pure routing: pick a shard for an infer with pin `pin` given the
/// snapshot `shards` and the per-shard admission limit `queue_limit`.
/// Deterministic — identical inputs always yield identical decisions
/// (least depth wins, lowest index breaks ties).
pub fn route_infer(pin: Option<u64>, shards: &[ShardView], queue_limit: usize) -> RouteDecision {
    let mut best: Option<(usize, usize)> = None; // (depth, idx)
    let mut any_alive = false;
    let mut max_epoch = 0u64;
    for (idx, s) in shards.iter().enumerate() {
        if !s.alive {
            continue;
        }
        any_alive = true;
        max_epoch = max_epoch.max(s.epoch);
        if let Some(p) = pin {
            if s.epoch != p {
                continue;
            }
        }
        let candidate = (s.depth, idx);
        if best.is_none_or(|b| candidate < b) {
            best = Some(candidate);
        }
    }
    if !any_alive {
        return RouteDecision::NoShards;
    }
    match best {
        None => RouteDecision::StaleEpoch { current: max_epoch },
        Some((depth, _)) if depth >= queue_limit => RouteDecision::Overloaded,
        Some((_, idx)) => RouteDecision::Shard(idx),
    }
}

struct ShardHandle {
    tx: mpsc::Sender<Job>,
    meta: Arc<ShardMeta>,
    join: Option<thread::JoinHandle<()>>,
}

/// The replica group: N single-owner shards plus routing and broadcast.
pub struct Fleet {
    shards: Vec<ShardHandle>,
    queue_limit: usize,
}

impl Fleet {
    /// Spawn `num_shards` shards, splitting the global worker pool across
    /// them. Each shard starts at epoch 0 of `topo`/`tunnels` with its own
    /// copy of `store` and its own embedding cache.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        num_shards: usize,
        max_batch: usize,
        queue_limit: usize,
        model: Arc<dyn SplitModel + Send + Sync>,
        store: ParamStore,
        topo: Topology,
        tunnels: TunnelSet,
        stop: Arc<AtomicBool>,
        stats: Arc<ServeStats>,
    ) -> Fleet {
        let num_shards = num_shards.max(1);
        let runtimes = Runtime::global().split(num_shards);
        let shards = (0..num_shards)
            .map(|idx| {
                let (tx, rx) = mpsc::channel::<Job>();
                let meta = Arc::new(ShardMeta::new());
                let spec = ShardSpec {
                    idx,
                    rx,
                    meta: Arc::clone(&meta),
                    model: Arc::clone(&model),
                    store: store.clone(),
                    topo: topo.clone(),
                    tunnels: tunnels.clone(),
                    max_batch,
                    rt: runtimes[idx],
                    stop: Arc::clone(&stop),
                    stats: Arc::clone(&stats),
                };
                let join = thread::Builder::new()
                    .name(format!("harp-serve-shard-{idx}"))
                    .spawn(move || shard_main(spec))
                    .ok();
                ShardHandle { tx, meta, join }
            })
            .collect();
        harp_obs::event("serve.fleet_start")
            .field("shards", num_shards)
            .field("queue_limit", queue_limit)
            .emit();
        Fleet {
            shards,
            queue_limit,
        }
    }

    /// Number of shards (live or dead).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot every shard's routing state.
    pub fn views(&self) -> Vec<ShardView> {
        self.shards
            .iter()
            .map(|s| ShardView {
                epoch: s.meta.epoch.load(Ordering::SeqCst),
                depth: s.meta.depth.load(Ordering::SeqCst),
                alive: s.meta.alive.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// Highest epoch among live shards (all shards when none live).
    pub fn current_epoch(&self) -> u64 {
        let views = self.views();
        views
            .iter()
            .filter(|v| v.alive)
            .map(|v| v.epoch)
            .max()
            .or_else(|| views.iter().map(|v| v.epoch).max())
            .unwrap_or(0)
    }

    /// Route and enqueue one infer job. `Err` carries the decision the
    /// caller turns into a shed/stale/error response. A send failure
    /// (shard thread gone without marking itself dead) marks the shard
    /// dead and re-routes, so one lost shard costs a retry, not a hang.
    pub fn submit_infer(&self, mut job: InferJob) -> Result<usize, RouteDecision> {
        loop {
            match route_infer(job.epoch_pin, &self.views(), self.queue_limit) {
                RouteDecision::Shard(idx) => {
                    let shard = &self.shards[idx];
                    shard.meta.depth.fetch_add(1, Ordering::SeqCst);
                    match shard.tx.send(Job::Infer(job)) {
                        Ok(()) => return Ok(idx),
                        Err(mpsc::SendError(returned)) => {
                            shard.meta.depth.fetch_sub(1, Ordering::SeqCst);
                            shard.meta.alive.store(false, Ordering::SeqCst);
                            let Job::Infer(j) = returned else {
                                return Err(RouteDecision::NoShards);
                            };
                            job = j;
                        }
                    }
                }
                other => return Err(other),
            }
        }
    }

    /// Broadcast a control request to every live shard; the gathered
    /// response (the first live shard's reply, sent once all have
    /// applied) goes to `reply`. Dead shards are skipped — their state is
    /// rebuilt from scratch if they are ever replaced — so one dead shard
    /// cannot wedge every topology update.
    pub fn broadcast_control(&self, id: u64, req: Request, reply: ReplySink) {
        let targets: Vec<usize> = (0..self.shards.len())
            .filter(|&i| self.shards[i].meta.alive.load(Ordering::SeqCst))
            .collect();
        if targets.is_empty() {
            reply.send(error_response(Some(id), "no live shards"));
            return;
        }
        let gather = Gather::new(targets.len(), reply);
        for (k, &idx) in targets.iter().enumerate() {
            let shard = &self.shards[idx];
            let member = ReplySink::Gather {
                gather: Arc::clone(&gather),
                primary: k == 0,
            };
            shard.meta.depth.fetch_add(1, Ordering::SeqCst);
            let job = Job::Control {
                id,
                req: req.clone(),
                reply: member,
            };
            if let Err(mpsc::SendError(returned)) = shard.tx.send(job) {
                shard.meta.depth.fetch_sub(1, Ordering::SeqCst);
                shard.meta.alive.store(false, Ordering::SeqCst);
                // answer for the lost member so the gather still completes
                if let Job::Control { reply: member, .. } = returned {
                    member.send(error_response(Some(id), "shard failed; please retry"));
                }
            }
        }
    }

    /// Per-shard rows for the `stats` reply. `staleness` is how many
    /// checkpoint generations the shard lags the freshest live shard.
    pub fn shards_payload(&self) -> Value {
        let (freshest, _) = self.generation_summary();
        Value::from(
            self.shards
                .iter()
                .enumerate()
                .map(|(idx, s)| {
                    let generation = s.meta.param_generation.load(Ordering::SeqCst);
                    serde_json::json!({
                        "shard": idx,
                        "epoch": s.meta.epoch.load(Ordering::SeqCst) as f64,
                        "depth": s.meta.depth.load(Ordering::SeqCst) as f64,
                        "alive": s.meta.alive.load(Ordering::SeqCst),
                        "failed_links": s.meta.failed_links.load(Ordering::SeqCst) as f64,
                        "num_tunnels": s.meta.num_tunnels.load(Ordering::SeqCst) as f64,
                        "param_generation": generation as f64,
                        "staleness": freshest.saturating_sub(generation) as f64,
                    })
                })
                .collect::<Vec<Value>>(),
        )
    }

    /// `(freshest generation, max staleness)` across live shards: the
    /// highest checkpoint generation any live shard serves, and how far
    /// the most-lagging live shard trails it.
    pub fn generation_summary(&self) -> (u64, u64) {
        let gens: Vec<u64> = self
            .shards
            .iter()
            .filter(|s| s.meta.alive.load(Ordering::SeqCst))
            .map(|s| s.meta.param_generation.load(Ordering::SeqCst))
            .collect();
        let max = gens.iter().copied().max().unwrap_or(0);
        let min = gens.iter().copied().min().unwrap_or(0);
        (max, max - min)
    }

    /// Failed links / live tunnels at the fleet's current epoch (read
    /// from the highest-epoch live shard).
    pub fn topology_summary(&self) -> (usize, usize) {
        let best = self
            .shards
            .iter()
            .filter(|s| s.meta.alive.load(Ordering::SeqCst))
            .max_by_key(|s| s.meta.epoch.load(Ordering::SeqCst))
            .or_else(|| self.shards.first());
        match best {
            Some(s) => (
                s.meta.failed_links.load(Ordering::SeqCst),
                s.meta.num_tunnels.load(Ordering::SeqCst),
            ),
            None => (0, 0),
        }
    }

    /// Test/chaos hook: make shard `idx` panic mid-loop to exercise
    /// failover. The shard answers its queued jobs with errors and the
    /// router stops selecting it.
    #[doc(hidden)]
    pub fn crash_shard(&self, idx: usize) {
        if let Some(shard) = self.shards.get(idx) {
            shard.meta.depth.fetch_add(1, Ordering::SeqCst);
            let _ = shard.tx.send(Job::Crash);
        }
    }

    /// Join every shard thread (call after setting the stop flag).
    pub fn join(&mut self) {
        for s in &mut self.shards {
            if let Some(h) = s.join.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(epoch: u64, depth: usize, alive: bool) -> ShardView {
        ShardView {
            epoch,
            depth,
            alive,
        }
    }

    #[test]
    fn unpinned_routes_to_least_depth_lowest_index() {
        let shards = [v(3, 5, true), v(3, 2, true), v(3, 2, true)];
        assert_eq!(route_infer(None, &shards, 100), RouteDecision::Shard(1));
    }

    #[test]
    fn pinned_routes_only_to_matching_epoch() {
        let shards = [v(4, 0, true), v(3, 9, true)];
        assert_eq!(route_infer(Some(3), &shards, 100), RouteDecision::Shard(1));
        assert_eq!(route_infer(Some(4), &shards, 100), RouteDecision::Shard(0));
        assert_eq!(
            route_infer(Some(7), &shards, 100),
            RouteDecision::StaleEpoch { current: 4 }
        );
    }

    #[test]
    fn dead_shards_are_never_selected() {
        let shards = [v(3, 0, false), v(3, 50, true)];
        assert_eq!(route_infer(None, &shards, 100), RouteDecision::Shard(1));
        assert_eq!(
            route_infer(None, &[v(1, 0, false), v(2, 0, false)], 100),
            RouteDecision::NoShards
        );
    }

    #[test]
    fn overload_sheds_deterministically_at_the_limit() {
        let shards = [v(1, 8, true), v(1, 8, true)];
        assert_eq!(route_infer(None, &shards, 8), RouteDecision::Overloaded);
        // one slot under the limit: admitted (lowest index tie-break)
        let shards = [v(1, 7, true), v(1, 8, true)];
        assert_eq!(route_infer(None, &shards, 8), RouteDecision::Shard(0));
    }

    #[test]
    fn routing_is_a_pure_function_of_the_snapshot() {
        let shards = [v(2, 3, true), v(2, 1, true), v(1, 0, true)];
        let first = route_infer(Some(2), &shards, 4);
        for _ in 0..100 {
            assert_eq!(route_infer(Some(2), &shards, 4), first);
        }
        assert_eq!(first, RouteDecision::Shard(1));
    }
}
