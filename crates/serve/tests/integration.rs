//! End-to-end test: boot the daemon on loopback, drive it with real TCP
//! clients — concurrent infers, a topology update, checkpoint reloads,
//! stats — and shut it down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

use harp_core::{Harp, HarpConfig, SplitModel};
use harp_nn::save_params;
use harp_paths::TunnelSet;
use harp_serve::{serve, ServeConfig, ServerHandle};
use harp_tensor::ParamStore;
use harp_topology::Topology;
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

fn tiny_cfg() -> HarpConfig {
    HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 1,
    }
}

fn square() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 2, 10.0).unwrap();
    topo.add_link(2, 3, 10.0).unwrap();
    topo.add_link(3, 0, 10.0).unwrap();
    topo.add_link(0, 2, 5.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 3, 0.0);
    (topo, tunnels)
}

fn boot(seed: u64) -> (ServerHandle, ParamStore) {
    let (topo, tunnels) = square();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let harp = Harp::new(&mut store, &mut rng, tiny_cfg());
    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(), // free port per test
        deadline_ms: 2_000,
        max_batch: 8,
        ..ServeConfig::default()
    };
    let handle = serve(cfg, model, store.clone(), topo, tunnels).expect("bind loopback");
    (handle, store)
}

/// One client connection with line-oriented request/response helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).expect("response is valid JSON")
    }
}

fn ckpt_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("harp_serve_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn serves_infer_update_reload_stats_and_shuts_down() {
    let (handle, store) = boot(7);

    // --- concurrent infer clients ---
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let mut client = Client::connect(&handle);
            thread::spawn(move || {
                for i in 0..5u64 {
                    let id = w * 100 + i;
                    let v = client.roundtrip(&format!(
                        r#"{{"id": {id}, "type": "infer", "demands": [[0, 2, {}], [2, 0, 1.5]]}}"#,
                        1.0 + w as f64 + i as f64 * 0.1,
                    ));
                    assert_eq!(v.get("id").and_then(Value::as_u64), Some(id));
                    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
                    let splits = v.get("splits").and_then(Value::as_array).unwrap();
                    assert!(!splits.is_empty());
                    assert!(v.get("latency_us").and_then(Value::as_u64).is_some());
                    // deadline is generous: responses are model-served
                    assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(false));
                    assert!(v.get("mlu").and_then(Value::as_f64).unwrap() > 0.0);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("infer client panicked");
    }

    let mut ctl = Client::connect(&handle);

    // --- topology update: fail one link, epoch bumps, tunnels shrink ---
    let before = ctl.roundtrip(r#"{"id": 900, "type": "stats"}"#);
    let tunnels_before = before.get("num_tunnels").and_then(Value::as_u64).unwrap();
    let v = ctl.roundtrip(r#"{"id": 901, "type": "topology_update", "fail_links": [[0, 1]]}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("failed_links").and_then(Value::as_u64), Some(2));
    let tunnels_after = v.get("num_tunnels").and_then(Value::as_u64).unwrap();
    assert!(tunnels_after < tunnels_before);

    // infer still works after the update, now against epoch 1
    let v = ctl.roundtrip(r#"{"id": 902, "type": "infer", "demands": [[0, 2, 2.0]], "epoch": 1}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));

    // a stale epoch pin is rejected, not silently served
    let v = ctl.roundtrip(r#"{"id": 903, "type": "infer", "demands": [[0, 2, 2.0]], "epoch": 0}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert!(v
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("stale epoch"));

    // restoring the link brings the tunnel count back
    let v = ctl.roundtrip(r#"{"id": 904, "type": "topology_update", "restore_links": [[0, 1]]}"#);
    assert_eq!(
        v.get("num_tunnels").and_then(Value::as_u64),
        Some(tunnels_before)
    );
    assert_eq!(v.get("failed_links").and_then(Value::as_u64), Some(0));

    // --- checkpoint hot-reload ---
    // same architecture, different seed: valid swap
    let good_path = ckpt_dir().join("good.json");
    let mut other = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(99);
    let _ = Harp::new(&mut other, &mut rng, tiny_cfg());
    save_params(&other, &good_path).unwrap();
    let v = ctl.roundtrip(&format!(
        r#"{{"id": 905, "type": "reload_checkpoint", "path": {:?}}}"#,
        good_path.to_str().unwrap()
    ));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        v.get("params").and_then(Value::as_u64),
        Some(store.ids().count() as u64)
    );

    // different architecture: strict loader rejects, server keeps serving
    let bad_path = ckpt_dir().join("bad.json");
    let mut bad = ParamStore::new();
    let _ = bad.register("not.a.harp.param", vec![2], vec![1.0, 2.0]);
    save_params(&bad, &bad_path).unwrap();
    let v = ctl.roundtrip(&format!(
        r#"{{"id": 906, "type": "reload_checkpoint", "path": {:?}}}"#,
        bad_path.to_str().unwrap()
    ));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert!(v
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("reload rejected"));
    let v = ctl.roundtrip(r#"{"id": 907, "type": "infer", "demands": [[1, 3, 1.0]]}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));

    // --- malformed lines get error responses, connection stays usable ---
    let v = ctl.roundtrip("this is not json");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert!(v.get("id").unwrap().is_null());
    let v = ctl.roundtrip(r#"{"id": 908, "type": "warp"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(908));

    // --- stats reflect everything above ---
    let v = ctl.roundtrip(r#"{"id": 909, "type": "stats"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    let requests = v.get("requests").and_then(Value::as_u64).unwrap();
    assert!(requests >= 20, "saw {requests} requests");
    assert!(v.get("infer_ok").and_then(Value::as_u64).unwrap() >= 20);
    assert_eq!(v.get("protocol_errors").and_then(Value::as_u64), Some(2));
    assert_eq!(v.get("topology_updates").and_then(Value::as_u64), Some(2));
    assert_eq!(v.get("reload_ok").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("reload_failed").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("stale_epoch").and_then(Value::as_u64), Some(1));
    assert!(v.get("latency_p50_us").and_then(Value::as_f64).is_some());
    assert!(v.get("latency_p99_us").and_then(Value::as_f64).is_some());

    // --- clean shutdown via the wire ---
    let v = ctl.roundtrip(r#"{"id": 910, "type": "shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    handle.shutdown(); // joins listener + batcher + connection threads
}

#[test]
fn expired_deadline_degrades_to_fallback_splits() {
    let (handle, _store) = boot(11);
    let mut client = Client::connect(&handle);

    // deadline_ms 0: expired on arrival, served from fallback. Cold start
    // means uniform ECMP.
    let v = client
        .roundtrip(r#"{"id": 1, "type": "infer", "demands": [[0, 2, 3.0]], "deadline_ms": 0}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(
        v.get("reason").and_then(Value::as_str),
        Some("deadline_miss")
    );
    assert_eq!(
        v.get("splits_source").and_then(Value::as_str),
        Some("uniform_ecmp")
    );
    let splits = v.get("splits").and_then(Value::as_array).unwrap();
    assert!(!splits.is_empty());

    // a successful inference installs last-good...
    let v = client.roundtrip(r#"{"id": 2, "type": "infer", "demands": [[0, 2, 3.0]]}"#);
    assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(false));

    // ...which subsequent degraded responses are served from
    let v = client
        .roundtrip(r#"{"id": 3, "type": "infer", "demands": [[0, 2, 3.0]], "deadline_ms": 0}"#);
    assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(
        v.get("splits_source").and_then(Value::as_str),
        Some("last_good")
    );

    let stats = handle.stats();
    assert_eq!(stats.degraded_total(), 2);
    assert_eq!(stats.infer_ok_total(), 1);
    handle.shutdown();
}
