//! Property tests for topology-update handling: on random fail/restore
//! sequences over a fixed WAN,
//!
//! 1. the pruned tunnel set never contains a tunnel traversing a failed
//!    edge;
//! 2. the incrementally-maintained state matches a from-scratch rebuild
//!    (same pruned tunnels, and a compiled instance with identical flow
//!    structure and uniform-splits MLU);
//! 3. splits carried across an update renormalize to exactly 1 per
//!    surviving demand.

use std::collections::BTreeSet;

use harp_core::Instance;
use harp_paths::TunnelSet;
use harp_serve::{carry_splits, uniform_splits, NetworkState};
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use proptest::prelude::*;

/// Undirected links of the test WAN (5 nodes, enough redundancy that
/// every sequence leaves some connectivity).
const LINKS: [(usize, usize); 7] = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2), (1, 3)];

fn test_wan() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(5);
    for (i, &(u, v)) in LINKS.iter().enumerate() {
        topo.add_link(u, v, 10.0 + i as f64).unwrap();
    }
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3, 4], 3, 0.0);
    (topo, tunnels)
}

/// Decode one raw value into a (fail?, link) op. Even = fail, odd =
/// restore; the link index wraps over the link table.
fn decode(raw: usize) -> (bool, (usize, usize)) {
    (raw.is_multiple_of(2), LINKS[(raw / 2) % LINKS.len()])
}

/// Replay `ops` through a NetworkState, returning it plus the directed
/// failed-edge set maintained independently as ground truth.
fn replay(ops: &[usize]) -> (NetworkState, BTreeSet<usize>) {
    let (topo, tunnels) = test_wan();
    let mut truth: BTreeSet<usize> = BTreeSet::new();
    let mut state = NetworkState::new(topo.clone(), tunnels);
    for &raw in ops {
        let (fail, (u, v)) = decode(raw);
        let fwd = topo.edge_id(u, v).unwrap();
        let rev = topo.edge_id(v, u).unwrap();
        if fail {
            state.apply_update(&[(u, v)], &[]).unwrap();
            truth.insert(fwd);
            truth.insert(rev);
        } else {
            state.apply_update(&[], &[(u, v)]).unwrap();
            truth.remove(&fwd);
            truth.remove(&rev);
        }
    }
    (state, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No pruned tunnel ever traverses a failed edge, and the state's
    /// failure set matches the independently-maintained ground truth.
    #[test]
    fn pruned_tunnels_avoid_every_failed_edge(
        ops in proptest::collection::vec(0usize..(2 * LINKS.len()), 1..12),
    ) {
        let (state, truth) = replay(&ops);
        prop_assert_eq!(state.failed_edges().clone(), truth.clone());
        for f in 0..state.tunnels().num_flows() {
            for path in state.tunnels().tunnels_of(f) {
                for e in &path.0 {
                    prop_assert!(
                        !truth.contains(e),
                        "tunnel for flow {} uses failed edge {}", f, e
                    );
                }
            }
        }
        // epoch advanced once per applied update
        prop_assert_eq!(state.epoch(), ops.len() as u64);
    }

    /// Incremental maintenance equals a from-scratch rebuild: identical
    /// pruned tunnels, and the compiled instance agrees exactly on flow
    /// structure and uniform-splits MLU.
    #[test]
    fn incremental_state_matches_scratch_rebuild(
        ops in proptest::collection::vec(0usize..(2 * LINKS.len()), 1..12),
    ) {
        let (state, truth) = replay(&ops);

        // from scratch: fresh topology with the net failure set applied
        let (mut scratch_topo, base_tunnels) = test_wan();
        for &e in &truth {
            scratch_topo
                .set_capacity(e, harp_serve::FAILED_CAPACITY)
                .unwrap();
        }
        let scratch_tunnels = base_tunnels.without_edges(&truth);

        prop_assert_eq!(state.tunnels().flows(), scratch_tunnels.flows());
        prop_assert_eq!(
            state.tunnels().num_tunnels(),
            scratch_tunnels.num_tunnels()
        );
        for f in 0..scratch_tunnels.num_flows() {
            prop_assert_eq!(
                state.tunnels().tunnels_of(f),
                scratch_tunnels.tunnels_of(f)
            );
        }
        prop_assert_eq!(state.topology().capacities(), scratch_topo.capacities());

        // same compiled instance: identical MLU under uniform splits
        let mut tm = TrafficMatrix::zeros(5);
        for s in 0..5 {
            for t in 0..5 {
                if s != t {
                    tm.set_demand(s, t, 1.0 + (s * 5 + t) as f64 * 0.25);
                }
            }
        }
        let inc = Instance::compile(state.topology(), state.tunnels(), &tm);
        let scr = Instance::compile(&scratch_topo, &scratch_tunnels, &tm);
        prop_assert_eq!(inc.program.num_flows(), scr.program.num_flows());
        prop_assert_eq!(inc.program.num_tunnels(), scr.program.num_tunnels());
        let u = scr.program.uniform_splits();
        prop_assert_eq!(
            inc.program.mlu(&u).to_bits(),
            scr.program.mlu(&u).to_bits(),
            "uniform-splits MLU differs between incremental and scratch"
        );
    }

    /// Carrying splits across an update renormalizes to 1 per demand:
    /// random per-tunnel weights, random prune, per-flow sums are exactly
    /// within float tolerance of 1.
    #[test]
    fn carried_splits_sum_to_one_per_demand(
        ops in proptest::collection::vec(0usize..(2 * LINKS.len()), 1..12),
        weights in proptest::collection::vec(0.0f64..1.0, 64),
    ) {
        let (_, tunnels) = test_wan();
        // random but valid old splits: positive weights, normalized per flow
        let mut old = Vec::with_capacity(tunnels.num_tunnels());
        for f in 0..tunnels.num_flows() {
            let k = tunnels.tunnels_of(f).len();
            let ws: Vec<f64> = (0..k)
                .map(|i| weights[(old.len() + i) % weights.len()] + 1e-3)
                .collect();
            let total: f64 = ws.iter().sum();
            old.extend(ws.iter().map(|w| w / total));
        }

        let (state, truth) = replay(&ops);
        let carried = carry_splits(&tunnels, &old, state.tunnels());
        prop_assert_eq!(carried.len(), state.tunnels().num_tunnels());
        let mut off = 0;
        for f in 0..state.tunnels().num_flows() {
            let k = state.tunnels().tunnels_of(f).len();
            let sum: f64 = carried[off..off + k].iter().sum();
            prop_assert!(
                (sum - 1.0).abs() < 1e-9,
                "flow {} carried splits sum to {}", f, sum
            );
            off += k;
        }
        let _ = truth;
    }

    /// Uniform ECMP fallback is always a valid split assignment for the
    /// current epoch's tunnels.
    #[test]
    fn uniform_fallback_is_valid_for_any_epoch(
        ops in proptest::collection::vec(0usize..(2 * LINKS.len()), 0..12),
    ) {
        let (state, _) = replay(&ops);
        let u = uniform_splits(state.tunnels());
        let mut tm = TrafficMatrix::zeros(5);
        for s in 0..5 {
            for t in 0..5 {
                if s != t {
                    tm.set_demand(s, t, 1.0);
                }
            }
        }
        let inst = Instance::compile(state.topology(), state.tunnels(), &tm);
        prop_assert!(inst.program.splits_are_valid(&u, 1e-9));
    }
}
