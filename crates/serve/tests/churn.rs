//! Regression test for connection-churn resource leaks.
//!
//! The original daemon spawned a thread per connection and pushed the
//! handle into a vector that was only pruned opportunistically — churn
//! grew the process's thread count and the handle vector without bound.
//! The reactor design is structurally immune: no thread is ever spawned
//! per connection. This test hammers connect/request/disconnect and
//! asserts (a) the server's open-connection gauge returns to zero and
//! (b) on Linux, the process thread count does not grow with churn.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harp_core::{Harp, HarpConfig, SplitModel};
use harp_paths::TunnelSet;
use harp_serve::{serve, ServeConfig, ServerHandle};
use harp_tensor::ParamStore;
use harp_topology::Topology;
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

fn boot() -> ServerHandle {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 2, 10.0).unwrap();
    topo.add_link(2, 3, 10.0).unwrap();
    topo.add_link(3, 0, 10.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 3, 0.0);
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let harp = Harp::new(
        &mut store,
        &mut rng,
        HarpConfig {
            gnn_layers: 1,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 8,
            mlp_hidden: 8,
            rau_iters: 1,
        },
    );
    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        deadline_ms: 2_000,
        ..ServeConfig::default()
    };
    serve(cfg, model, store, topo, tunnels).expect("bind loopback")
}

#[cfg(target_os = "linux")]
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn connection_churn_leaks_no_threads_or_handles() {
    let handle = boot();

    // Warm up: one full request so lazy pools/caches exist before we
    // snapshot the thread count.
    {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        w.write_all(b"{\"id\": 0, \"type\": \"infer\", \"demands\": [[0, 2, 1.0]]}\n")
            .unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
    }

    #[cfg(target_os = "linux")]
    let threads_before = process_threads();

    for i in 0..50u64 {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        w.write_all(
            format!("{{\"id\": {i}, \"type\": \"infer\", \"demands\": [[0, 2, 1.0]]}}\n")
                .as_bytes(),
        )
        .unwrap();
        w.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        let v: Value = serde_json::from_str(&resp).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        // both halves drop here: the server sees EOF and must fully
        // release the connection
    }

    // The open-connection gauge must return to zero once the server has
    // observed every EOF.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if handle.stats().conns_open() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connections leaked: {} still open after churn",
            handle.stats().conns_open()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(handle.stats().conns_open() == 0);

    // No thread-per-connection: churning 50 connections must not grow
    // the thread count (allow +2 slack for unrelated lazy runtime
    // threads, far below the 50 a per-connection design would add).
    #[cfg(target_os = "linux")]
    {
        let threads_after = process_threads();
        assert!(
            threads_after <= threads_before + 2,
            "thread count grew with churn: {threads_before} -> {threads_after}"
        );
    }

    handle.shutdown();
}
