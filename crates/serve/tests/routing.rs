//! Fleet-level shard routing invariants, driven through the public
//! [`harp_serve::Fleet`] API with channel reply sinks (no sockets):
//!
//! * epoch-pin matching — after a broadcast topology update every live
//!   shard advances in lockstep, pins to the new epoch route, pins to
//!   the old one are refused as stale;
//! * deterministic shedding — at the admission limit every submission is
//!   shed, every time, not probabilistically;
//! * failover — a shard dying mid-batch is marked dead, its queued work
//!   is answered with retryable errors, and the router never selects it
//!   again while the survivors keep serving.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use harp_core::{Harp, HarpConfig, SplitModel};
use harp_paths::TunnelSet;
use harp_serve::{parse_request, Fleet, InferJob, ReplySink, Request, RouteDecision, ServeStats};
use harp_tensor::ParamStore;
use harp_topology::Topology;
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

fn square() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 2, 10.0).unwrap();
    topo.add_link(2, 3, 10.0).unwrap();
    topo.add_link(3, 0, 10.0).unwrap();
    topo.add_link(0, 2, 5.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 3, 0.0);
    (topo, tunnels)
}

fn spawn_fleet(num_shards: usize, queue_limit: usize) -> (Fleet, Arc<AtomicBool>) {
    let (topo, tunnels) = square();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let harp = Harp::new(
        &mut store,
        &mut rng,
        HarpConfig {
            gnn_layers: 1,
            gnn_hidden: 4,
            d_model: 8,
            settrans_layers: 1,
            heads: 1,
            d_ff: 8,
            mlp_hidden: 8,
            rau_iters: 1,
        },
    );
    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    let stop = Arc::new(AtomicBool::new(false));
    let fleet = Fleet::spawn(
        num_shards,
        8,
        queue_limit,
        model,
        store,
        topo,
        tunnels,
        Arc::clone(&stop),
        Arc::new(ServeStats::new()),
    );
    (fleet, stop)
}

fn infer_job(id: u64, pin: Option<u64>, reply: ReplySink) -> InferJob {
    let now = Instant::now();
    InferJob {
        id,
        demands: vec![(0, 2, 1.0)],
        epoch_pin: pin,
        deadline: now + Duration::from_secs(5),
        enqueued: now,
        reply,
    }
}

fn recv_json(rx: &mpsc::Receiver<String>) -> Value {
    let line = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("reply within 10s");
    serde_json::from_str(&line).expect("reply is valid JSON")
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn topology_update(fail: &[(usize, usize)]) -> Request {
    let links: Vec<Value> = fail
        .iter()
        .map(|&(a, b)| Value::from(vec![a as f64, b as f64]))
        .collect();
    let line = serde_json::to_string(&serde_json::json!({
        "id": 1, "type": "topology_update", "fail_links": links
    }))
    .unwrap();
    let (_, req) = parse_request(&line).expect("valid update");
    req
}

#[test]
fn epoch_pins_route_only_after_every_shard_advances() {
    let (mut fleet, stop) = spawn_fleet(3, 64);

    // epoch 0: a pin to 0 routes, a pin to 1 is stale
    let (tx, rx) = mpsc::channel();
    fleet
        .submit_infer(infer_job(10, Some(0), ReplySink::Channel(tx)))
        .expect("pin 0 routes at epoch 0");
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    let (tx, _rx2) = mpsc::channel();
    assert_eq!(
        fleet.submit_infer(infer_job(11, Some(1), ReplySink::Channel(tx))),
        Err(RouteDecision::StaleEpoch { current: 0 })
    );

    // broadcast update: all three shards advance to epoch 1 in lockstep
    let (tx, rx) = mpsc::channel();
    fleet.broadcast_control(12, topology_update(&[(0, 1)]), ReplySink::Channel(tx));
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));
    wait_until("all shards at epoch 1", || {
        fleet.views().iter().all(|s| s.alive && s.epoch == 1)
    });
    assert_eq!(fleet.current_epoch(), 1);

    // now the pins invert: 1 routes everywhere, 0 is stale
    for _ in 0..8 {
        let (tx, rx) = mpsc::channel();
        fleet
            .submit_infer(infer_job(13, Some(1), ReplySink::Channel(tx)))
            .expect("pin 1 routes at epoch 1");
        let v = recv_json(&rx);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));
    }
    let (tx, _rx2) = mpsc::channel();
    assert_eq!(
        fleet.submit_infer(infer_job(14, Some(0), ReplySink::Channel(tx))),
        Err(RouteDecision::StaleEpoch { current: 1 })
    );

    stop.store(true, Ordering::SeqCst);
    fleet.join();
}

#[test]
fn shedding_at_the_admission_limit_is_deterministic() {
    // queue_limit 0: the admission check trips before any enqueue, so
    // every single submission must shed — no flapping, no probability.
    let (mut fleet, stop) = spawn_fleet(2, 0);
    for i in 0..32u64 {
        let (tx, _rx) = mpsc::channel();
        assert_eq!(
            fleet.submit_infer(infer_job(i, None, ReplySink::Channel(tx))),
            Err(RouteDecision::Overloaded),
            "submission {i} was not shed"
        );
    }
    stop.store(true, Ordering::SeqCst);
    fleet.join();
}

#[test]
fn router_fails_over_when_a_shard_dies_mid_batch() {
    let (mut fleet, stop) = spawn_fleet(2, 64);

    // park some work on shard 0's queue, then kill it mid-batch: the
    // crash hook panics the batcher while these jobs are queued behind it
    let mut queued = Vec::new();
    for i in 0..4u64 {
        let (tx, rx) = mpsc::channel();
        let idx = fleet
            .submit_infer(infer_job(i, None, ReplySink::Channel(tx)))
            .expect("routes while both shards live");
        queued.push((idx, rx));
    }
    fleet.crash_shard(0);
    wait_until("shard 0 marked dead", || {
        !fleet.views()[0].alive && fleet.views()[1].alive
    });

    // every queued job still gets an answer: served if it beat the
    // crash (or landed on shard 1), else a retryable error
    for (idx, rx) in queued {
        let v = recv_json(&rx);
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => {}
            Some(false) => {
                assert_eq!(idx, 0, "only the crashed shard may error");
                let err = v.get("error").and_then(Value::as_str).unwrap();
                assert!(err.contains("retry"), "error not retryable: {err}");
            }
            None => panic!("reply without ok field: {v}"),
        }
    }

    // the survivor keeps serving and the router never selects the corpse
    for i in 100..120u64 {
        let (tx, rx) = mpsc::channel();
        let idx = fleet
            .submit_infer(infer_job(i, None, ReplySink::Channel(tx)))
            .expect("survivor routes");
        assert_eq!(idx, 1, "dead shard selected");
        let v = recv_json(&rx);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }

    // control broadcasts skip the corpse instead of wedging
    let (tx, rx) = mpsc::channel();
    fleet.broadcast_control(200, topology_update(&[(1, 2)]), ReplySink::Channel(tx));
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(fleet.current_epoch(), 1);

    stop.store(true, Ordering::SeqCst);
    fleet.join();
}
