//! Fleet-level shard routing invariants, driven through the public
//! [`harp_serve::Fleet`] API with channel reply sinks (no sockets):
//!
//! * epoch-pin matching — after a broadcast topology update every live
//!   shard advances in lockstep, pins to the new epoch route, pins to
//!   the old one are refused as stale;
//! * deterministic shedding — at the admission limit every submission is
//!   shed, every time, not probabilistically;
//! * failover — a shard dying mid-batch is marked dead, its queued work
//!   is answered with retryable errors, and the router never selects it
//!   again while the survivors keep serving.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use harp_core::{Harp, HarpConfig, SplitModel};
use harp_nn::save_params;
use harp_paths::TunnelSet;
use harp_serve::{parse_request, Fleet, InferJob, ReplySink, Request, RouteDecision, ServeStats};
use harp_tensor::ParamStore;
use harp_topology::Topology;
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

fn square() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 2, 10.0).unwrap();
    topo.add_link(2, 3, 10.0).unwrap();
    topo.add_link(3, 0, 10.0).unwrap();
    topo.add_link(0, 2, 5.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 3, 0.0);
    (topo, tunnels)
}

fn tiny_cfg() -> HarpConfig {
    HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 1,
    }
}

fn spawn_fleet(num_shards: usize, queue_limit: usize) -> (Fleet, Arc<AtomicBool>) {
    let (topo, tunnels) = square();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(3);
    let harp = Harp::new(&mut store, &mut rng, tiny_cfg());
    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    let stop = Arc::new(AtomicBool::new(false));
    let fleet = Fleet::spawn(
        num_shards,
        8,
        queue_limit,
        model,
        store,
        topo,
        tunnels,
        Arc::clone(&stop),
        Arc::new(ServeStats::new()),
    );
    (fleet, stop)
}

fn infer_job(id: u64, pin: Option<u64>, reply: ReplySink) -> InferJob {
    let now = Instant::now();
    InferJob {
        id,
        demands: vec![(0, 2, 1.0)],
        epoch_pin: pin,
        deadline: now + Duration::from_secs(5),
        enqueued: now,
        reply,
    }
}

fn recv_json(rx: &mpsc::Receiver<String>) -> Value {
    let line = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("reply within 10s");
    serde_json::from_str(&line).expect("reply is valid JSON")
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn topology_update(fail: &[(usize, usize)]) -> Request {
    let links: Vec<Value> = fail
        .iter()
        .map(|&(a, b)| Value::from(vec![a as f64, b as f64]))
        .collect();
    let line = serde_json::to_string(&serde_json::json!({
        "id": 1, "type": "topology_update", "fail_links": links
    }))
    .unwrap();
    let (_, req) = parse_request(&line).expect("valid update");
    req
}

/// Write a valid same-architecture checkpoint (different seed) and return
/// a `reload_checkpoint` request pointing at it.
fn reload_request(name: &str, seed: u64) -> Request {
    let dir = std::env::temp_dir().join("harp_serve_routing");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut other = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let _ = Harp::new(&mut other, &mut rng, tiny_cfg());
    save_params(&other, &path).unwrap();
    let line = serde_json::to_string(&serde_json::json!({
        "id": 1, "type": "reload_checkpoint", "path": path.to_str().unwrap()
    }))
    .unwrap();
    let (_, req) = parse_request(&line).expect("valid reload");
    req
}

/// The `param_generation`/`staleness` rows of the stats payload.
fn generation_rows(fleet: &Fleet) -> Vec<(u64, u64, u64)> {
    fleet
        .shards_payload()
        .as_array()
        .expect("shards payload is an array")
        .iter()
        .map(|row| {
            let f = |k: &str| row.get(k).and_then(Value::as_f64).unwrap() as u64;
            (f("epoch"), f("param_generation"), f("staleness"))
        })
        .collect()
}

#[test]
fn epoch_pins_route_only_after_every_shard_advances() {
    let (mut fleet, stop) = spawn_fleet(3, 64);

    // epoch 0: a pin to 0 routes, a pin to 1 is stale
    let (tx, rx) = mpsc::channel();
    fleet
        .submit_infer(infer_job(10, Some(0), ReplySink::Channel(tx)))
        .expect("pin 0 routes at epoch 0");
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    let (tx, _rx2) = mpsc::channel();
    assert_eq!(
        fleet.submit_infer(infer_job(11, Some(1), ReplySink::Channel(tx))),
        Err(RouteDecision::StaleEpoch { current: 0 })
    );

    // broadcast update: all three shards advance to epoch 1 in lockstep
    let (tx, rx) = mpsc::channel();
    fleet.broadcast_control(12, topology_update(&[(0, 1)]), ReplySink::Channel(tx));
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));
    wait_until("all shards at epoch 1", || {
        fleet.views().iter().all(|s| s.alive && s.epoch == 1)
    });
    assert_eq!(fleet.current_epoch(), 1);

    // now the pins invert: 1 routes everywhere, 0 is stale
    for _ in 0..8 {
        let (tx, rx) = mpsc::channel();
        fleet
            .submit_infer(infer_job(13, Some(1), ReplySink::Channel(tx)))
            .expect("pin 1 routes at epoch 1");
        let v = recv_json(&rx);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));
    }
    let (tx, _rx2) = mpsc::channel();
    assert_eq!(
        fleet.submit_infer(infer_job(14, Some(0), ReplySink::Channel(tx))),
        Err(RouteDecision::StaleEpoch { current: 1 })
    );

    stop.store(true, Ordering::SeqCst);
    fleet.join();
}

#[test]
fn shedding_at_the_admission_limit_is_deterministic() {
    // queue_limit 0: the admission check trips before any enqueue, so
    // every single submission must shed — no flapping, no probability.
    let (mut fleet, stop) = spawn_fleet(2, 0);
    for i in 0..32u64 {
        let (tx, _rx) = mpsc::channel();
        assert_eq!(
            fleet.submit_infer(infer_job(i, None, ReplySink::Channel(tx))),
            Err(RouteDecision::Overloaded),
            "submission {i} was not shed"
        );
    }
    stop.store(true, Ordering::SeqCst);
    fleet.join();
}

#[test]
fn router_fails_over_when_a_shard_dies_mid_batch() {
    let (mut fleet, stop) = spawn_fleet(2, 64);

    // park some work on shard 0's queue, then kill it mid-batch: the
    // crash hook panics the batcher while these jobs are queued behind it
    let mut queued = Vec::new();
    for i in 0..4u64 {
        let (tx, rx) = mpsc::channel();
        let idx = fleet
            .submit_infer(infer_job(i, None, ReplySink::Channel(tx)))
            .expect("routes while both shards live");
        queued.push((idx, rx));
    }
    fleet.crash_shard(0);
    wait_until("shard 0 marked dead", || {
        !fleet.views()[0].alive && fleet.views()[1].alive
    });

    // every queued job still gets an answer: served if it beat the
    // crash (or landed on shard 1), else a retryable error
    for (idx, rx) in queued {
        let v = recv_json(&rx);
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => {}
            Some(false) => {
                assert_eq!(idx, 0, "only the crashed shard may error");
                let err = v.get("error").and_then(Value::as_str).unwrap();
                assert!(err.contains("retry"), "error not retryable: {err}");
            }
            None => panic!("reply without ok field: {v}"),
        }
    }

    // the survivor keeps serving and the router never selects the corpse
    for i in 100..120u64 {
        let (tx, rx) = mpsc::channel();
        let idx = fleet
            .submit_infer(infer_job(i, None, ReplySink::Channel(tx)))
            .expect("survivor routes");
        assert_eq!(idx, 1, "dead shard selected");
        let v = recv_json(&rx);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    }

    // control broadcasts skip the corpse instead of wedging
    let (tx, rx) = mpsc::channel();
    fleet.broadcast_control(200, topology_update(&[(1, 2)]), ReplySink::Channel(tx));
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(fleet.current_epoch(), 1);

    stop.store(true, Ordering::SeqCst);
    fleet.join();
}

#[test]
fn generation_and_staleness_survive_a_reload_update_round() {
    let (mut fleet, stop) = spawn_fleet(2, 64);

    // cold fleet: generation 0, nobody stale
    assert_eq!(fleet.generation_summary(), (0, 0));
    for (epoch, generation, staleness) in generation_rows(&fleet) {
        assert_eq!((epoch, generation, staleness), (0, 0, 0));
    }

    // reload: every shard advances to generation 1, and the reload is
    // itself an epoch bump (pins to the pre-reload params go stale)
    let (tx, rx) = mpsc::channel();
    fleet.broadcast_control(
        300,
        reload_request("round.json", 99),
        ReplySink::Channel(tx),
    );
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("generation").and_then(Value::as_u64), Some(1));
    wait_until("all shards at generation 1", || {
        generation_rows(&fleet).iter().all(|&r| r == (1, 1, 0))
    });
    assert_eq!(fleet.generation_summary(), (1, 0));

    // a topology update must not disturb the generation accounting
    let (tx, rx) = mpsc::channel();
    fleet.broadcast_control(301, topology_update(&[(0, 1)]), ReplySink::Channel(tx));
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("epoch").and_then(Value::as_u64), Some(2));
    wait_until("all shards at epoch 2, still generation 1", || {
        generation_rows(&fleet).iter().all(|&r| r == (2, 1, 0))
    });
    assert_eq!(fleet.generation_summary(), (1, 0));

    // and an infer pinned to the post-update epoch reports the generation
    let (tx, rx) = mpsc::channel();
    fleet
        .submit_infer(infer_job(302, Some(2), ReplySink::Channel(tx)))
        .expect("pin to current epoch routes");
    let v = recv_json(&rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("generation").and_then(Value::as_u64), Some(1));

    stop.store(true, Ordering::SeqCst);
    fleet.join();
}

#[test]
fn reload_mid_batch_never_mixes_generations_within_an_epoch() {
    // The atomicity contract: a reload bumps the epoch, so requests
    // observing epoch E must all have been served from the same parameter
    // generation — even while the reload broadcast is still landing shard
    // by shard on a busy multi-shard fleet.
    let (mut fleet, stop) = spawn_fleet(3, 256);

    let mut replies = Vec::new();
    let (reload_tx, reload_rx) = mpsc::channel();
    for i in 0..60u64 {
        if i == 20 {
            // fire the reload while infer work is queued mid-batch
            fleet.broadcast_control(
                1000,
                reload_request("atomic.json", 41),
                ReplySink::Channel(reload_tx.clone()),
            );
        }
        let (tx, rx) = mpsc::channel();
        if fleet
            .submit_infer(infer_job(i, None, ReplySink::Channel(tx)))
            .is_ok()
        {
            replies.push(rx);
        }
    }
    let v = recv_json(&reload_rx);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("generation").and_then(Value::as_u64), Some(1));

    // every epoch observed by any reply maps to exactly one generation
    let mut by_epoch: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for rx in replies {
        let v = recv_json(&rx);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        if v.get("degraded").and_then(Value::as_bool) == Some(true) {
            continue; // degraded replies answer from fallback splits
        }
        let epoch = v.get("epoch").and_then(Value::as_u64).unwrap();
        let generation = v.get("generation").and_then(Value::as_u64).unwrap();
        by_epoch.entry(epoch).or_default().insert(generation);
    }
    for (epoch, generations) in &by_epoch {
        assert_eq!(
            generations.len(),
            1,
            "epoch {epoch} served from {} generations: {generations:?}",
            generations.len()
        );
        // in this scenario only reloads bump the epoch, so they track 1:1
        assert!(generations.contains(epoch));
    }

    wait_until("fleet settles at generation 1", || {
        generation_rows(&fleet).iter().all(|&r| r == (1, 1, 0))
    });
    stop.store(true, Ordering::SeqCst);
    fleet.join();
}
