//! Hostile-client hardening: arbitrary bytes on the wire must yield a
//! structured JSON error (never a panic or a hung daemon), oversized
//! lines are capped, idle connections are reaped, and chaos-injected
//! connection faults (drop/delay at accept) leave the server healthy.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harp_chaos::{FaultKind, FaultPlan};
use harp_core::{Harp, HarpConfig, SplitModel};
use harp_paths::TunnelSet;
use harp_serve::{serve, ServeConfig, ServerHandle};
use harp_tensor::ParamStore;
use harp_topology::Topology;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

fn tiny_cfg() -> HarpConfig {
    HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 1,
    }
}

fn square() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 2, 10.0).unwrap();
    topo.add_link(2, 3, 10.0).unwrap();
    topo.add_link(3, 0, 10.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 3, 0.0);
    (topo, tunnels)
}

fn boot_with(seed: u64, cfg: ServeConfig) -> ServerHandle {
    let (topo, tunnels) = square();
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let harp = Harp::new(&mut store, &mut rng, tiny_cfg());
    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    serve(cfg, model, store, topo, tunnels).expect("bind loopback")
}

fn base_cfg() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        deadline_ms: 2_000,
        max_batch: 8,
        ..ServeConfig::default()
    }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn read_response(&mut self) -> Value {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).expect("every response line is valid JSON")
    }

    fn roundtrip(&mut self, line: &str) -> Value {
        self.send_raw(line.as_bytes());
        self.read_response()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any garbage byte sequence (newline-terminated) gets a structured
    /// JSON error line back, and the connection keeps serving valid
    /// requests afterwards.
    #[test]
    fn garbage_lines_get_structured_errors(
        lines in proptest::collection::vec(
            proptest::collection::vec(
                // full byte range, remapping the line terminator itself
                (0u32..256).prop_map(|b| if b as u8 == b'\n' { 0x7f } else { b as u8 }),
                1..200,
            ),
            1..6,
        ),
    ) {
        let handle = boot_with(21, base_cfg());
        let mut client = Client::connect(&handle);
        for line in &lines {
            // a leading control byte guarantees the line is neither blank
            // (blank lines are silently skipped) nor valid JSON
            let mut payload = vec![0x01u8];
            payload.extend_from_slice(line);
            client.send_raw(&payload);
            let v = client.read_response();
            prop_assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
            prop_assert!(v.get("error").and_then(Value::as_str).is_some());
        }
        // the daemon is still healthy: a well-formed request succeeds
        let v = client.roundtrip(r#"{"id": 1, "type": "stats"}"#);
        prop_assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        prop_assert_eq!(
            v.get("protocol_errors").and_then(Value::as_u64),
            Some(lines.len() as u64)
        );
        handle.shutdown();
    }
}

#[test]
fn oversized_line_is_rejected_and_connection_survives() {
    let cfg = ServeConfig {
        max_line_bytes: 128,
        ..base_cfg()
    };
    let handle = boot_with(22, cfg);
    let mut client = Client::connect(&handle);

    let big = "x".repeat(4096);
    let v = client.roundtrip(&big);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    let err = v.get("error").and_then(Value::as_str).unwrap();
    assert!(
        err.contains("128 bytes"),
        "error should name the cap: {err}"
    );

    // the oversized line was discarded through its newline; the next
    // request parses cleanly
    let v = client.roundtrip(r#"{"id": 2, "type": "stats"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("protocol_errors").and_then(Value::as_u64), Some(1));
    handle.shutdown();
}

#[test]
fn oversized_line_without_newline_cannot_buffer_unbounded() {
    let cfg = ServeConfig {
        max_line_bytes: 128,
        ..base_cfg()
    };
    let handle = boot_with(23, cfg);
    let mut client = Client::connect(&handle);

    // Stream a huge "line" in chunks with no terminating newline: the
    // server must answer (cap tripped) without waiting for the newline.
    for _ in 0..8 {
        client.writer.write_all(&[b'y'; 512]).unwrap();
        client.writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(80));
    }
    let v = client.read_response();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));

    // finish the monster line; everything after it works
    client.writer.write_all(b"\n").unwrap();
    client.writer.flush().unwrap();
    let v = client.roundtrip(r#"{"id": 3, "type": "stats"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn idle_connection_is_closed_after_read_timeout() {
    let cfg = ServeConfig {
        read_timeout_ms: 300,
        ..base_cfg()
    };
    let handle = boot_with(24, cfg);
    let mut client = Client::connect(&handle);

    // say nothing; the server should hang up on us
    let start = Instant::now();
    let mut scratch = [0u8; 16];
    let n = client
        .reader
        .read(&mut scratch)
        .expect("clean EOF, not an error");
    assert_eq!(n, 0, "idle connection must be closed with EOF");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "close should arrive promptly after the idle budget"
    );

    // a fresh connection still works — only the idle one was reaped
    let mut fresh = Client::connect(&handle);
    let v = fresh.roundtrip(r#"{"id": 4, "type": "stats"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    handle.shutdown();
}

#[test]
fn chaos_dropped_connection_only_hits_the_planned_accept() {
    let plan = Arc::new(FaultPlan::new(vec![FaultKind::DropConn { nth: 0 }], 5));
    let cfg = ServeConfig {
        chaos: Some(Arc::clone(&plan)),
        ..base_cfg()
    };
    let handle = boot_with(25, cfg);

    // connection 0 is dropped at accept: either the RST lands before our
    // write (write fails) or after (read sees EOF) — both prove the drop,
    // and neither may yield a response line.
    let mut victim = Client::connect(&handle);
    let wrote = victim
        .writer
        .write_all(b"{\"id\": 5, \"type\": \"stats\"}\n")
        .and_then(|()| victim.writer.flush());
    if wrote.is_ok() {
        let mut resp = String::new();
        let n = victim.reader.read_line(&mut resp).unwrap_or(0);
        assert_eq!(n, 0, "chaos-dropped connection must see EOF, got: {resp}");
    }

    // connection 1 is untouched
    let mut survivor = Client::connect(&handle);
    let v = survivor.roundtrip(r#"{"id": 6, "type": "stats"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert!(plan.exhausted(), "the drop fault fired exactly once");
    handle.shutdown();
}

#[test]
fn chaos_delayed_connection_still_gets_served() {
    let plan = Arc::new(FaultPlan::new(
        vec![FaultKind::DelayConn { nth: 0, ms: 250 }],
        5,
    ));
    let cfg = ServeConfig {
        chaos: Some(Arc::clone(&plan)),
        ..base_cfg()
    };
    let handle = boot_with(26, cfg);

    let start = Instant::now();
    let mut client = Client::connect(&handle);
    let v = client.roundtrip(r#"{"id": 7, "type": "stats"}"#);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert!(
        start.elapsed() >= Duration::from_millis(250),
        "delay fault should stall the accept path"
    );
    assert!(plan.exhausted());
    handle.shutdown();
}
