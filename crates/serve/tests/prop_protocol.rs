//! Hostile-input property tests for the bounded wire parser.
//!
//! The regression these pin: wire integers used to be narrowed with bare
//! `as usize` casts *before* any bounds check, so a hostile `src` like
//! `2^63` wrapped into a plausible small index on 32-bit targets and an
//! out-of-range one on 64-bit — either way the check ran on the mangled
//! value. [`parse_request_bounded`] must validate against
//! [`WireLimits`] on the original `u64` (or reject non-integers) before
//! any narrowing, and must never panic no matter what bytes arrive.

use harp_serve::{parse_request_bounded, ProtocolErrorKind, WireLimits};
use proptest::prelude::*;
use serde_json::Value;

fn limits() -> WireLimits {
    WireLimits::for_nodes(4)
}

/// Node-id strategy biased toward the values that break naive casts:
/// in-range ids, barely-out-of-range ids, and giants that wrap on every
/// narrowing width.
fn hostile_node_id() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..4,                                               // in range
        4u64..64,                                              // just out of range
        (u64::from(u32::MAX) - 2)..=(u64::from(u32::MAX) + 2), // wraps as u32
        (u64::MAX - 4)..=u64::MAX,                             // wraps as anything narrower
        prop_oneof![
            Just(1u64 << 31),
            Just(1u64 << 32),
            Just(1u64 << 48),
            Just(1u64 << 63)
        ],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics, whatever bytes the line holds.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec((0u32..256).prop_map(|b| b as u8), 0..300),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request_bounded(&line, &limits());
        let _ = parse_request_bounded(&line, &WireLimits::unbounded());
    }

    /// JSON-shaped lines with hostile field values never panic, and every
    /// rejection renders as exactly one line of valid JSON with a typed
    /// `error_kind`.
    #[test]
    fn rejections_always_render_typed_single_line_json(
        id in 0u64..u64::MAX,
        ty_sel in 0usize..6,
        junk in hostile_node_id(),
    ) {
        let ty = ["infer", "stats", "warp", "", "topology_update", "\\u0000"][ty_sel];
        let line = format!(
            r#"{{"id": {id}, "type": "{ty}", "demands": {junk}, "epoch": {junk}}}"#
        );
        if let Err(e) = parse_request_bounded(&line, &limits()) {
            let resp = e.to_response();
            prop_assert_eq!(resp.matches('\n').count(), 1);
            prop_assert!(resp.ends_with('\n'));
            let v: Value = serde_json::from_str(&resp).expect("error response is JSON");
            prop_assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
            prop_assert!(v.get("error_kind").and_then(Value::as_str).is_some());
        }
    }

    /// Every node id ≥ the node count — including u64 values that would
    /// wrap under a narrowing cast — is rejected as out-of-range *with
    /// the request id preserved*, and in-range ids always parse.
    #[test]
    fn node_ids_are_validated_on_the_wire_integer(
        src in hostile_node_id(),
        dst in 0u64..4,
        // JSON numbers ride as f64 on this wire, so ids are exact only
        // up to 2^53 — beyond that the echo legitimately rounds
        req_id in 0u64..(1 << 53),
    ) {
        let line = format!(
            r#"{{"id": {req_id}, "type": "infer", "demands": [[{src}, {dst}, 1.0]]}}"#
        );
        match parse_request_bounded(&line, &limits()) {
            Ok((id, _)) => {
                prop_assert_eq!(id, req_id);
                prop_assert!(src < 4, "out-of-range src {} was accepted", src);
            }
            Err(e) => {
                prop_assert!(src >= 4, "in-range src {} was rejected: {}", src, e.reason);
                prop_assert_eq!(e.kind, ProtocolErrorKind::NodeOutOfRange);
                prop_assert_eq!(e.id, Some(req_id));
            }
        }
    }

    /// Negative and fractional node ids are rejected without panicking,
    /// whatever their magnitude.
    #[test]
    fn non_natural_node_ids_are_rejected(
        src in i64::MIN..0,
        frac in 0.001f64..0.999,
    ) {
        for rendered in [format!("{src}"), format!("{:.3}", src as f64 + frac)] {
            let line = format!(
                r#"{{"id": 1, "type": "infer", "demands": [[{rendered}, 0, 1.0]]}}"#
            );
            let e = parse_request_bounded(&line, &limits())
                .expect_err("negative node id must be rejected");
            prop_assert_eq!(e.kind, ProtocolErrorKind::NodeOutOfRange);
        }
    }

    /// Demand lists over the cap are refused as too large — the parser
    /// must not materialize unbounded server state from one line.
    #[test]
    fn oversized_demand_lists_are_too_large(extra in 1usize..32) {
        let lim = limits();
        let n = lim.max_demands + extra;
        let demands: Vec<String> = (0..n).map(|_| "[0, 1, 1.0]".to_string()).collect();
        let line = format!(
            r#"{{"id": 2, "type": "infer", "demands": [{}]}}"#,
            demands.join(", ")
        );
        let e = parse_request_bounded(&line, &lim).expect_err("over-cap list must be rejected");
        prop_assert_eq!(e.kind, ProtocolErrorKind::TooLarge);
        prop_assert_eq!(e.id, Some(2));
    }
}
