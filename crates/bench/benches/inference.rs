//! Inference-cost ablations (DESIGN.md): per-scheme forward passes on
//! Abilene, HARP's RAU-depth scaling (3/7/14 recursions), and the tunnel
//! embedding choice (set transformer vs plain mean pooling).

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::zoo::{build_model, Scheme};
use harp_core::Instance;
use harp_datasets::abilene;
use harp_nn::TransformerEncoder;
use harp_paths::TunnelSet;
use harp_tensor::{ParamStore, Tape};
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn abilene_instance() -> Instance {
    let topo = abilene();
    let n = topo.num_nodes();
    let tunnels = TunnelSet::k_shortest(&topo, &(0..n).collect::<Vec<_>>(), 8, 0.0);
    let cfg = GravityConfig::uniform(n, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    let tm = gravity_series(&cfg, &mut rng, 1).remove(0);
    Instance::compile(&topo, &tunnels, &tm)
}

fn bench_schemes(c: &mut Criterion) {
    let inst = abilene_instance();
    for scheme in [
        Scheme::Dote,
        Scheme::Harp { rau_iters: 7 },
        Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ] {
        let (model, store) = build_model(scheme, &inst, 9);
        c.bench_function(&format!("forward_abilene_{}", scheme.label()), |b| {
            b.iter(|| {
                let mut t = Tape::new();
                model.forward(&mut t, &store, &inst)
            })
        });
    }
}

fn bench_rau_depth(c: &mut Criterion) {
    let inst = abilene_instance();
    for iters in [3usize, 7, 14] {
        let (model, store) = build_model(Scheme::Harp { rau_iters: iters }, &inst, 9);
        c.bench_function(&format!("harp_rau_depth_{iters}"), |b| {
            b.iter(|| {
                let mut t = Tape::new();
                model.forward(&mut t, &store, &inst)
            })
        });
    }
}

fn bench_tunnel_embedding(c: &mut Criterion) {
    // SETTRANS vs mean pooling over tunnel edge embeddings: the design
    // ablation for the paper's choice of a transformer encoder.
    let inst = abilene_instance();
    let d = 16usize;
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(4);
    let enc = TransformerEncoder::new(&mut store, &mut rng, "e", 2, d, 2, 32);
    let seqs = vec![0.1f32; inst.num_tunnels * inst.seq_len * d];

    c.bench_function("tunnel_embed_settrans", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let x = t.constant(vec![inst.num_tunnels, inst.seq_len, d], seqs.clone());
            enc.forward(&mut t, &store, x, Some(inst.score_mask.clone()))
        })
    });
    c.bench_function("tunnel_embed_mean_pool", |b| {
        b.iter(|| {
            let mut t = Tape::new();
            let x = t.constant(vec![inst.num_tunnels * inst.seq_len, d], seqs.clone());
            // mean over valid positions via the incidence segment-sum
            let rows = t.gather_rows(x, inst.pair_row.clone());
            t.segment_sum(rows, inst.pair_tunnel.clone(), inst.num_tunnels)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_schemes, bench_rau_depth, bench_tunnel_embedding
}
criterion_main!(benches);
