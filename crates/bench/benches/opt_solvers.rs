//! Solver ablation (DESIGN.md): exact simplex vs certified Frank–Wolfe on
//! the min-MLU LP, at Abilene and GEANT scale, plus warm-start benefit.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_datasets::{abilene, geant};
use harp_opt::{solve_fw, solve_fw_warm, FwConfig, MluOracle, PathProgram};
use harp_paths::TunnelSet;
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn program_for(topo: &harp_topology::Topology, k: usize, seed: u64) -> PathProgram {
    let n = topo.num_nodes();
    let tunnels = TunnelSet::k_shortest(topo, &(0..n).collect::<Vec<_>>(), k, 0.0);
    let cfg = GravityConfig::uniform(n, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let tm = gravity_series(&cfg, &mut rng, 1).remove(0);
    let scale =
        harp_datasets::calibrate_demand_scale(topo, &tunnels, std::slice::from_ref(&tm), 0.7);
    PathProgram::new(topo, &tunnels, &tm.scaled(scale))
}

fn bench_solvers(c: &mut Criterion) {
    let abi = program_for(&abilene(), 4, 1);
    let gea = program_for(&geant(), 8, 2);

    let oracle = MluOracle::default();
    c.bench_function("simplex_exact_abilene", |b| {
        b.iter(|| oracle.solve_exact(&abi).mlu)
    });
    c.bench_function("fw_certified_abilene", |b| {
        b.iter(|| solve_fw(&abi, FwConfig::default()).mlu)
    });
    c.bench_function("fw_certified_geant", |b| {
        b.iter(|| solve_fw(&gea, FwConfig::default()).mlu)
    });

    // warm start: perturb demands slightly, resolve from previous optimum
    let base = solve_fw(&gea, FwConfig::default());
    let mut gea2 = gea.clone();
    for f in gea2.flows.iter_mut() {
        f.demand *= 1.05;
    }
    c.bench_function("fw_warm_start_geant_5pct_demand_shift", |b| {
        b.iter(|| solve_fw_warm(&gea2, Some(&base.splits), FwConfig::default()).mlu)
    });
    c.bench_function("fw_cold_start_geant_5pct_demand_shift", |b| {
        b.iter(|| solve_fw(&gea2, FwConfig::default()).mlu)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_solvers
}
criterion_main!(benches);
