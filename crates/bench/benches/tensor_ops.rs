//! Micro-benchmarks of the autodiff engine's hot kernels: dense matmul,
//! batched attention-shaped matmul, segment ops (per-flow softmax and the
//! scatter-add that builds link loads), and a full forward+backward of a
//! small MLP.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_nn::{Activation, Mlp};
use harp_tensor::{kernels, ParamStore, Tape};
use std::sync::Arc;

fn bench_matmul(c: &mut Criterion) {
    let a: Vec<f32> = (0..256 * 64).map(|i| (i % 13) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..64 * 64).map(|i| (i % 7) as f32 * 0.1).collect();
    c.bench_function("kernel_matmul_256x64x64", |bench| {
        bench.iter(|| kernels::matmul(&a, &b, 256, 64, 64))
    });
}

fn bench_attention_shape(c: &mut Criterion) {
    // the SETTRANS attention inner product at AnonNet scale:
    // [T=2000, S=10, d=16] x [T, d, S]
    let mut tape = Tape::new();
    let q = tape.constant(vec![2000, 10, 16], vec![0.1; 2000 * 10 * 16]);
    let k = tape.constant(vec![2000, 10, 16], vec![0.2; 2000 * 10 * 16]);
    c.bench_function("batched_attention_scores_2000x10x16", |bench| {
        bench.iter(|| {
            let mut t = Tape::new();
            let q2 = t.constant(vec![2000, 10, 16], tape.value(q).to_vec());
            let k2 = t.constant(vec![2000, 10, 16], tape.value(k).to_vec());
            let kt = t.transpose_last2(k2);
            let s = t.batch_matmul(q2, kt);
            t.softmax_last_dim(s, None)
        })
    });
}

fn bench_segment_ops(c: &mut Criterion) {
    // per-flow softmax over 2000 tunnels in 150 flows + load scatter-add
    let n_tunnels = 2000usize;
    let n_flows = 150usize;
    let n_edges = 120usize;
    let seg: Arc<Vec<usize>> = Arc::new((0..n_tunnels).map(|i| i % n_flows).collect());
    let pair_edge: Arc<Vec<usize>> =
        Arc::new((0..n_tunnels * 4).map(|i| (i * 7) % n_edges).collect());
    let pair_tunnel: Arc<Vec<usize>> = Arc::new((0..n_tunnels * 4).map(|i| i / 4).collect());
    c.bench_function("segment_softmax_plus_loads", |bench| {
        bench.iter(|| {
            let mut t = Tape::new();
            let u = t.constant(vec![n_tunnels], vec![0.3; n_tunnels]);
            let w = t.segment_softmax(u, seg.clone(), n_flows);
            let per_pair = t.gather_rows(w, pair_tunnel.clone());
            let loads = t.segment_sum(per_pair, pair_edge.clone(), n_edges);
            t.max_all(loads)
        })
    });
}

fn bench_mlp_fwd_bwd(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let mlp = Mlp::new(
        &mut store,
        &mut rng,
        "m",
        &[20, 32, 1],
        Activation::LeakyRelu(0.01),
        Activation::Identity,
    );
    c.bench_function("mlp_2000x20_forward_backward", |bench| {
        bench.iter(|| {
            let mut t = Tape::new();
            let x = t.constant(vec![2000, 20], vec![0.1; 2000 * 20]);
            let y = mlp.forward(&mut t, &store, x);
            let l = t.mean_all(y);
            let mut s2 = store.clone();
            t.backward(l, &mut s2);
            s2
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul, bench_attention_shape, bench_segment_ops, bench_mlp_fwd_bwd
}
criterion_main!(benches);
