//! Micro-benchmarks of the blocked matmul kernels over the shapes the TE
//! models *actually* execute.
//!
//! Instead of guessing dimensions, this suite records one forward tape per
//! scheme (HARP / DOTE / TEAL) on a GEANT-scale instance and walks it with
//! the `harp-tensor` introspection API (the same `Tape::nodes` walk the
//! `harp-verify` analyzer is built on), collecting every distinct
//! `MatMul` / `BatchMatMul` shape. Each shape is then benchmarked through
//! the forward kernel and both gradient kernels, serial vs. the global
//! worker pool, so `BENCH_kernels.json` and this suite stay in agreement
//! about what "the hot shapes" are.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harp_bench::zoo;
use harp_core::Instance;
use harp_paths::TunnelSet;
use harp_runtime::Runtime;
use harp_tensor::{kernels, Op, Tape};
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::BTreeSet;

/// Compile a GEANT instance (all nodes are edge nodes, 8 tunnels per flow)
/// with a seeded gravity TM — the mid-size row of the paper's fig11 sweep.
fn geant_instance() -> Instance {
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 8, 0.0);
    let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    cfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(7);
    let tm = gravity_series(&cfg, &mut rng, 1).remove(0);
    Instance::compile(&topo, &tunnels, &tm)
}

/// Record one forward tape per scheme and return every distinct matmul
/// shape `(m, k, n)` on them (batched matmuls contribute their per-batch
/// shape; the batch count is folded into `m`, matching the work done).
fn recorded_matmul_shapes(inst: &Instance) -> Vec<(usize, usize, usize)> {
    let mut shapes = BTreeSet::new();
    for scheme in [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ] {
        let (model, store) = zoo::build_model(scheme, inst, 3);
        let mut tape = Tape::new();
        let _ = model.forward(&mut tape, &store, inst);
        for node in tape.nodes() {
            match node.op {
                Op::MatMul(a, _) => {
                    let (m, k) = tape.shape(*a).as_matrix();
                    let (_, n) = node.shape.as_matrix();
                    shapes.insert((m, k, n));
                }
                Op::BatchMatMul(a, _) => {
                    let (b, m, k) = tape.shape(*a).as_batched();
                    let (_, _, n) = node.shape.as_batched();
                    shapes.insert((b * m, k, n));
                }
                _ => {}
            }
        }
    }
    // Largest shapes dominate training time; keep the top 6 by MAC count.
    let mut v: Vec<(usize, usize, usize)> = shapes.into_iter().collect();
    v.sort_by_key(|&(m, k, n)| std::cmp::Reverse(m * k * n));
    v.truncate(6);
    v
}

/// Deterministic pseudo-random matrix (xorshift; no RNG dependency).
fn test_matrix(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

fn bench_recorded_shapes(c: &mut Criterion) {
    let inst = geant_instance();
    let shapes = recorded_matmul_shapes(&inst);
    let global = Runtime::global();
    for &(m, k, n) in &shapes {
        let a = test_matrix(m * k, 11);
        let b = test_matrix(k * n, 12);
        c.bench_function(&format!("matmul_{m}x{k}x{n}_serial"), |bench| {
            bench.iter(|| kernels::matmul_with(Runtime::serial(), &a, &b, m, k, n))
        });
        c.bench_function(
            &format!("matmul_{m}x{k}x{n}_w{}", global.workers()),
            |bench| bench.iter(|| kernels::matmul_with(global, &a, &b, m, k, n)),
        );
        // Gradient kernels on the same shape: dW = x^T dy and dx = dy W^T.
        let dy = test_matrix(m * n, 13);
        c.bench_function(&format!("matmul_at_b_{m}x{k}x{n}"), |bench| {
            bench.iter(|| {
                let mut dw = vec![0.0f32; k * n];
                kernels::matmul_at_b(&a, &dy, m, k, n, &mut dw);
                black_box(dw)
            })
        });
        let w = test_matrix(k * n, 14);
        c.bench_function(&format!("matmul_a_bt_{m}x{n}x{k}"), |bench| {
            bench.iter(|| {
                let mut dx = vec![0.0f32; m * k];
                kernels::matmul_a_bt(&dy, &w, m, n, k, &mut dx);
                black_box(dx)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_recorded_shapes
}
criterion_main!(benches);
