//! Minimal CLI handling shared by every experiment binary.

use std::path::PathBuf;

/// Execution context for an experiment binary.
#[derive(Clone, Debug)]
pub struct Ctx {
    /// Reduced sizes for a fast run (the default); `--full` disables.
    pub quick: bool,
    /// Output directory for JSON results (`results/` by default).
    pub results_dir: PathBuf,
}

impl Ctx {
    /// Parse `--quick` (default) / `--full` / `--results <dir>` from argv.
    pub fn from_args() -> Ctx {
        let mut quick = true;
        let mut results_dir = PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--full" => quick = false,
                "--results" => {
                    results_dir =
                        PathBuf::from(args.next().expect("--results requires a directory"));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--quick|--full] [--results <dir>]\n\
                         --quick  reduced sizes (default)\n\
                         --full   paper-scale run (slow)\n"
                    );
                    // lint: allow(exit) — CLI --help path, nothing to unwind
                    std::process::exit(0);
                }
                other => {
                    harp_obs::warn_always(
                        "cli.unknown_arg",
                        &[("arg", other.into()), ("action", "ignored".into())],
                    );
                }
            }
        }
        std::fs::create_dir_all(&results_dir).expect("create results dir");
        std::fs::create_dir_all(results_dir.join("cache")).expect("create cache dir");
        std::fs::create_dir_all(results_dir.join("models")).expect("create models dir");
        let ctx = Ctx { quick, results_dir };
        harp_obs::event("bench.start")
            .field("mode", ctx.mode())
            .field_with("results_dir", || {
                ctx.results_dir.display().to_string().into()
            })
            .field("workers", harp_runtime::Runtime::global().workers())
            .emit();
        ctx
    }

    /// Suffix distinguishing quick/full artifacts.
    pub fn mode(&self) -> &'static str {
        if self.quick {
            "quick"
        } else {
            "full"
        }
    }

    /// Write a JSON result file (`results/<name>.<mode>.json`).
    pub fn write_json(&self, name: &str, value: &serde_json::Value) {
        let path = self
            .results_dir
            .join(format!("{name}.{}.json", self.mode()));
        let text = serde_json::to_string_pretty(value).expect("report JSON serializes");
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error: write {}: {e}", path.display());
            // lint: allow(exit) — bench tooling: unwritable results dir is fatal
            std::process::exit(1);
        }
        harp_obs::event("bench.results_written")
            .field("experiment", name.to_string())
            .field_with("path", || path.display().to_string().into())
            .emit();
        println!("[results -> {}]", path.display());
    }

    /// Path inside the cache directory, mode-qualified.
    pub fn cache_path(&self, name: &str) -> PathBuf {
        self.results_dir
            .join("cache")
            .join(format!("{name}.{}.json", self.mode()))
    }

    /// Path inside the models directory, mode-qualified.
    pub fn model_path(&self, name: &str) -> PathBuf {
        self.results_dir
            .join("models")
            .join(format!("{name}.{}.json", self.mode()))
    }
}
