//! Shared dataset setups and the oracle cache.
//!
//! Instances are compiled **per cluster** and dropped after use — a full
//! AnonNet run holds ~1000 snapshots and compiling them all at once would
//! hold gigabytes of attention masks.

use std::collections::HashMap;
use std::path::Path;

use harp_core::Instance;
use harp_datasets::{
    abilene, calibrate_demand_scale, geant, kdl_small, AnonNetConfig, AnonNetDataset,
};
use harp_opt::{MluOracle, PathProgram};
use harp_paths::TunnelSet;
use harp_topology::Topology;
use harp_traffic::{gravity_series, GravityConfig, TrafficMatrix};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use crate::cli::Ctx;

/// Build the AnonNet dataset for this run (deterministic; quick mode keeps
/// the default scale, full mode lengthens clusters).
pub fn anonnet(ctx: &Ctx) -> AnonNetDataset {
    AnonNetDataset::generate(&anonnet_cfg(ctx))
}

/// The AnonNet generator configuration the harnesses share (streaming
/// consumers build a `SnapshotStream` from it; batch consumers go through
/// [`anonnet`]).
pub fn anonnet_cfg(ctx: &Ctx) -> AnonNetConfig {
    if ctx.quick {
        AnonNetConfig::default()
    } else {
        AnonNetConfig {
            cluster_size_range: (12, 40),
            large_cluster_size: 120,
            ..AnonNetConfig::default()
        }
    }
}

/// Compile every snapshot of one AnonNet cluster into instances (aligned
/// with `clusters[cid].snapshots`).
pub fn compile_cluster(ds: &AnonNetDataset, cid: usize) -> Vec<Instance> {
    let cluster = &ds.clusters[cid];
    cluster
        .snapshots
        .iter()
        .map(|s| {
            let topo = cluster.topo_at(s);
            Instance::compile(&topo, &cluster.tunnels, &s.tm)
        })
        .collect()
}

/// A persistent map from snapshot keys to optimal MLUs.
pub struct OracleCache {
    map: HashMap<String, f64>,
    path: std::path::PathBuf,
    dirty: usize,
}

impl OracleCache {
    /// Open (or create) the cache at `path`.
    pub fn open(path: &Path) -> OracleCache {
        let map = std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default();
        OracleCache {
            map,
            path: path.to_path_buf(),
            dirty: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Optimal MLU for `key`, solving `program` on a miss (warm-started
    /// from `warm` when given). Returns `(mlu, splits_if_solved)` — splits
    /// are only available on a fresh solve, letting callers chain warm
    /// starts within a cluster.
    pub fn get_or_solve(
        &mut self,
        key: &str,
        program: &PathProgram,
        warm: Option<&[f64]>,
    ) -> (f64, Option<Vec<f64>>) {
        if let Some(&mlu) = self.map.get(key) {
            return (mlu, None);
        }
        let sol = MluOracle::default().solve_warm(program, warm);
        self.map.insert(key.to_string(), sol.mlu);
        self.dirty += 1;
        if self.dirty >= 50 {
            self.save();
        }
        (sol.mlu, Some(sol.splits))
    }

    /// Flush to disk.
    pub fn save(&mut self) {
        if let Some(parent) = self.path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let _ = std::fs::write(
            &self.path,
            serde_json::to_string(&self.map).expect("serialize cache"),
        );
        self.dirty = 0;
    }
}

impl Drop for OracleCache {
    fn drop(&mut self) {
        if self.dirty > 0 {
            self.save();
        }
    }
}

/// Optimal MLUs for every snapshot of a cluster, warm-starting solves from
/// the previous snapshot's optimum.
pub fn cluster_oracles(
    cache: &mut OracleCache,
    ds_name: &str,
    cid: usize,
    instances: &[Instance],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(instances.len());
    let mut warm: Option<Vec<f64>> = None;
    for (sid, inst) in instances.iter().enumerate() {
        let key = format!("{ds_name}/c{cid}/s{sid}");
        let (mlu, splits) = cache.get_or_solve(&key, &inst.program, warm.as_deref());
        if let Some(s) = splits {
            warm = Some(s);
        }
        out.push(mlu);
    }
    out
}

/// A failure/jitter-augmented copy of a snapshot instance, used to enrich
/// small training sets (documented substitution: the paper's real training
/// windows span thousands of snapshots with hundreds of capacity
/// configurations; our generated clusters are far shorter, so we synthesize
/// additional capacity configurations from the same distribution family —
/// full single-link failures and partial capacity reductions).
///
/// Returns `None` when no link can fail without stranding some flow.
pub fn augmented_instance(
    cluster: &harp_datasets::Cluster,
    snapshot: &harp_datasets::Snapshot,
    rng: &mut StdRng,
    zero_cap: f64,
) -> Option<Instance> {
    use rand::Rng;
    let mut topo = cluster.topo_at(snapshot);
    if rng.gen_bool(0.5) {
        // full failure of a link every flow can survive
        let per_edge = cluster.tunnels.tunnels_per_edge(&topo);
        let links = topo.links();
        let candidates: Vec<(usize, usize)> = links
            .iter()
            .filter(|&&(_, _, f, r)| {
                // every flow must keep >= 1 tunnel avoiding both directions
                let mut blocked = vec![0usize; cluster.tunnels.num_flows()];
                let mut counts = vec![0usize; cluster.tunnels.num_flows()];
                for (fl, _, path) in cluster.tunnels.iter_flat() {
                    counts[fl] += 1;
                    if path.0.contains(&f) || path.0.contains(&r) {
                        blocked[fl] += 1;
                    }
                }
                let _ = &per_edge;
                blocked.iter().zip(&counts).all(|(b, c)| b < c)
            })
            .map(|&(_, _, f, r)| (f, r))
            .collect();
        let &(f, r) = candidates.choose(rng)?;
        topo.set_capacity(f, zero_cap).ok()?;
        topo.set_capacity(r, zero_cap).ok()?;
    } else {
        // partial capacity reduction on 1-3 random links
        let links = topo.links();
        for _ in 0..rng.gen_range(1..=3) {
            let &(_, _, f, r) = links.choose(rng)?;
            let factor = rng.gen_range(0.3..0.9);
            let c = topo.capacity(f);
            topo.set_capacity(f, c * factor).ok()?;
            let c = topo.capacity(r);
            topo.set_capacity(r, c * factor).ok()?;
        }
    }
    Some(Instance::compile(&topo, &cluster.tunnels, &snapshot.tm))
}

/// A topology-variant augmentation: remove one random link (keeping the
/// edge nodes strongly connected), recompute the tunnel set, and compile
/// the given snapshot's TM on it. This multiplies the number of distinct
/// *topologies* (not just capacity configurations) seen in training, the
/// axis HARP must generalize over.
pub fn topology_variant(
    cluster: &harp_datasets::Cluster,
    snapshot: &harp_datasets::Snapshot,
    tunnels_per_flow: usize,
    rng: &mut StdRng,
) -> Option<(Topology, TunnelSet)> {
    let topo = cluster.topo_at(snapshot);
    let links = topo.links();
    let mut order: Vec<usize> = (0..links.len()).collect();
    order.shuffle(rng);
    for li in order {
        let (_, _, f, r) = links[li];
        let keep: Vec<bool> = (0..topo.num_edges()).map(|e| e != f && e != r).collect();
        let mut t2 = Topology::new(topo.num_nodes());
        for (e, edge) in topo.edges().iter().enumerate() {
            if keep[e] {
                t2.add_edge(edge.src, edge.dst, edge.capacity).ok()?;
            }
        }
        // all edge nodes must still reach each other
        let tun = TunnelSet::k_shortest(&t2, &cluster.edge_nodes, tunnels_per_flow, 0.0);
        if tun.num_flows() == cluster.tunnels.num_flows() {
            return Some((t2, tun));
        }
    }
    None
}

/// A fixed-topology setup: one topology, one tunnel set, a calibrated TM
/// series split into train/validation/test.
pub struct StaticSetup {
    /// Human-readable dataset name (also the cache prefix).
    pub name: &'static str,
    /// The topology.
    pub topo: Topology,
    /// Tunnels (k-shortest paths over the configured edge nodes).
    pub tunnels: TunnelSet,
    /// Calibrated traffic matrices.
    pub tms: Vec<TrafficMatrix>,
    /// Index ranges: `0..train_end` train, `train_end..val_end` validation,
    /// `val_end..` test.
    pub train_end: usize,
    /// End of the validation range.
    pub val_end: usize,
}

impl StaticSetup {
    fn build(
        name: &'static str,
        topo: Topology,
        edge_nodes: Vec<usize>,
        k_paths: usize,
        n_tms: usize,
        seed: u64,
        train_frac: f64,
        target_mlu: f64,
    ) -> StaticSetup {
        let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, k_paths, 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
        cfg.edge_nodes = edge_nodes;
        // gravity masses ~ sqrt(attached capacity): big PoPs source big
        // traffic so stub access links don't trivially dominate the MLU
        // (which would leave the TE problem without routing freedom), while
        // the sqrt keeps the demand tail mild enough to learn from
        cfg.base_weights = Some(
            harp_topology::total_node_capacity(&topo)
                .into_iter()
                .map(f64::sqrt)
                .collect(),
        );
        cfg.weight_sigma = 0.4;
        let tms = gravity_series(&cfg, &mut rng, n_tms);
        let pilot = tms.len().min(12);
        let scale = calibrate_demand_scale(&topo, &tunnels, &tms[..pilot], target_mlu);
        let tms: Vec<TrafficMatrix> = tms.iter().map(|t| t.scaled(scale)).collect();
        let train_end = ((n_tms as f64) * train_frac) as usize;
        let val_end = train_end + (n_tms - train_end) / 2;
        StaticSetup {
            name,
            topo,
            tunnels,
            tms,
            train_end,
            val_end,
        }
    }

    /// Compile instance `i` (TM `i` on the base topology).
    pub fn instance(&self, i: usize) -> Instance {
        Instance::compile(&self.topo, &self.tunnels, &self.tms[i])
    }

    /// Compile instance `i` on a perturbed topology (tunnels unchanged, as
    /// in the paper's failure drills where tunnels are *not* recomputed).
    pub fn instance_on(&self, topo: &Topology, i: usize) -> Instance {
        Instance::compile(topo, &self.tunnels, &self.tms[i])
    }

    /// Compile instance `i` with an alternative tunnel set (e.g. shuffled).
    pub fn instance_with_tunnels(&self, tunnels: &TunnelSet, i: usize) -> Instance {
        Instance::compile(&self.topo, tunnels, &self.tms[i])
    }

    /// Test-range indices, optionally subsampled to at most `max`.
    pub fn test_indices(&self, max: usize) -> Vec<usize> {
        let all: Vec<usize> = (self.val_end..self.tms.len()).collect();
        if all.len() <= max {
            all
        } else {
            let stride = all.len() as f64 / max as f64;
            (0..max)
                .map(|i| all[(i as f64 * stride) as usize])
                .collect()
        }
    }
}

/// GEANT with 8 shortest paths per flow, all nodes as edge nodes (§5.5:
/// two weeks of matrices; quick mode shrinks the series).
pub fn geant_setup(ctx: &Ctx) -> StaticSetup {
    let topo = geant();
    let n = topo.num_nodes();
    let count = if ctx.quick { 64 } else { 192 };
    StaticSetup::build("geant", topo, (0..n).collect(), 8, count, 41, 0.75, 0.7)
}

/// Abilene with 8 shortest paths per flow (§5.5: eight weeks of matrices).
pub fn abilene_setup(ctx: &Ctx) -> StaticSetup {
    let topo = abilene();
    let n = topo.num_nodes();
    let count = if ctx.quick { 64 } else { 256 };
    StaticSetup::build("abilene", topo, (0..n).collect(), 8, count, 42, 0.75, 0.7)
}

/// KDL-small with 4 shortest paths (the paper's KDL protocol: 278 matrices,
/// 170 train / 30 validation / 78 test; quick mode scales down). Edge nodes
/// are a seeded 24-node subset (documented substitution — full-mesh flows
/// on a 96-node graph would not fit CPU training).
pub fn kdl_setup(ctx: &Ctx) -> StaticSetup {
    let topo = kdl_small();
    let mut rng = StdRng::seed_from_u64(77);
    // edge nodes must have routing freedom: require degree >= 3
    let deg = harp_topology::degrees(&topo);
    let mut nodes: Vec<usize> = (0..topo.num_nodes()).filter(|&u| deg[u] >= 3).collect();
    nodes.shuffle(&mut rng);
    let edge_nodes: Vec<usize> = {
        let mut e = nodes[..24].to_vec();
        e.sort_unstable();
        e
    };
    let count = if ctx.quick { 72 } else { 278 };
    StaticSetup::build("kdl", topo, edge_nodes, 4, count, 43, 170.0 / 278.0, 0.7)
}

/// Optimal MLUs for a list of instances of a static setup (cached, warm
/// chained in index order).
pub fn static_oracles(
    cache: &mut OracleCache,
    setup_name: &str,
    tag: &str,
    instances: &[(usize, &Instance)],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(instances.len());
    let mut warm: Option<Vec<f64>> = None;
    for (i, inst) in instances {
        let key = format!("{setup_name}/{tag}/{i}");
        let (mlu, splits) = cache.get_or_solve(&key, &inst.program, warm.as_deref());
        if let Some(s) = splits {
            warm = Some(s);
        }
        out.push(mlu);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_datasets::AnonNetDataset;

    fn tiny_ds() -> AnonNetDataset {
        AnonNetDataset::generate(&AnonNetConfig::tiny())
    }

    #[test]
    fn oracle_cache_roundtrip_and_hit() {
        let dir = std::env::temp_dir().join("harp_bench_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.json");
        let ds = tiny_ds();
        let instances = compile_cluster(&ds, 0);
        {
            let mut cache = OracleCache::open(&path);
            assert!(cache.is_empty());
            let (mlu, splits) = cache.get_or_solve("k", &instances[0].program, None);
            assert!(mlu.is_finite() && splits.is_some());
            cache.save();
        }
        let mut cache2 = OracleCache::open(&path);
        assert_eq!(cache2.len(), 1);
        // hit: no splits returned, same value
        let (mlu2, splits2) = cache2.get_or_solve("k", &instances[0].program, None);
        assert!(splits2.is_none());
        assert!(mlu2.is_finite());
    }

    #[test]
    fn augmented_instance_changes_capacities_only() {
        let ds = tiny_ds();
        let cluster = &ds.clusters[0];
        let snap = &cluster.snapshots[0];
        let mut rng = StdRng::seed_from_u64(1);
        let inst = augmented_instance(cluster, snap, &mut rng, ds.cfg.zero_cap)
            .expect("augmentation possible");
        assert_eq!(inst.num_tunnels, cluster.tunnels.num_tunnels());
        // demands unchanged
        let base = compile_cluster(&ds, 0).remove(0);
        assert_eq!(inst.flow_demands.len(), base.flow_demands.len());
    }

    #[test]
    fn topology_variant_preserves_flows() {
        let ds = tiny_ds();
        let cluster = &ds.clusters[0];
        let mut rng = StdRng::seed_from_u64(2);
        if let Some((topo, tun)) = topology_variant(
            cluster,
            &cluster.snapshots[0],
            ds.cfg.tunnels_per_flow,
            &mut rng,
        ) {
            assert_eq!(tun.num_flows(), cluster.tunnels.num_flows());
            assert_eq!(topo.num_edges(), cluster.topo.num_edges() - 2);
        }
    }

    #[test]
    fn static_setup_indices_are_consistent() {
        let ctx = Ctx {
            quick: true,
            results_dir: std::env::temp_dir().join("harp_bench_setup_test"),
        };
        std::fs::create_dir_all(&ctx.results_dir).unwrap();
        let setup = abilene_setup(&ctx);
        assert!(setup.train_end < setup.val_end);
        assert!(setup.val_end < setup.tms.len());
        let test = setup.test_indices(5);
        assert!(test.len() <= 5);
        assert!(test.iter().all(|&i| i >= setup.val_end));
        let inst = setup.instance(0);
        assert!(inst.num_tunnels > 0);
    }
}
