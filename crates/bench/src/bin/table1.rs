//! Table 1: design-element comparison of HARP, DOTE and TEAL.
//!
//! Unlike the paper (which argues these properties analytically), this
//! binary *measures* them: each scheme is run on a snapshot and on the same
//! snapshot with (a) relabeled nodes and (b) reordered tunnels, and we
//! check whether the outputs map through the permutation. "Models topology"
//! is probed by perturbing a link capacity and checking whether any split
//! changes. "Aligned architecture" reports whether the scheme contains an
//! iterative solver-like refinement loop (HARP's RAU).

use harp_bench::{cli::Ctx, report, zoo};
use harp_core::{Instance, SplitModel};
use harp_paths::TunnelSet;
use harp_tensor::{ParamStore, Tape};
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use rand::{rngs::StdRng, SeedableRng};

fn topo() -> Topology {
    let mut t = Topology::new(5);
    t.add_link(0, 1, 10.0).unwrap();
    t.add_link(1, 2, 10.0).unwrap();
    t.add_link(2, 3, 20.0).unwrap();
    t.add_link(3, 4, 20.0).unwrap();
    t.add_link(4, 0, 15.0).unwrap();
    t.add_link(1, 3, 15.0).unwrap();
    t
}

fn tm() -> TrafficMatrix {
    let mut m = TrafficMatrix::zeros(5);
    m.set_demand(0, 2, 4.0);
    m.set_demand(2, 0, 2.0);
    m.set_demand(0, 3, 3.0);
    m.set_demand(3, 0, 5.0);
    m
}

fn splits_of(model: &dyn SplitModel, store: &ParamStore, inst: &Instance) -> Vec<f32> {
    let mut tape = Tape::new();
    let s = model.forward(&mut tape, store, inst);
    tape.value(s).to_vec()
}

/// Does the scheme produce permutation-consistent outputs under node
/// relabeling?
fn node_relabel_invariant(model: &dyn SplitModel, store: &ParamStore, strict: bool) -> bool {
    let t = topo();
    let perm = vec![3usize, 0, 4, 1, 2];
    let pt = t.permute_nodes(&perm).unwrap();
    let edge_nodes = vec![0usize, 2, 3];
    let tun = TunnelSet::k_shortest(&t, &edge_nodes, 3, 0.0);
    // the *same* tunnels under new node ids (flows re-sorted by new ids,
    // within-flow order preserved) — the paper's relabeling semantics
    let ptun = tun.relabeled(&t, &pt, &perm);
    let m = tm();
    let pm = m.permute(&perm);
    let inst = Instance::compile(&t, &tun, &m);
    let pinst = Instance::compile(&pt, &ptun, &pm);
    if strict && (inst.num_tunnels != pinst.num_tunnels) {
        return false;
    }
    let a = splits_of(model, store, &inst);
    let b = splits_of(model, store, &pinst);
    // match tunnels by node sequence
    let sa = tun.node_sequences(&t);
    let sb = ptun.node_sequences(&pt);
    for (i, seq) in sa.iter().enumerate() {
        let mapped: Vec<usize> = seq.iter().map(|&u| perm[u]).collect();
        match sb.iter().position(|s| *s == mapped) {
            Some(j) => {
                if (a[i] - b[j]).abs() > 1e-4 {
                    return false;
                }
            }
            None => return false,
        }
    }
    true
}

/// Does the scheme produce consistent outputs when tunnels are reordered?
fn tunnel_reorder_invariant(model: &dyn SplitModel, store: &ParamStore) -> bool {
    let t = topo();
    let edge_nodes = vec![0usize, 2, 3];
    let tun = TunnelSet::k_shortest(&t, &edge_nodes, 3, 0.0);
    let mut rng = StdRng::seed_from_u64(9);
    let shuf = tun.shuffled(&mut rng);
    let m = tm();
    let inst = Instance::compile(&t, &tun, &m);
    let sinst = Instance::compile(&t, &shuf, &m);
    let a = splits_of(model, store, &inst);
    let b = splits_of(model, store, &sinst);
    let sa = tun.node_sequences(&t);
    let sb = shuf.node_sequences(&t);
    for (i, seq) in sa.iter().enumerate() {
        let j = sb.iter().position(|s| s == seq).unwrap();
        if (a[i] - b[j]).abs() > 1e-4 {
            return false;
        }
    }
    true
}

/// Does a capacity change reach the output at all?
fn models_topology(model: &dyn SplitModel, store: &ParamStore) -> bool {
    let t = topo();
    let edge_nodes = vec![0usize, 2, 3];
    let tun = TunnelSet::k_shortest(&t, &edge_nodes, 3, 0.0);
    let m = tm();
    let inst = Instance::compile(&t, &tun, &m);
    let mut t2 = t.clone();
    // halve one link's capacity both ways
    let (_, _, f, r) = t2.links()[1];
    let c = t2.capacity(f);
    t2.set_capacity(f, c / 2.0).unwrap();
    t2.set_capacity(r, c / 2.0).unwrap();
    let inst2 = Instance::compile(&t2, &tun, &m);
    let a = splits_of(model, store, &inst);
    let b = splits_of(model, store, &inst2);
    a.iter().zip(&b).any(|(x, y)| (x - y).abs() > 1e-6)
}

fn main() {
    let ctx = Ctx::from_args();
    report::section("Table 1: design elements (measured, not asserted)");

    // generic (untrained) parameters expose the architectural properties
    let t = topo();
    let edge_nodes = vec![0usize, 2, 3];
    let tun = TunnelSet::k_shortest(&t, &edge_nodes, 3, 0.0);
    let sample = Instance::compile(&t, &tun, &tm());

    let schemes = [
        (zoo::Scheme::Dote, false),
        (
            zoo::Scheme::Teal {
                tunnels_per_flow: 3,
            },
            false,
        ),
        (zoo::Scheme::Harp { rau_iters: 5 }, true),
    ];

    println!(
        "\n  {:<8} {:<16} {:<18} {:<18} {:<12}",
        "Scheme", "Models topology", "Node-relabel inv.", "Tunnel-order inv.", "Aligned arch"
    );
    let mut rows = Vec::new();
    for (scheme, aligned) in schemes {
        let (model, store) = zoo::build_model(scheme, &sample, 5);
        // DOTE cannot even ingest a different layout; relabeling keeps the
        // layout here, so the check runs, but positional inputs break it.
        let mt = models_topology(&*model, &store);
        let nri = node_relabel_invariant(&*model, &store, false);
        let toi = tunnel_reorder_invariant(&*model, &store);
        let tick = |b: bool| if b { "yes" } else { "NO" };
        println!(
            "  {:<8} {:<16} {:<18} {:<18} {:<12}",
            model.name(),
            tick(mt),
            tick(nri),
            tick(toi),
            tick(aligned)
        );
        rows.push(serde_json::json!({
            "scheme": model.name(),
            "models_topology": mt,
            "node_relabel_invariant": nri,
            "tunnel_order_invariant": toi,
            "aligned_architecture": aligned,
        }));
    }
    println!("\n  paper's Table 1: DOTE no/no/no/no, TEAL yes/yes/no/no, HARP yes/yes/yes/yes");
    ctx.write_json("table1", &serde_json::json!({ "rows": rows }));
}
