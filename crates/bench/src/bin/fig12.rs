//! Figure 12: HARP-Pred vs Gurobi-Pred (our LP oracle on the predicted
//! matrix) under three TM predictors — MovAvg(12), ExpSmooth(0.5),
//! LinReg(12). Split ratios are produced from the *predicted* matrix; the
//! reported NormMLU is measured on the *true* matrix, normalized by the
//! true matrix's optimal MLU (§5.7).

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{mlu_loss, norm_mlu, Instance};
use harp_nn::{clip_grad_norm, Adam, AdamConfig};
use harp_opt::MluOracle;
use harp_tensor::Tape;
use harp_traffic::predict::{ExpSmooth, LinReg, MovAvg, Predictor};
use harp_traffic::TrafficMatrix;

/// (predicted-TM instance, true-TM instance, true optimal MLU)
type PredPair = (Instance, Instance, f64);

fn build_pairs(
    ds: &harp_datasets::AnonNetDataset,
    cache: &mut data::OracleCache,
    predictor: &dyn Predictor,
    cids: std::ops::Range<usize>,
    cap: usize,
) -> Vec<PredPair> {
    let mut out = Vec::new();
    for cid in cids {
        let cluster = &ds.clusters[cid];
        let true_opts = {
            let instances = data::compile_cluster(ds, cid);
            data::cluster_oracles(cache, "anonnet", cid, &instances)
        };
        let tms: Vec<TrafficMatrix> = cluster.snapshots.iter().map(|s| s.tm.clone()).collect();
        let n = cluster.snapshots.len();
        let stride = ((n.saturating_sub(1)) / cap.min(n.max(1))).max(1);
        for sid in (1..n).step_by(stride) {
            let hist_start = sid.saturating_sub(12);
            let pred_tm = predictor.predict(&tms[hist_start..sid]);
            let topo = cluster.topo_at(&cluster.snapshots[sid]);
            let inst_pred = Instance::compile(&topo, &cluster.tunnels, &pred_tm);
            let inst_true = Instance::compile(&topo, &cluster.tunnels, &tms[sid]);
            out.push((inst_pred, inst_true, true_opts[sid]));
        }
    }
    cache.save();
    out
}

/// Train HARP on predicted inputs with the loss computed on true demands.
fn train_harp_pred(ctx: &Ctx, name: &str, train: &[PredPair], val: &[PredPair]) -> zoo::ZooModel {
    let (model, mut store) =
        zoo::build_model(zoo::Scheme::Harp { rau_iters: 7 }, &train[0].0, 4242);
    let path = ctx.model_path(name);
    if path.exists() && harp_nn::load_params(&mut store, &path).is_ok() {
        println!("[zoo] loaded {name}");
        return zoo::ZooModel {
            model,
            store,
            report: None,
        };
    }
    let cfg = zoo::train_config(ctx);
    let mut opt = Adam::new(&store, AdamConfig::with_lr(cfg.lr));
    let mut best = f64::INFINITY;
    let mut best_params = store.snapshot();
    let t0 = std::time::Instant::now();
    for epoch in 0..cfg.epochs {
        for chunk in train.chunks(cfg.batch_size) {
            store.zero_grads();
            for (inst_pred, inst_true, opt_mlu) in chunk {
                let mut tape = Tape::new();
                let splits = model.forward(&mut tape, &store, inst_pred);
                // the loss sees the TRUE demands
                let mlu = mlu_loss(&mut tape, splits, inst_true);
                let norm = if *opt_mlu > 0.0 { 1.0 / *opt_mlu } else { 1.0 } as f32;
                let loss = tape.mul_scalar(mlu, norm / chunk.len() as f32);
                tape.backward(loss, &mut store);
            }
            clip_grad_norm(&mut store, cfg.clip_norm)
                .expect("fig12: non-finite gradient norm in custom DOTE loop");
            opt.step_and_zero(&mut store);
        }
        let score: f64 = val
            .iter()
            .map(|(ip, it, o)| {
                let mut tape = Tape::new();
                let s = model.forward(&mut tape, &store, ip);
                let splits: Vec<f64> = tape.value(s).iter().map(|&x| x as f64).collect();
                norm_mlu(it.program.mlu(&it.program.normalize_splits(&splits)), *o)
            })
            .sum::<f64>()
            / val.len().max(1) as f64;
        if score < best {
            best = score;
            best_params = store.snapshot();
        }
        println!("[harp-pred] epoch {epoch}: val NormMLU {score:.4}");
    }
    store.restore(&best_params);
    println!(
        "[harp-pred] trained {name}: best {best:.4} in {:.0?}",
        t0.elapsed()
    );
    harp_nn::save_params(&store, &path).expect("save");
    zoo::ZooModel {
        model,
        store,
        report: None,
    }
}

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 12: HARP-Pred vs Gurobi-Pred (LP on predicted TMs)");
    let ds = data::anonnet(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("anonnet_opt"));
    let cap = if ctx.quick { 12 } else { 40 };
    let test_cap = if ctx.quick { 5 } else { usize::MAX };
    let test_range = if ctx.quick {
        6..30
    } else {
        6..ds.clusters.len()
    };

    let predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(MovAvg { window: 12 }),
        Box::new(ExpSmooth { alpha: 0.5 }),
        Box::new(LinReg { window: 12 }),
    ];

    let mut json = serde_json::Map::new();
    for predictor in &predictors {
        let pname = predictor.name();
        report::section(&format!("predictor: {pname}"));
        // train on clusters 1-3 (cluster 0 reserved, as the paper reserves
        // it for fitting LinReg), validate on 4-5, test on the rest
        let train = build_pairs(&ds, &mut cache, &**predictor, 1..4, cap);
        let val = build_pairs(&ds, &mut cache, &**predictor, 4..6, cap / 2);
        let zm = train_harp_pred(
            &ctx,
            &format!("anonnet-harp-pred-{}", pname.to_lowercase()),
            &train,
            &val,
        );

        let mut harp_nms = Vec::new();
        let mut lp_nms = Vec::new();
        for cid in test_range.clone() {
            let pairs = build_pairs(&ds, &mut cache, &**predictor, cid..cid + 1, test_cap);
            let mut warm: Option<Vec<f64>> = None;
            for (inst_pred, inst_true, opt_mlu) in &pairs {
                // HARP-Pred
                let mut tape = Tape::new();
                let s = zm.model.forward(&mut tape, &zm.store, inst_pred);
                let splits: Vec<f64> = tape.value(s).iter().map(|&x| x as f64).collect();
                let mlu = inst_true
                    .program
                    .mlu(&inst_true.program.normalize_splits(&splits));
                harp_nms.push(norm_mlu(mlu, *opt_mlu));
                // Gurobi-Pred: optimal for the predicted matrix, applied to
                // the true matrix
                let sol = MluOracle::default().solve_warm(&inst_pred.program, warm.as_deref());
                lp_nms.push(norm_mlu(inst_true.program.mlu(&sol.splits), *opt_mlu));
                warm = Some(sol.splits);
            }
        }
        report::normmlu_summary("HARP-Pred", &harp_nms);
        report::normmlu_summary("Gurobi-Pred", &lp_nms);
        json.insert(
            pname.to_string(),
            serde_json::json!({
                "harp_pred": { "cdf": report::cdf_json(&harp_nms, 150),
                                "stats": report::stats_json(&harp_nms) },
                "lp_pred": { "cdf": report::cdf_json(&lp_nms, 150),
                              "stats": report::stats_json(&lp_nms) },
            }),
        );
    }
    cache.save();

    println!(
        "\n  paper: LinReg — HARP-Pred median 1.02 / p90 1.07 vs Gurobi-Pred 1.08 / 1.17;\n  \
         MovAvg — HARP-Pred median 1.05 vs Gurobi-Pred 1.16 (5-10% median reduction)"
    );
    ctx.write_json("fig12", &serde_json::Value::Object(json));
}
