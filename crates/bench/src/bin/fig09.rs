//! Figure 9: GEANT single-link failure drill — per-failure-scenario
//! NormMLU boxplots for HARP, DOTE, and TEAL (trained without failures,
//! tested on every complete single-link failure).

use harp_bench::{cli::Ctx, data, drill, report, zoo};

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 9: GEANT single-link failures");
    let setup = data::geant_setup(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("geant_opt"));
    let schemes = [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ];
    let models = drill::drill_models(&ctx, &setup, &mut cache, &schemes);
    let result = drill::run_drill(&ctx, &setup, &mut cache, &schemes, &models);

    let mut json_links = Vec::new();
    for (mi, name) in result.scheme_names.iter().enumerate() {
        report::section(&format!("{name} per-failure boxplots"));
        for (label, per_scheme) in &result.per_link {
            report::boxplot_row(label, &per_scheme[mi]);
        }
        let pooled = result.pooled(mi);
        report::normmlu_summary(&format!("{name} pooled"), &pooled);
    }
    for (label, per_scheme) in &result.per_link {
        json_links.push(serde_json::json!({
            "link": label,
            "schemes": result.scheme_names.iter().zip(per_scheme).map(|(n, v)| {
                serde_json::json!({ "scheme": n, "stats": report::stats_json(v) })
            }).collect::<Vec<_>>(),
        }));
    }
    println!(
        "\n  paper: HARP median 1.00-1.02, max 1.00-1.17 per scenario;\n  \
         DOTE median up to 1.48, worst 2.13; TEAL worse still (99.9th pct:\n  \
         HARP <= 1.09 vs DOTE 63% and TEAL 50% within 1.10)"
    );
    ctx.write_json("fig09", &serde_json::json!({ "links": json_links }));
}
