//! Figure 16 (appendix): transferability vs amount of training diversity —
//! HARP trained on cluster A, B, or C alone vs on all three (train_ABC,
//! shared with Fig 4), all tested on the same cross-cluster test set.

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{evaluate_model, norm_mlu, Instance};
use rand::SeedableRng;

fn train_set_for(
    ds: &harp_datasets::AnonNetDataset,
    cache: &mut data::OracleCache,
    cids: &[usize],
    cap: usize,
) -> Vec<(Instance, f64)> {
    let mut out = Vec::new();
    for &cid in cids {
        let instances = data::compile_cluster(ds, cid);
        let opts = data::cluster_oracles(cache, "anonnet", cid, &instances);
        let stride = (instances.len() / cap.min(instances.len())).max(1);
        for (inst, opt) in instances.into_iter().zip(opts).step_by(stride) {
            out.push((inst, opt));
        }
        // the same augmentation recipe as fig04 so models are comparable
        let cluster = &ds.clusters[cid];
        let mut arng = rand::rngs::StdRng::seed_from_u64(900 + cid as u64);
        for (sid, snap) in cluster.snapshots.iter().enumerate().step_by(stride * 2) {
            if let Some(inst) = data::augmented_instance(cluster, snap, &mut arng, ds.cfg.zero_cap)
            {
                let key = format!("anonnet/aug{cid}/s{sid}");
                let (opt, _) = cache.get_or_solve(&key, &inst.program, None);
                out.push((inst, opt));
            }
        }
        for v in 0..3u64 {
            let mut vrng = rand::rngs::StdRng::seed_from_u64(700 + cid as u64 * 10 + v);
            if let Some((vtopo, vtun)) = data::topology_variant(
                cluster,
                &cluster.snapshots[0],
                ds.cfg.tunnels_per_flow,
                &mut vrng,
            ) {
                for (sid, snap) in cluster.snapshots.iter().enumerate().step_by(stride * 3) {
                    let inst = Instance::compile(&vtopo, &vtun, &snap.tm);
                    let key = format!("anonnet/var{cid}.{v}/s{sid}");
                    let (opt, _) = cache.get_or_solve(&key, &inst.program, None);
                    out.push((inst, opt));
                }
            }
        }
    }
    cache.save();
    out
}

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 16: training on one cluster vs three");
    let ds = data::anonnet(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("anonnet_opt"));
    let cap = if ctx.quick { 24 } else { 60 };

    // validation set: clusters 3-5 (as in fig04)
    let mut val_store: Vec<(Instance, f64)> = Vec::new();
    for cid in 3..6 {
        let instances = data::compile_cluster(&ds, cid);
        let opts = data::cluster_oracles(&mut cache, "anonnet", cid, &instances);
        let stride = (instances.len() / cap.min(instances.len())).max(1);
        for (inst, opt) in instances.into_iter().zip(opts).step_by(stride) {
            val_store.push((inst, opt));
        }
    }
    let val: Vec<(&Instance, f64)> = val_store.iter().map(|(i, o)| (i, *o)).collect();

    let variants: Vec<(&str, Vec<usize>)> = vec![
        ("train_A", vec![0]),
        ("train_B", vec![1]),
        ("train_C", vec![2]),
        ("train_ABC", vec![0, 1, 2]),
    ];

    let mut models = Vec::new();
    for (name, cids) in &variants {
        let model_name = if *name == "train_ABC" {
            // shared with fig04
            "anonnet-harp-abc".to_string()
        } else {
            format!("anonnet-harp-{}", name.to_lowercase())
        };
        let train_store = train_set_for(&ds, &mut cache, cids, cap);
        let train: Vec<(&Instance, f64)> = train_store.iter().map(|(i, o)| (i, *o)).collect();
        let zm = zoo::train_or_load(
            &ctx,
            &model_name,
            zoo::Scheme::Harp { rau_iters: 7 },
            &train,
            &val,
            zoo::train_config(&ctx),
        );
        models.push((*name, zm));
    }

    // shared test sweep over clusters 6..
    let per_test_cap = if ctx.quick { 6 } else { usize::MAX };
    let mut norm: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    for cid in 6..ds.clusters.len() {
        let instances = data::compile_cluster(&ds, cid);
        let opts = data::cluster_oracles(&mut cache, "anonnet", cid, &instances);
        let stride = (instances.len() / per_test_cap.min(instances.len())).max(1);
        for (inst, opt) in instances.iter().zip(&opts).step_by(stride) {
            for (mi, (_, zm)) in models.iter().enumerate() {
                let (mlu, _) = evaluate_model(
                    zm.as_model(),
                    &zm.store,
                    inst,
                    harp_core::EvalOptions::default(),
                );
                norm[mi].push(norm_mlu(mlu, *opt));
            }
        }
    }
    cache.save();

    report::section("Figure 16 result");
    let mut json = serde_json::Map::new();
    for ((name, _), nms) in models.iter().zip(&norm) {
        report::normmlu_summary(name, nms);
        json.insert(
            name.to_string(),
            serde_json::json!({
                "cdf": report::cdf_json(nms, 150),
                "stats": report::stats_json(nms),
            }),
        );
    }
    println!(
        "\n  paper: train_ABC 95th pct 1.058 vs worst single-cluster 1.12;\n  \
         train_ABC max 1.86 vs train_A max 2.33"
    );
    ctx.write_json("fig16", &serde_json::Value::Object(json));
}
