//! Figure 1: variation in node and link counts over the AnonNet dataset
//! (total vs active vs edge nodes; total vs active links), normalized by
//! the maximum across snapshots. Consumes the pull-based
//! [`harp_datasets::SnapshotStream`] directly — the same code path the
//! lifecycle engine replays — rather than materializing the dataset.

use harp_bench::{cli::Ctx, data, report};
use harp_datasets::SnapshotStream;

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 1: AnonNet topology variation over time");

    let mut series = Vec::new();
    let mut num_clusters = 0usize;
    for item in SnapshotStream::new(&data::anonnet_cfg(&ctx)) {
        if item.delta.new_cluster {
            num_clusters += 1;
        }
        let s = &item.snapshot;
        series.push((
            s.time,
            s.meta.total_nodes,
            s.meta.active_nodes,
            s.meta.edge_node_count,
            s.meta.total_links,
            s.meta.active_links,
        ));
    }
    let max_nodes = series.iter().map(|r| r.1).max().unwrap() as f64;
    let max_links = series.iter().map(|r| r.4).max().unwrap() as f64;

    println!(
        "snapshots: {}   clusters: {}   max total nodes: {}   max total links: {}",
        series.len(),
        num_clusters,
        max_nodes,
        max_links
    );

    // Paper's qualitative claims to check (§2.2, Fig 1):
    let first = series.first().unwrap();
    let last = series.last().unwrap();
    let grew = last.1 > first.1 || last.4 > first.4;
    let active_below_total =
        series.iter().filter(|r| r.2 < r.1 || r.5 < r.4).count() as f64 / series.len() as f64;
    let edge_variation = {
        let mut vals: Vec<usize> = series.iter().map(|r| r.3).collect();
        vals.sort_unstable();
        vals.dedup();
        vals.len()
    };
    report::kv_table(&[
        ("organic growth (start -> end)", format!("{}", grew)),
        (
            "fraction of snapshots with active < total",
            format!("{:.1}%", 100.0 * active_below_total),
        ),
        (
            "distinct edge-node-set sizes",
            format!("{}", edge_variation),
        ),
        ("nodes start -> end", format!("{} -> {}", first.1, last.1)),
        ("links start -> end", format!("{} -> {}", first.4, last.4)),
    ]);

    // print a coarse time series like the figure's lines
    println!("\n  time   totN  actN  edgeN  totL  actL   (normalized to max)");
    let stride = (series.len() / 24).max(1);
    for r in series.iter().step_by(stride) {
        println!(
            "  t={:<5} {:.2}  {:.2}  {:.2}   {:.2}  {:.2}",
            r.0,
            r.1 as f64 / max_nodes,
            r.2 as f64 / max_nodes,
            r.3 as f64 / max_nodes,
            r.4 as f64 / max_links,
            r.5 as f64 / max_links
        );
    }

    let json = serde_json::json!({
        "series": series.iter().map(|r| serde_json::json!({
            "t": r.0, "total_nodes": r.1, "active_nodes": r.2,
            "edge_nodes": r.3, "total_links": r.4, "active_links": r.5,
        })).collect::<Vec<_>>(),
        "checks": {
            "organic_growth": grew,
            "frac_active_below_total": active_below_total,
            "distinct_edge_node_counts": edge_variation,
        }
    });
    ctx.write_json("fig01", &json);
}
