//! Extension experiment (paper §7 future work): robustness to *demand
//! distribution* changes. The Fig 4 HARP model (trained on clusters 0-2
//! with their gravity demands) is evaluated on unseen clusters whose TMs
//! are transformed: globally scaled (x0.5, x2), skewed (elementwise power
//! 1.5, renormalized to the same total — concentrates traffic on heavy
//! pairs), and transposed (§2.2's motivating transformation).

use harp_bench::{cli::Ctx, data, report};
use harp_core::{evaluate_model, norm_mlu, Harp, HarpConfig, Instance};
use harp_nn::load_params;
use harp_opt::{solve_fw, FwConfig};
use harp_tensor::ParamStore;
use harp_traffic::TrafficMatrix;
use rand::{rngs::StdRng, SeedableRng};

fn skew(tm: &TrafficMatrix, power: f64) -> TrafficMatrix {
    let n = tm.num_nodes();
    let total = tm.total();
    let mut out = TrafficMatrix::zeros(n);
    let mut new_total = 0.0;
    for s in 0..n {
        for t in 0..n {
            let d = tm.demand(s, t).powf(power);
            out.set_demand(s, t, d);
            new_total += d;
        }
    }
    if new_total > 0.0 {
        out.scaled(total / new_total)
    } else {
        out
    }
}

fn main() {
    let ctx = Ctx::from_args();
    report::section("Extension: demand-distribution shift (paper future work)");
    let ds = data::anonnet(&ctx);

    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(0);
    let harp = Harp::new(&mut store, &mut rng, HarpConfig::default());
    let path = ctx.model_path("anonnet-harp-abc");
    if load_params(&mut store, &path).is_err() {
        eprintln!(
            "run `cargo run -p harp-bench --bin fig04` first (needs {})",
            path.display()
        );
        std::process::exit(1);
    }

    type TmVariant = Box<dyn Fn(&TrafficMatrix) -> TrafficMatrix>;
    let variants: Vec<(&str, TmVariant)> = vec![
        ("baseline", Box::new(|tm: &TrafficMatrix| tm.clone())),
        ("scaled x0.5", Box::new(|tm: &TrafficMatrix| tm.scaled(0.5))),
        ("scaled x2.0", Box::new(|tm: &TrafficMatrix| tm.scaled(2.0))),
        ("skewed ^1.5", Box::new(|tm: &TrafficMatrix| skew(tm, 1.5))),
        ("transposed", Box::new(|tm: &TrafficMatrix| tm.transpose())),
    ];

    let test_clusters: Vec<usize> = (10..ds.clusters.len()).step_by(6).collect();
    let mut json = serde_json::Map::new();
    println!("\n  (HARP trained on unmodified gravity demands of clusters 0-2)\n");
    for (name, f) in &variants {
        let mut nms = Vec::new();
        for &cid in &test_clusters {
            let cluster = &ds.clusters[cid];
            for snap in cluster.snapshots.iter().step_by(4) {
                let topo = cluster.topo_at(snap);
                let tm = f(&snap.tm);
                // transposed demands need transposed-pair tunnels to exist;
                // our tunnel sets cover all ordered edge-node pairs, so the
                // same tunnel set serves
                let inst = Instance::compile(&topo, &cluster.tunnels, &tm);
                let opt = solve_fw(&inst.program, FwConfig::default()).mlu;
                let (mlu, _) = evaluate_model(&harp, &store, &inst, Default::default());
                nms.push(norm_mlu(mlu, opt));
            }
        }
        report::normmlu_summary(name, &nms);
        json.insert(name.to_string(), report::stats_json(&nms));
    }
    println!(
        "\n  expectation: scaling leaves NormMLU unchanged (MLU is scale-\n  \
         equivariant and HARP sees scaled demands); skew/transpose shift the\n  \
         distribution and probe §7's open question."
    );
    ctx.write_json("ext_demand_shift", &serde_json::Value::Object(json));
}
