//! Serving perf baseline: boots the `harp-serve` daemon in-process on a
//! loopback port with HARP (default config) on GEANT, drives it from
//! concurrent client connections with gravity-model traffic — including a
//! mid-run link failure/restore and a checkpoint hot-reload — and writes
//! `BENCH_serve.json` at the repo root: throughput, p50/p99 latency, and
//! the degradation rate, so the serving perf trajectory is tracked
//! in-tree from PR to PR.
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_serve \
//!   [out.json] [--duration-secs N] [--clients N] [--checkpoint ckpt.json]`
//!
//! Without `--checkpoint`, a cached zoo checkpoint is used when present
//! (`results/models/harp_geant.quick.json`); otherwise fresh seeded
//! parameters — inference cost, and therefore serving throughput, is the
//! same either way.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harp_core::{percentile, Harp, HarpConfig, SplitModel};
use harp_nn::{load_params, save_params};
use harp_paths::TunnelSet;
use harp_serve::{serve, ServeConfig, ServerHandle};
use harp_tensor::ParamStore;
use harp_traffic::{gravity_series, GravityConfig, TrafficMatrix};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

/// Per-client tallies.
#[derive(Default)]
struct ClientReport {
    completed: u64,
    degraded: u64,
    errors: u64,
    latencies_us: Vec<f64>,
}

/// Render the demands fragment of an infer request for one TM.
fn demands_fragment(tm: &TrafficMatrix) -> String {
    let n = tm.num_nodes();
    let mut parts = Vec::new();
    for s in 0..n {
        for t in 0..n {
            let d = tm.demand(s, t);
            if d > 0.0 {
                parts.push(format!("[{s},{t},{d:.6}]"));
            }
        }
    }
    format!("[{}]", parts.join(","))
}

/// One blocking request/response client loop until `deadline`.
fn client_loop(
    addr: std::net::SocketAddr,
    demand_bodies: &[String],
    client_idx: usize,
    until: Instant,
) -> ClientReport {
    let mut report = ClientReport::default();
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("client {client_idx}: connect failed: {e}");
            report.errors += 1;
            return report;
        }
    };
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            report.errors += 1;
            return report;
        }
    });
    let mut writer = stream;
    let mut id = client_idx as u64 * 1_000_000;
    let mut line = String::new();
    while Instant::now() < until {
        let body = &demand_bodies[(id as usize + client_idx) % demand_bodies.len()];
        id += 1;
        let req = format!("{{\"id\":{id},\"type\":\"infer\",\"demands\":{body}}}\n");
        let t0 = Instant::now();
        if writer.write_all(req.as_bytes()).is_err() || writer.flush().is_err() {
            report.errors += 1;
            break;
        }
        line.clear();
        if reader.read_line(&mut line).is_err() || line.is_empty() {
            report.errors += 1;
            break;
        }
        let elapsed_us = t0.elapsed().as_micros() as f64;
        let Ok(v) = serde_json::from_str::<Value>(&line) else {
            report.errors += 1;
            continue;
        };
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            report.errors += 1;
            continue;
        }
        report.completed += 1;
        report.latencies_us.push(elapsed_us);
        if v.get("degraded").and_then(Value::as_bool) == Some(true) {
            report.degraded += 1;
        }
    }
    report
}

/// Fire one control request on its own connection and return the reply.
fn control(addr: std::net::SocketAddr, line: &str) -> Option<Value> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = stream;
    writer.write_all(line.as_bytes()).ok()?;
    writer.write_all(b"\n").ok()?;
    writer.flush().ok()?;
    let mut resp = String::new();
    reader.read_line(&mut resp).ok()?;
    serde_json::from_str(&resp).ok()
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut duration_secs = 5u64;
    let mut clients = 8usize;
    let mut checkpoint: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--duration-secs" => {
                duration_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--duration-secs requires an integer");
            }
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients requires an integer");
            }
            "--checkpoint" => {
                checkpoint = Some(args.next().expect("--checkpoint requires a path"));
            }
            other => out_path = other.to_string(),
        }
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // GEANT + k-shortest tunnels, gravity traffic — the zoo's training
    // distribution, so a cached checkpoint matches the served workload.
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 4, 0.0);
    let mut gcfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    gcfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(42);
    let tms = gravity_series(&gcfg, &mut rng, 16);
    let scale = harp_datasets::calibrate_demand_scale(&topo, &tunnels, &tms, 0.7);
    let demand_bodies: Vec<String> = tms
        .iter()
        .map(|tm| demands_fragment(&tm.scaled(scale)))
        .collect();

    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(1);
    let harp = Harp::new(&mut store, &mut mrng, HarpConfig::default());
    let ckpt = checkpoint
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/models/harp_geant.quick.json"));
    let params_source = if ckpt.exists() {
        match load_params(&mut store, &ckpt) {
            Ok(()) => format!("checkpoint {}", ckpt.display()),
            Err(e) => {
                eprintln!(
                    "warning: checkpoint {} rejected ({e}); using fresh params",
                    ckpt.display()
                );
                "fresh (checkpoint rejected)".to_string()
            }
        }
    } else {
        "fresh (no checkpoint found)".to_string()
    };
    println!("bench_serve: GEANT, {clients} clients, {duration_secs}s, params: {params_source}");

    // A reload target for the mid-run hot-swap: same architecture,
    // different values.
    let reload_path = std::env::temp_dir().join("bench_serve_reload.json");
    {
        let mut other = ParamStore::new();
        let mut orng = StdRng::seed_from_u64(2);
        let _ = Harp::new(&mut other, &mut orng, HarpConfig::default());
        save_params(&other, &reload_path).expect("write reload checkpoint");
    }

    // a real GEANT link for the mid-run failure drill
    let (churn_u, churn_v, _, _) = topo.links()[0];

    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    let mut cfg = ServeConfig::from_env();
    cfg.addr = "127.0.0.1:0".to_string(); // never collide with a real daemon
    let deadline_ms = cfg.deadline_ms;
    let handle: ServerHandle = serve(cfg, model, store, topo, tunnels).expect("bind loopback port");
    let addr = handle.addr();

    let started = Instant::now();
    let until = started + Duration::from_secs(duration_secs);
    let reports: Vec<ClientReport> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..clients)
            .map(|i| {
                let bodies = &demand_bodies;
                s.spawn(move || client_loop(addr, bodies, i, until))
            })
            .collect();
        // mid-run churn on a separate connection: fail a link, hot-reload
        // the checkpoint, restore the link
        let churn = s.spawn(move || {
            let phase = Duration::from_secs(duration_secs) / 4;
            std::thread::sleep(phase);
            let v = control(
                addr,
                &format!(
                    r#"{{"id": 1, "type": "topology_update", "fail_links": [[{churn_u}, {churn_v}]]}}"#
                ),
            );
            println!("  churn: fail ({churn_u},{churn_v}) -> {v:?}");
            std::thread::sleep(phase);
            let reload = format!(
                "{{\"id\": 2, \"type\": \"reload_checkpoint\", \"path\": {:?}}}",
                std::env::temp_dir()
                    .join("bench_serve_reload.json")
                    .to_string_lossy()
            );
            let v = control(addr, &reload);
            println!("  churn: reload -> {v:?}");
            std::thread::sleep(phase);
            let v = control(
                addr,
                &format!(
                    r#"{{"id": 3, "type": "topology_update", "restore_links": [[{churn_u}, {churn_v}]]}}"#
                ),
            );
            println!("  churn: restore ({churn_u},{churn_v}) -> {v:?}");
        });
        let reports = workers
            .into_iter()
            .map(|w| w.join().expect("client panicked"))
            .collect();
        churn.join().expect("churn thread panicked");
        reports
    });
    let wall_s = started.elapsed().as_secs_f64();

    let completed: u64 = reports.iter().map(|r| r.completed).sum();
    let degraded: u64 = reports.iter().map(|r| r.degraded).sum();
    let errors: u64 = reports.iter().map(|r| r.errors).sum();
    let mut latencies: Vec<f64> = reports.into_iter().flat_map(|r| r.latencies_us).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let throughput = completed as f64 / wall_s;
    let degraded_rate = if completed > 0 {
        degraded as f64 / completed as f64
    } else {
        0.0
    };
    let pct = |p: f64| percentile(&latencies, p).unwrap_or(f64::NAN);
    let server_stats = handle.stats().snapshot();
    handle.shutdown();

    println!(
        "  {completed} responses in {wall_s:.2}s = {throughput:.1} req/s  \
         (degraded {degraded} = {:.2}%, errors {errors})",
        degraded_rate * 100.0
    );
    println!(
        "  latency p50 {:.0}us  p99 {:.0}us  max {:.0}us",
        pct(50.0),
        pct(99.0),
        pct(100.0)
    );

    let doc = serde_json::json!({
        "suite": format!(
            "harp-serve loopback: HARP (default config) on GEANT, {clients} clients, \
             {duration_secs}s, mid-run link fail/restore + checkpoint hot-reload"
        ),
        "host_cpus": host_cpus,
        "params_source": params_source,
        "deadline_ms": deadline_ms,
        "wall_s": wall_s,
        "requests_completed": completed,
        "throughput_rps": throughput,
        "degraded": degraded,
        "degraded_rate": degraded_rate,
        "client_errors": errors,
        "latency_p50_us": pct(50.0),
        "latency_p99_us": pct(99.0),
        "latency_max_us": pct(100.0),
        "server_stats": server_stats,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");
}
