//! Fleet serving bench: boots the `harp-serve` daemon in-process (shard
//! count from `HARP_SERVE_SHARDS` or `--shards`) with HARP on GEANT and
//! drives it with an **open-loop** synthetic client swarm — requests fire
//! on a schedule regardless of response latency, so queueing collapse
//! shows up in the tail instead of silently throttling the offered load.
//! The run layers on the adversarial traffic the fleet is designed to
//! absorb:
//!
//! * a **flash crowd**: the offered rate multiplies mid-run for ~15% of
//!   the duration;
//! * **slow-loris** connections dribbling bytes of a never-terminated
//!   request line (they must cost one capped buffer each — no thread, no
//!   wakeups, and **zero protocol errors**, since no line ever completes);
//! * optional **chaos connection faults** (`HARP_FAULT` /
//!   `drop-conn@every=K`, `delay-conn@every=K,ms=M`) — the swarm
//!   reconnects through dropped accepts;
//! * the usual mid-run churn: link fail, checkpoint hot-reload, link
//!   restore.
//!
//! After the load phase an **idle phase** holds open connections with no
//! traffic and measures process CPU, pinning the "no wakeups per idle
//! connection" property of the reactor (the old design burned one
//! `set_read_timeout` wakeup per idle connection per poll interval).
//!
//! Results go to `BENCH_serve.json`: throughput, p50/p99/p999 latency,
//! shed + degraded rates, idle CPU, host_cpus. `--assert-*` flags turn
//! measurements into CI gates (non-zero exit on violation).
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_serve -- \
//!   [out.json] [--duration-secs N] [--conns N] [--rps N] [--loris N] \
//!   [--shards N] [--max-batch N] [--model default|quick] [--checkpoint ckpt.json] \
//!   [--idle-secs N] [--assert-rps X] [--assert-p99-ms X] \
//!   [--assert-zero-protocol-errors] [--assert-idle-cpu-pct X]`

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use harp_core::{percentile, Harp, HarpConfig, SplitModel};
use harp_nn::{load_params, save_params};
use harp_paths::TunnelSet;
use harp_serve::{serve, ServeConfig, ServerHandle};
use harp_tensor::ParamStore;
use harp_traffic::{gravity_series, GravityConfig, TrafficMatrix};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

/// Per-swarm-client tallies.
#[derive(Default)]
struct ClientReport {
    sent: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    errors: u64,
    lost: u64,
    reconnects: u64,
    latencies_us: Vec<f64>,
}

/// Render the demands fragment of an infer request for one TM, keeping
/// the `keep` heaviest pairs (`usize::MAX` = all of them). Smaller
/// requests let a 1-CPU CI host exercise the fleet path instead of
/// JSON-rendering bandwidth; the report records the request size.
fn demands_fragment(tm: &TrafficMatrix, keep: usize) -> String {
    let n = tm.num_nodes();
    let mut pairs = Vec::new();
    for s in 0..n {
        for t in 0..n {
            let d = tm.demand(s, t);
            if d > 0.0 {
                pairs.push((s, t, d));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    pairs.truncate(keep);
    let parts: Vec<String> = pairs
        .iter()
        .map(|&(s, t, d)| format!("[{s},{t},{d:.6}]"))
        .collect();
    format!("[{}]", parts.join(","))
}

/// Pull the numeric `"id"` field out of a response line without a full
/// JSON parse (responses carry thousands of splits; the swarm client
/// must stay cheaper than the server it measures).
fn extract_id(line: &str) -> Option<u64> {
    let at = line.find("\"id\":")?;
    let digits: String = line[at + 5..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

struct Wire {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: std::net::SocketAddr) -> Option<Wire> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_millis(5)))
        .ok()?;
    let reader = BufReader::new(stream.try_clone().ok()?);
    Some(Wire {
        writer: stream,
        reader,
    })
}

/// Open-loop swarm client: fires requests on its schedule (pipelined, no
/// waiting for responses), collects whatever responses arrive, and
/// reconnects through chaos-dropped connections. `burst` multiplies the
/// rate inside its window, modeling a flash crowd.
#[allow(clippy::too_many_arguments)]
fn swarm_client(
    addr: std::net::SocketAddr,
    demand_bodies: &[String],
    client_idx: usize,
    until: Instant,
    base_interval: Duration,
    burst_window: (Instant, Instant),
    burst_mult: u32,
) -> ClientReport {
    let mut report = ClientReport::default();
    let Some(mut wire) = connect(addr) else {
        report.errors += 1;
        return report;
    };
    let mut pending: HashMap<u64, Instant> = HashMap::new();
    let mut id = client_idx as u64 * 1_000_000;
    let mut acc = String::new();
    let mut next_send = Instant::now();
    let drain_until = until + Duration::from_secs(2);
    loop {
        let now = Instant::now();
        if now >= drain_until || (now >= until && pending.is_empty()) {
            break;
        }
        // send every request the schedule owes us (open loop: we do NOT
        // wait for responses before sending the next one)
        while now >= next_send && now < until {
            id += 1;
            let body = &demand_bodies[(id as usize).wrapping_add(client_idx) % demand_bodies.len()];
            let req = format!("{{\"id\":{id},\"type\":\"infer\",\"demands\":{body}}}\n");
            match wire.writer.write_all(req.as_bytes()) {
                Ok(()) => {
                    report.sent += 1;
                    pending.insert(id, Instant::now());
                }
                Err(_) => {
                    report.lost += pending.len() as u64;
                    pending.clear();
                    report.reconnects += 1;
                    match connect(addr) {
                        Some(w) => wire = w,
                        None => return report,
                    }
                }
            }
            let in_burst = now >= burst_window.0 && now < burst_window.1;
            let interval = if in_burst {
                base_interval / burst_mult.max(1)
            } else {
                base_interval
            };
            next_send += interval;
            if next_send + Duration::from_secs(1) < now {
                // fell hopelessly behind (server stalled us); resync the
                // schedule instead of bursting a vengeance backlog
                next_send = now;
            }
        }
        // collect responses until the next send is due; the 5ms read
        // timeout keeps us on schedule, and partial lines persist in
        // `acc` across timeouts
        match wire.reader.read_line(&mut acc) {
            Ok(0) => {
                // server closed (chaos drop, shutdown): reconnect
                report.lost += pending.len() as u64;
                pending.clear();
                acc.clear();
                report.reconnects += 1;
                match connect(addr) {
                    Some(w) => wire = w,
                    None => return report,
                }
            }
            Ok(_) => {
                // hot path: scan for the fields we need instead of
                // parsing tens of KB of splits JSON per response — the
                // client must not be the bottleneck it is measuring
                let rid = extract_id(&acc);
                let t0 = rid.and_then(|r| pending.remove(&r));
                if acc.contains("\"ok\":true") || acc.contains("\"ok\": true") {
                    report.ok += 1;
                    if let Some(t0) = t0 {
                        report.latencies_us.push(t0.elapsed().as_micros() as f64);
                    }
                    if acc.contains("\"degraded\":true") || acc.contains("\"degraded\": true") {
                        report.degraded += 1;
                    }
                } else if acc.contains("\"shed\":true") || acc.contains("\"shed\": true") {
                    report.shed += 1;
                } else {
                    report.errors += 1;
                }
                acc.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                report.lost += pending.len() as u64;
                pending.clear();
                acc.clear();
                report.reconnects += 1;
                match connect(addr) {
                    Some(w) => wire = w,
                    None => return report,
                }
            }
        }
    }
    report.lost += pending.len() as u64;
    report
}

/// Slow-loris adversary: dribbles bytes of a valid-looking request line,
/// one byte at a time, never sending the newline. The server must hold
/// exactly one capped buffer for it and register **zero** protocol
/// errors (no line ever completes).
fn slow_loris(addr: std::net::SocketAddr, until: Instant) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let payload = br#"{"id": 1, "type": "infer", "demands": [[0, 1, 1.0"#;
    let mut i = 0usize;
    while Instant::now() < until {
        // wrap before the payload ends so we never emit a full line and
        // never cross the line cap
        if i < payload.len() - 1 {
            if stream.write_all(&payload[i..=i]).is_err() {
                return; // chaos-dropped: the point still stands
            }
            i += 1;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // drop without newline: the partial line is discarded at EOF,
    // producing no protocol error
}

/// Fire one control request on its own connection and return the reply.
fn control(addr: std::net::SocketAddr, line: &str) -> Option<Value> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = stream;
    writer.write_all(line.as_bytes()).ok()?;
    writer.write_all(b"\n").ok()?;
    writer.flush().ok()?;
    let mut resp = String::new();
    reader.read_line(&mut resp).ok()?;
    serde_json::from_str(&resp).ok()
}

/// Process CPU time (user + system) from /proc/self/stat, in seconds.
#[cfg(target_os = "linux")]
fn process_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // fields 14 (utime) and 15 (stime), counted after the parenthesized
    // comm field which may itself contain spaces
    let after_comm = &stat[stat.rfind(')')? + 2..];
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let utime: f64 = fields.get(11)?.parse().ok()?;
    let stime: f64 = fields.get(12)?.parse().ok()?;
    // CLK_TCK is 100 on every Linux this runs on
    Some((utime + stime) / 100.0)
}

#[cfg(not(target_os = "linux"))]
fn process_cpu_seconds() -> Option<f64> {
    None
}

struct Gates {
    min_rps: Option<f64>,
    max_p99_ms: Option<f64>,
    zero_protocol_errors: bool,
    max_idle_cpu_pct: Option<f64>,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut duration_secs = 5u64;
    let mut conns = 16usize;
    let mut offered_rps = 512.0f64;
    let mut burst_mult = 4u32;
    let mut loris = 4usize;
    let mut idle_secs = 2u64;
    let mut idle_conns = 64usize;
    let mut demands_per_req = usize::MAX;
    let mut paths_per_pair = 4usize;
    let mut shards_override: Option<usize> = None;
    let mut max_batch_override: Option<usize> = None;
    let mut churn = true;
    let mut model_size = "default".to_string();
    let mut checkpoint: Option<String> = None;
    let mut gates = Gates {
        min_rps: None,
        max_p99_ms: None,
        zero_protocol_errors: false,
        max_idle_cpu_pct: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a number"))
        };
        match a.as_str() {
            "--duration-secs" => duration_secs = num("--duration-secs") as u64,
            "--conns" | "--clients" => conns = num("--conns") as usize,
            "--rps" => offered_rps = num("--rps"),
            "--burst-mult" => burst_mult = num("--burst-mult") as u32,
            "--loris" => loris = num("--loris") as usize,
            "--idle-secs" => idle_secs = num("--idle-secs") as u64,
            "--idle-conns" => idle_conns = num("--idle-conns") as usize,
            "--demands" => demands_per_req = num("--demands") as usize,
            "--paths" => paths_per_pair = (num("--paths") as usize).max(1),
            "--shards" => shards_override = Some(num("--shards") as usize),
            "--max-batch" => max_batch_override = Some((num("--max-batch") as usize).max(1)),
            "--churn" => {
                churn = args.next().as_deref() != Some("off");
            }
            "--model" => model_size = args.next().expect("--model requires default|quick"),
            "--checkpoint" => checkpoint = Some(args.next().expect("--checkpoint requires a path")),
            "--assert-rps" => gates.min_rps = Some(num("--assert-rps")),
            "--assert-p99-ms" => gates.max_p99_ms = Some(num("--assert-p99-ms")),
            "--assert-zero-protocol-errors" => gates.zero_protocol_errors = true,
            "--assert-idle-cpu-pct" => gates.max_idle_cpu_pct = Some(num("--assert-idle-cpu-pct")),
            other => out_path = other.to_string(),
        }
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // GEANT + k-shortest tunnels, gravity traffic — the zoo's training
    // distribution, so a cached checkpoint matches the served workload.
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, paths_per_pair, 0.0);
    let mut gcfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    gcfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(42);
    let tms = gravity_series(&gcfg, &mut rng, 16);
    let scale = harp_datasets::calibrate_demand_scale(&topo, &tunnels, &tms, 0.7);
    let demand_bodies: Vec<String> = tms
        .iter()
        .map(|tm| demands_fragment(&tm.scaled(scale), demands_per_req))
        .collect();

    // `quick` trades model capacity for serving throughput — the CI gate
    // uses it so a 1-CPU runner can saturate the fleet path rather than
    // the matmuls; the recorded "model" field keeps the report honest.
    let harp_cfg = match model_size.as_str() {
        "quick" => HarpConfig {
            gnn_layers: 1,
            settrans_layers: 1,
            rau_iters: 2,
            ..HarpConfig::default()
        },
        _ => HarpConfig::default(),
    };
    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(1);
    let harp = Harp::new(&mut store, &mut mrng, harp_cfg);
    let ckpt = checkpoint
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/models/harp_geant.quick.json"));
    let params_source = if model_size != "quick" && ckpt.exists() {
        match load_params(&mut store, &ckpt) {
            Ok(()) => format!("checkpoint {}", ckpt.display()),
            Err(e) => {
                eprintln!(
                    "warning: checkpoint {} rejected ({e}); using fresh params",
                    ckpt.display()
                );
                "fresh (checkpoint rejected)".to_string()
            }
        }
    } else {
        "fresh".to_string()
    };

    // A reload target for the mid-run hot-swap: same architecture,
    // different values.
    let reload_path = std::env::temp_dir().join("bench_serve_reload.json");
    {
        let mut other = ParamStore::new();
        let mut orng = StdRng::seed_from_u64(2);
        let _ = Harp::new(&mut other, &mut orng, harp_cfg);
        save_params(&other, &reload_path).expect("write reload checkpoint");
    }

    // a real GEANT link for the mid-run failure drill
    let (churn_u, churn_v, _, _) = topo.links()[0];

    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    let mut cfg = ServeConfig::from_env();
    cfg.addr = "127.0.0.1:0".to_string(); // never collide with a real daemon
    if let Some(s) = shards_override {
        cfg.shards = s;
    }
    // On a single CPU the batcher's tail is batch_size x per-request cost:
    // the last job in a full batch waits for every job before it. A smaller
    // batch trades a little throughput for a bounded tail.
    if let Some(b) = max_batch_override {
        cfg.max_batch = b;
    }
    let shards = cfg.shards;
    let max_batch = cfg.max_batch;
    let deadline_ms = cfg.deadline_ms;
    let chaos_plan = std::env::var("HARP_FAULT").unwrap_or_default();
    println!(
        "bench_serve: GEANT/{model_size}, {shards} shard(s), {conns} conns, \
         {offered_rps:.0} rps offered (x{burst_mult} burst), {loris} slow-loris, \
         {duration_secs}s, params: {params_source}{}",
        if chaos_plan.is_empty() {
            String::new()
        } else {
            format!(", chaos: {chaos_plan}")
        }
    );
    let handle: ServerHandle = serve(cfg, model, store, topo, tunnels).expect("bind loopback port");
    let addr = handle.addr();

    let started = Instant::now();
    let until = started + Duration::from_secs(duration_secs);
    let burst_window = (
        started + Duration::from_secs(duration_secs) * 2 / 5,
        started + Duration::from_secs(duration_secs) * 11 / 20,
    );
    let base_interval = Duration::from_secs_f64(1.0 / (offered_rps / conns as f64).max(1.0));
    let reports: Vec<ClientReport> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..conns)
            .map(|i| {
                let bodies = &demand_bodies;
                s.spawn(move || {
                    swarm_client(
                        addr,
                        bodies,
                        i,
                        until,
                        base_interval,
                        burst_window,
                        burst_mult,
                    )
                })
            })
            .collect();
        for _ in 0..loris {
            s.spawn(move || slow_loris(addr, until));
        }
        // mid-run churn on a separate connection: fail a link, hot-reload
        // the checkpoint, restore the link
        let churn = s.spawn(move || {
            if !churn {
                return;
            }
            let phase = Duration::from_secs(duration_secs) / 4;
            std::thread::sleep(phase);
            let v = control(
                addr,
                &format!(
                    r#"{{"id": 1, "type": "topology_update", "fail_links": [[{churn_u}, {churn_v}]]}}"#
                ),
            );
            println!("  churn: fail ({churn_u},{churn_v}) -> ok={:?}", v.as_ref().and_then(|v| v.get("ok")));
            std::thread::sleep(phase);
            let reload = format!(
                "{{\"id\": 2, \"type\": \"reload_checkpoint\", \"path\": {:?}}}",
                std::env::temp_dir()
                    .join("bench_serve_reload.json")
                    .to_string_lossy()
            );
            let v = control(addr, &reload);
            println!("  churn: reload -> ok={:?}", v.as_ref().and_then(|v| v.get("ok")));
            std::thread::sleep(phase);
            let v = control(
                addr,
                &format!(
                    r#"{{"id": 3, "type": "topology_update", "restore_links": [[{churn_u}, {churn_v}]]}}"#
                ),
            );
            println!("  churn: restore ({churn_u},{churn_v}) -> ok={:?}", v.as_ref().and_then(|v| v.get("ok")));
        });
        let reports = workers
            .into_iter()
            .map(|w| w.join().expect("client panicked"))
            .collect();
        churn.join().expect("churn thread panicked");
        reports
    });
    let wall_s = started.elapsed().as_secs_f64();

    // --- idle phase: open connections, zero traffic, measure CPU ---
    let idle_holders: Vec<TcpStream> = (0..idle_conns)
        .filter_map(|_| TcpStream::connect(addr).ok())
        .collect();
    std::thread::sleep(Duration::from_millis(200)); // let accepts settle
    let cpu_before = process_cpu_seconds();
    std::thread::sleep(Duration::from_secs(idle_secs));
    let cpu_after = process_cpu_seconds();
    let idle_cpu_pct = match (cpu_before, cpu_after) {
        (Some(b), Some(a)) if idle_secs > 0 => Some((a - b) / idle_secs as f64 * 100.0),
        _ => None,
    };
    drop(idle_holders);

    let sent: u64 = reports.iter().map(|r| r.sent).sum();
    let ok: u64 = reports.iter().map(|r| r.ok).sum();
    let degraded: u64 = reports.iter().map(|r| r.degraded).sum();
    let shed_seen: u64 = reports.iter().map(|r| r.shed).sum();
    let errors: u64 = reports.iter().map(|r| r.errors).sum();
    let lost: u64 = reports.iter().map(|r| r.lost).sum();
    let reconnects: u64 = reports.iter().map(|r| r.reconnects).sum();
    let mut latencies: Vec<f64> = reports.into_iter().flat_map(|r| r.latencies_us).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let throughput = ok as f64 / wall_s;
    let rate = |num: u64, den: u64| {
        if den > 0 {
            num as f64 / den as f64
        } else {
            0.0
        }
    };
    let pct = |p: f64| percentile(&latencies, p).unwrap_or(f64::NAN);
    let server_stats = handle.stats().snapshot();
    let protocol_errors = handle.stats().protocol_errors_total();
    let shed_server = handle.stats().shed_total();
    handle.shutdown();

    println!(
        "  {ok} ok / {sent} sent in {wall_s:.2}s = {throughput:.1} req/s  \
         (degraded {:.2}%, shed {shed_seen}, errors {errors}, lost {lost}, \
         reconnects {reconnects})",
        rate(degraded, ok) * 100.0,
    );
    println!(
        "  latency p50 {:.0}us  p99 {:.0}us  p999 {:.0}us  max {:.0}us",
        pct(50.0),
        pct(99.0),
        pct(99.9),
        pct(100.0)
    );
    println!(
        "  server: protocol_errors {protocol_errors}, shed {shed_server}, idle cpu {}",
        idle_cpu_pct.map_or("n/a".to_string(), |p| format!("{p:.1}%")),
    );

    let doc = serde_json::json!({
        "suite": format!(
            "harp-serve fleet loopback: HARP ({model_size}) on GEANT, {shards} shard(s), \
             {conns} open-loop conns at {offered_rps:.0} rps (x{burst_mult} flash crowd), \
             {loris} slow-loris, {duration_secs}s, mid-run link fail/restore + hot-reload"
        ),
        "host_cpus": host_cpus,
        "model": model_size,
        "shards": shards,
        "max_batch": max_batch,
        "params_source": params_source,
        "deadline_ms": deadline_ms,
        "chaos": chaos_plan,
        "paths_per_pair": paths_per_pair,
        "demands_per_request": if demands_per_req == usize::MAX {
            Value::from("all")
        } else {
            Value::from(demands_per_req as f64)
        },
        "offered_rps": offered_rps,
        "wall_s": wall_s,
        "requests_sent": sent,
        "requests_ok": ok,
        "throughput_rps": throughput,
        "degraded": degraded,
        "degraded_rate": rate(degraded, ok),
        "shed": shed_server,
        "shed_rate": rate(shed_server, sent),
        "client_errors": errors,
        "client_lost": lost,
        "client_reconnects": reconnects,
        "protocol_errors": protocol_errors,
        "latency_p50_us": pct(50.0),
        "latency_p99_us": pct(99.0),
        "latency_p999_us": pct(99.9),
        "latency_max_us": pct(100.0),
        "idle_conns": idle_conns,
        "idle_secs": idle_secs,
        "idle_cpu_pct": idle_cpu_pct.map_or(Value::Null, Value::from),
        "server_stats": server_stats,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");

    // --- gates: turn measurements into exit status for CI ---
    let mut failures = Vec::new();
    if let Some(min) = gates.min_rps {
        if throughput < min {
            failures.push(format!(
                "throughput {throughput:.1} req/s < required {min:.1}"
            ));
        }
    }
    if let Some(max_ms) = gates.max_p99_ms {
        let p99_ms = pct(99.0) / 1000.0;
        // NaN p99 (no samples) must fail the gate too.
        if p99_ms.is_nan() || p99_ms > max_ms {
            failures.push(format!("p99 {p99_ms:.2}ms > allowed {max_ms:.2}ms"));
        }
    }
    if gates.zero_protocol_errors && protocol_errors > 0 {
        failures.push(format!(
            "{protocol_errors} protocol errors (slow-loris / chaos must cause none)"
        ));
    }
    if let Some(max_pct) = gates.max_idle_cpu_pct {
        match idle_cpu_pct {
            Some(p) if p > max_pct => {
                failures.push(format!("idle cpu {p:.1}% > allowed {max_pct:.1}%"))
            }
            _ => {}
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
