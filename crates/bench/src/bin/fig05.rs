//! Figure 5: HARP vs DOTE trained and tested *within the same cluster*
//! (75% train / 12.5% validation / 12.5% test) for the three largest
//! AnonNet clusters — isolating DOTE's inability to react to capacity
//! changes it cannot observe.

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{evaluate_model, norm_mlu, Instance};
use harp_runtime::Runtime;

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 5: HARP vs DOTE within capacity-varying clusters");
    let ds = data::anonnet(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("anonnet_opt"));
    let clusters = ds.largest_clusters(3);
    println!("largest clusters: {clusters:?}");

    let mut json_clusters = Vec::new();
    for &cid in &clusters {
        let instances = data::compile_cluster(&ds, cid);
        let opts = data::cluster_oracles(&mut cache, "anonnet", cid, &instances);
        cache.save();
        // temporal 75/12.5/12.5 split (train on the past, test on the
        // future) — matching the paper; an interleaved split leaks
        // temporally-adjacent TMs into training and erases DOTE's
        // capacity-blindness penalty
        let pairs: Vec<(&Instance, f64)> = instances.iter().zip(opts.iter().copied()).collect();
        let n = pairs.len();
        let train_end = n * 3 / 4;
        let val_end = train_end + (n - train_end) / 2;
        let (train, rest) = pairs.split_at(train_end);
        let (val, test) = rest.split_at(val_end - train_end);
        println!(
            "cluster {cid}: {} train / {} val / {} test snapshots",
            train.len(),
            val.len(),
            test.len()
        );

        let mut results = serde_json::Map::new();
        for scheme in [zoo::Scheme::Harp { rau_iters: 7 }, zoo::Scheme::Dote] {
            let zm = zoo::train_or_load(
                &ctx,
                &format!("anonnet-c{cid}-{}", scheme.label()),
                scheme,
                train,
                val,
                zoo::train_config(&ctx),
            );
            // pure per-snapshot sweep: fan out across HARP_THREADS workers
            let nms: Vec<f64> = Runtime::global().par_map(test, |_, (inst, o)| {
                let (mlu, _) =
                    evaluate_model(zm.as_model(), &zm.store, inst, scheme.eval_options());
                norm_mlu(mlu, *o)
            });
            report::normmlu_summary(&format!("{} c{cid}", zm.model.name()), &nms);
            results.insert(
                scheme.label(),
                serde_json::json!({
                    "cdf": report::cdf_json(&nms, 100),
                    "stats": report::stats_json(&nms),
                }),
            );
        }
        json_clusters.push(serde_json::json!({
            "cluster": cid,
            "schemes": results,
        }));
    }

    println!(
        "\n  paper: HARP max NormMLU 1.13/1.02/1.07 across the three clusters;\n  \
         DOTE median 1.12/2.12/2.79, max 2.03/4.02/3.35"
    );
    ctx.write_json("fig05", &serde_json::json!({ "clusters": json_clusters }));
}
