//! Figure 11: computation-time comparison — DOTE, HARP, TEAL inference vs
//! the LP solver ("Gurobi") across topologies of increasing size.
//!
//! Substitutions (DESIGN.md): all timings are same-machine CPU wall-clock
//! (the paper used an A100 for the ML schemes and a 64-core EPYC for
//! Gurobi); UsCarrier/KDL instances use a seeded edge-node subset so the
//! neural instances fit CPU memory — every scheme *and* the LP see the
//! identical instance, preserving the figure's relative ordering.

use std::time::Instant;

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::Instance;
use harp_opt::MluOracle;
use harp_paths::TunnelSet;
use harp_runtime::Runtime;
use harp_tensor::Tape;
use harp_topology::Topology;
use harp_traffic::{gravity_series, GravityConfig};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

fn instance_for(topo: &Topology, edge_nodes: &[usize], k: usize, seed: u64) -> Instance {
    let tunnels = TunnelSet::k_shortest(topo, edge_nodes, k, 0.0);
    let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    cfg.edge_nodes = edge_nodes.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    let tm = gravity_series(&cfg, &mut rng, 1).remove(0);
    let scale =
        harp_datasets::calibrate_demand_scale(topo, &tunnels, std::slice::from_ref(&tm), 0.7);
    Instance::compile(topo, &tunnels, &tm.scaled(scale))
}

fn time_forward(
    model: &dyn harp_core::SplitModel,
    store: &harp_tensor::ParamStore,
    inst: &Instance,
    reps: usize,
) -> f64 {
    // warm-up
    let mut tape = Tape::new();
    let _ = model.forward(&mut tape, store, inst);
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut tape = Tape::new();
        let _ = model.forward(&mut tape, store, inst);
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 11: computation time vs topology size");

    let mut rng = StdRng::seed_from_u64(11);
    let subset = |topo: &Topology, n: usize, rng: &mut StdRng| -> Vec<usize> {
        let mut nodes: Vec<usize> = (0..topo.num_nodes()).collect();
        nodes.shuffle(rng);
        let mut e = nodes[..n.min(topo.num_nodes())].to_vec();
        e.sort_unstable();
        e
    };

    // (name, topology, edge nodes, tunnels per flow)
    let mut cases: Vec<(String, Topology, Vec<usize>, usize)> = Vec::new();
    let abilene = harp_datasets::abilene();
    cases.push((
        "Abilene (12)".into(),
        abilene.clone(),
        (0..abilene.num_nodes()).collect(),
        8,
    ));
    let geant = harp_datasets::geant();
    cases.push((
        "GEANT (22)".into(),
        geant.clone(),
        (0..geant.num_nodes()).collect(),
        8,
    ));
    let ds = harp_datasets::AnonNetDataset::generate(&harp_datasets::AnonNetConfig::default());
    let c0 = &ds.clusters[0];
    cases.push((
        format!("AnonNet ({})", ds.cfg.universe_nodes),
        c0.topo.clone(),
        c0.edge_nodes.clone(),
        ds.cfg.tunnels_per_flow,
    ));
    let usc = harp_datasets::us_carrier_like();
    let usc_edges = subset(&usc, if ctx.quick { 24 } else { 40 }, &mut rng);
    cases.push(("UsCarrier (158)".into(), usc, usc_edges, 8));
    if !ctx.quick {
        let kdl = harp_datasets::kdl_like();
        let kdl_edges = subset(&kdl, 40, &mut rng);
        cases.push(("KDL (754)".into(), kdl, kdl_edges, 4));
    } else {
        let kdl = harp_datasets::kdl_small();
        let kdl_edges = subset(&kdl, 24, &mut rng);
        cases.push(("KDL-small (96)".into(), kdl, kdl_edges, 4));
    }

    println!(
        "\n  {:<16} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "Topology", "flows", "tunnels", "DOTE", "HARP", "TEAL", "LP(Gurobi)"
    );
    let reps = if ctx.quick { 3 } else { 10 };
    // instance compilation (tunnels, TM calibration, index tensors) is a
    // pure per-case map — fan it out; the timed sections below stay serial
    // so the wall-clock comparisons remain meaningful
    let instances: Vec<Instance> = Runtime::global().par_map(&cases, |_, (_, topo, edges, k)| {
        instance_for(topo, edges, *k, 99)
    });
    let mut rows = Vec::new();
    for ((name, _topo, _edges, k), inst) in cases.iter().zip(&instances) {
        let mut times = Vec::new();
        for scheme in [
            zoo::Scheme::Dote,
            zoo::Scheme::Harp { rau_iters: 7 },
            zoo::Scheme::Teal {
                tunnels_per_flow: *k,
            },
        ] {
            let (model, store) = zoo::build_model(scheme, inst, 3);
            times.push(time_forward(&*model, &store, inst, reps));
        }
        let t0 = Instant::now();
        let sol = MluOracle::default().solve(&inst.program);
        let lp_time = t0.elapsed().as_secs_f64();
        let _ = sol;
        println!(
            "  {:<16} {:>8} {:>8} {:>9.4}s {:>9.4}s {:>9.4}s {:>9.4}s",
            name, inst.num_flows, inst.num_tunnels, times[0], times[1], times[2], lp_time
        );
        rows.push(serde_json::json!({
            "topology": name,
            "flows": inst.num_flows,
            "tunnels": inst.num_tunnels,
            "dote_s": times[0],
            "harp_s": times[1],
            "teal_s": times[2],
            "lp_s": lp_time,
        }));
        let _ = data::OracleCache::open(&ctx.cache_path("unused")); // keep cache dir warm
    }

    println!(
        "\n  paper: DOTE < TEAL ~ HARP << Gurobi, with over an order of magnitude\n  \
         between HARP and Gurobi on KDL"
    );
    ctx.write_json("fig11", &serde_json::json!({ "rows": rows }));
}
