//! Kernel perf baseline: times the blocked matmul kernels on the matmul
//! shapes recorded from real model forward passes (same shape discovery as
//! `benches/kernels.rs`) and writes `BENCH_kernels.json` at the repo root,
//! so the perf trajectory is tracked in-tree from PR to PR.
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_kernels [out.json]`
//! Worker counts beyond 1 come from `HARP_THREADS` (default: available
//! parallelism).
//!
//! `--check <baseline.json> [--tolerance <pct>]` re-times the same shapes
//! (per-shape min over 3 rounds, to sit under scheduler noise) and exits
//! non-zero if any timing class regresses more than `pct` (default 30%)
//! against the baseline, aggregated over matched shapes — the CI smoke
//! gate that instrumentation stays off the hot path. The default is wide
//! on purpose: shared runners show double-digit scheduler/steal drift
//! between runs, and the gate exists to catch structural regressions
//! (an accidental scalar fallback, timing hooks left on the hot loop),
//! which show up as multi-x slowdowns, not single-digit percentages.

use std::collections::BTreeSet;
use std::time::Instant;

use harp_bench::zoo;
use harp_core::{run_inference_cached, EvalOptions, Instance};
use harp_paths::TunnelSet;
use harp_runtime::Runtime;
use harp_tensor::{kernels, Op, Tape};
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn geant_instance() -> Instance {
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 8, 0.0);
    let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    cfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(7);
    let tm = gravity_series(&cfg, &mut rng, 1).remove(0);
    Instance::compile(&topo, &tunnels, &tm)
}

fn recorded_matmul_shapes(inst: &Instance) -> Vec<(usize, usize, usize)> {
    let mut shapes = BTreeSet::new();
    for scheme in [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ] {
        let (model, store) = zoo::build_model(scheme, inst, 3);
        let mut tape = Tape::new();
        let _ = model.forward(&mut tape, &store, inst);
        for node in tape.nodes() {
            match node.op {
                Op::MatMul(a, _)
                | Op::MatMulBiasRelu(a, _, _)
                | Op::MatMulBiasLeakyRelu(a, _, _, _) => {
                    let (m, k) = tape.shape(*a).as_matrix();
                    let (_, n) = node.shape.as_matrix();
                    shapes.insert((m, k, n));
                }
                Op::BatchMatMul(a, _) => {
                    let (b, m, k) = tape.shape(*a).as_batched();
                    let (_, _, n) = node.shape.as_batched();
                    shapes.insert((b * m, k, n));
                }
                _ => {}
            }
        }
    }
    let mut v: Vec<(usize, usize, usize)> = shapes.into_iter().collect();
    v.sort_by_key(|&(m, k, n)| std::cmp::Reverse(m * k * n));
    v.truncate(8);
    v
}

fn test_matrix(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Median wall-clock nanoseconds per call over `reps` calls.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    // warm-up
    f();
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Compare this run's rows against a baseline document: per timing class,
/// total ns over matched shapes must stay within `tol` (fractional) of the
/// baseline total. Returns the regression messages (empty = pass).
fn check_against_baseline(
    baseline: &serde_json::Value,
    rows: &[serde_json::Value],
    tol: f64,
) -> Vec<String> {
    const CLASSES: [&str; 5] = [
        "matmul_serial_ns",
        "matmul_pool_ns",
        "matmul_at_b_ns",
        "matmul_a_bt_ns",
        "matmul_fused_ns",
    ];
    let key = |r: &serde_json::Value| {
        (
            r.get("m").and_then(serde_json::Value::as_u64),
            r.get("k").and_then(serde_json::Value::as_u64),
            r.get("n").and_then(serde_json::Value::as_u64),
        )
    };
    let base_rows: Vec<&serde_json::Value> = baseline
        .get("shapes")
        .and_then(serde_json::Value::as_array)
        .map(|v| v.iter().collect())
        .unwrap_or_default();
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for class in CLASSES {
        let mut base_total = 0.0f64;
        let mut now_total = 0.0f64;
        for row in rows {
            let Some(base) = base_rows.iter().find(|b| key(b) == key(row)) else {
                continue;
            };
            let (Some(b), Some(c)) = (
                base.get(class).and_then(serde_json::Value::as_f64),
                row.get(class).and_then(serde_json::Value::as_f64),
            ) else {
                continue;
            };
            base_total += b;
            now_total += c;
            matched += 1;
        }
        if base_total <= 0.0 {
            continue;
        }
        let ratio = now_total / base_total;
        println!("  check {class:<18} {ratio:>6.3}x baseline (tolerance {tol:.2})");
        if ratio > 1.0 + tol {
            failures.push(format!(
                "{class}: {now_total:.0}ns vs baseline {base_total:.0}ns ({:.1}% slower, \
                 tolerance {:.1}%)",
                (ratio - 1.0) * 100.0,
                tol * 100.0
            ));
        }
    }
    if matched == 0 {
        failures.push("no shapes matched the baseline (stale baseline file?)".to_string());
    }
    failures
}

fn main() {
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.30f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => {
                check_path = Some(args.next().expect("--check requires a baseline file"));
            }
            "--tolerance" => {
                let v = args.next().expect("--tolerance requires a percentage");
                tolerance = v
                    .parse::<f64>()
                    .expect("--tolerance must be a number (percent)")
                    / 100.0;
            }
            other => out_path = other.to_string(),
        }
    }
    let inst = geant_instance();
    let shapes = recorded_matmul_shapes(&inst);
    let global = Runtime::global();
    println!(
        "bench_kernels: {} recorded shapes, global pool = {} workers",
        shapes.len(),
        global.workers()
    );

    // Both modes take the per-shape minimum over several rounds of medians:
    // scheduler interference on shared runners only ever slows a sample
    // down, so the min estimates the noise floor, a genuine regression
    // still shows in every round, and baseline and check use the same
    // estimator (a baseline recorded in a noisy window stays comparable).
    let rounds = 3;
    let reps = 15;
    let mut rows = Vec::new();
    for &(m, k, n) in &shapes {
        let a = test_matrix(m * k, 11);
        let b = test_matrix(k * n, 12);
        let dy = test_matrix(m * n, 13);
        let w = test_matrix(k * n, 14);

        let bias = test_matrix(n, 15);

        let mut serial_ns = u64::MAX;
        let mut par_ns = u64::MAX;
        let mut at_b_ns = u64::MAX;
        let mut a_bt_ns = u64::MAX;
        let mut fused_ns = u64::MAX;
        for _ in 0..rounds {
            serial_ns = serial_ns.min(time_ns(reps, || {
                std::hint::black_box(kernels::matmul_with(Runtime::serial(), &a, &b, m, k, n));
            }));
            par_ns = par_ns.min(time_ns(reps, || {
                std::hint::black_box(kernels::matmul_with(global, &a, &b, m, k, n));
            }));
            at_b_ns = at_b_ns.min(time_ns(reps, || {
                let mut dw = vec![0.0f32; k * n];
                kernels::matmul_at_b(&a, &dy, m, k, n, &mut dw);
                std::hint::black_box(dw);
            }));
            a_bt_ns = a_bt_ns.min(time_ns(reps, || {
                let mut dx = vec![0.0f32; m * k];
                kernels::matmul_a_bt(&dy, &w, m, n, k, &mut dx);
                std::hint::black_box(dx);
            }));
            fused_ns = fused_ns.min(time_ns(reps, || {
                let mut y = vec![0.0f32; m * n];
                kernels::matmul_bias_act_into_with(
                    Runtime::serial(),
                    &a,
                    &b,
                    &bias,
                    None,
                    m,
                    k,
                    n,
                    &mut y,
                );
                std::hint::black_box(y);
            }));
        }
        // flops/ns == GFLOP/s; 2mkn multiply-adds per product
        let gflops = 2.0 * (m * k * n) as f64 / serial_ns as f64;
        println!(
            "  {m:>5}x{k:<4}x{n:<4}  serial {serial_ns:>10}ns ({gflops:>5.2} GFLOP/s)  \
             pool({}) {par_ns:>10}ns  at_b {at_b_ns:>10}ns  a_bt {a_bt_ns:>10}ns  \
             fused {fused_ns:>10}ns",
            global.workers()
        );
        rows.push(serde_json::json!({
            "m": m, "k": k, "n": n,
            "matmul_serial_ns": serial_ns,
            "matmul_serial_gflops": (gflops * 100.0).round() / 100.0,
            "matmul_pool_ns": par_ns,
            "pool_workers": global.workers(),
            "matmul_at_b_ns": at_b_ns,
            "matmul_a_bt_ns": a_bt_ns,
            "matmul_fused_ns": fused_ns,
        }));
    }

    // End-to-end cached inference: HARP with the epoch-invariant stage
    // (GCN + set transformer) precomputed once, timing only the per-TM
    // path — the serving hot loop. Target: < 2ms per request. Uses
    // `rau_iters = 3` (the paper sweeps {3, 7, 14}); the latency scales
    // roughly linearly in the RAU iteration count.
    let (model, store) = zoo::build_model(zoo::Scheme::Harp { rau_iters: 3 }, &inst, 3);
    let cache = model
        .precompute_epoch(&store, &inst)
        .expect("HARP precomputes an epoch cache");
    let mut infer_ns = u64::MAX;
    for _ in 0..rounds {
        infer_ns = infer_ns.min(time_ns(reps, || {
            std::hint::black_box(run_inference_cached(
                model.as_ref(),
                &store,
                &inst,
                EvalOptions::default(),
                &cache,
            ));
        }));
    }
    println!(
        "  cached inference e2e: {infer_ns}ns ({:.3}ms)",
        infer_ns as f64 / 1e6
    );

    if let Some(base_path) = check_path {
        let text = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: read baseline {base_path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: parse baseline {base_path}: {e}");
                std::process::exit(1);
            }
        };
        let mut failures = check_against_baseline(&baseline, &rows, tolerance);
        if let Some(base_e2e) = baseline
            .get("cached_infer_e2e_ns")
            .and_then(serde_json::Value::as_f64)
        {
            let ratio = infer_ns as f64 / base_e2e;
            println!(
                "  check cached_infer_e2e   {ratio:>6.3}x baseline (tolerance {tolerance:.2})"
            );
            if ratio > 1.0 + tolerance {
                failures.push(format!(
                    "cached_infer_e2e_ns: {infer_ns}ns vs baseline {base_e2e:.0}ns \
                     ({:.1}% slower, tolerance {:.1}%)",
                    (ratio - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        if failures.is_empty() {
            println!("[check passed against {base_path}]");
            return;
        }
        for f in &failures {
            eprintln!("regression: {f}");
        }
        std::process::exit(1);
    }

    let doc = serde_json::json!({
        "suite": "blocked matmul kernels on shapes recorded from HARP/DOTE/TEAL forward tapes (GEANT, 8 tunnels/flow)",
        "host_cpus": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "pool_workers": global.workers(),
        "timing": "median of 15 reps, ns/call",
        "cached_infer_e2e_ns": infer_ns,
        "shapes": rows,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");
}
