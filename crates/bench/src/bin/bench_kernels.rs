//! Kernel perf baseline: times the blocked matmul kernels on the matmul
//! shapes recorded from real model forward passes (same shape discovery as
//! `benches/kernels.rs`) and writes `BENCH_kernels.json` at the repo root,
//! so the perf trajectory is tracked in-tree from PR to PR.
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_kernels [out.json]`
//! Worker counts beyond 1 come from `HARP_THREADS` (default: available
//! parallelism).

use std::collections::BTreeSet;
use std::time::Instant;

use harp_bench::zoo;
use harp_core::Instance;
use harp_paths::TunnelSet;
use harp_runtime::Runtime;
use harp_tensor::{kernels, Op, Tape};
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn geant_instance() -> Instance {
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 8, 0.0);
    let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    cfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(7);
    let tm = gravity_series(&cfg, &mut rng, 1).remove(0);
    Instance::compile(&topo, &tunnels, &tm)
}

fn recorded_matmul_shapes(inst: &Instance) -> Vec<(usize, usize, usize)> {
    let mut shapes = BTreeSet::new();
    for scheme in [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ] {
        let (model, store) = zoo::build_model(scheme, inst, 3);
        let mut tape = Tape::new();
        let _ = model.forward(&mut tape, &store, inst);
        for node in tape.nodes() {
            match node.op {
                Op::MatMul(a, _) => {
                    let (m, k) = tape.shape(*a).as_matrix();
                    let (_, n) = node.shape.as_matrix();
                    shapes.insert((m, k, n));
                }
                Op::BatchMatMul(a, _) => {
                    let (b, m, k) = tape.shape(*a).as_batched();
                    let (_, _, n) = node.shape.as_batched();
                    shapes.insert((b * m, k, n));
                }
                _ => {}
            }
        }
    }
    let mut v: Vec<(usize, usize, usize)> = shapes.into_iter().collect();
    v.sort_by_key(|&(m, k, n)| std::cmp::Reverse(m * k * n));
    v.truncate(8);
    v
}

fn test_matrix(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Median wall-clock nanoseconds per call over `reps` calls.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    // warm-up
    f();
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let inst = geant_instance();
    let shapes = recorded_matmul_shapes(&inst);
    let global = Runtime::global();
    println!(
        "bench_kernels: {} recorded shapes, global pool = {} workers",
        shapes.len(),
        global.workers()
    );

    let reps = 15;
    let mut rows = Vec::new();
    for &(m, k, n) in &shapes {
        let a = test_matrix(m * k, 11);
        let b = test_matrix(k * n, 12);
        let dy = test_matrix(m * n, 13);
        let w = test_matrix(k * n, 14);

        let serial_ns = time_ns(reps, || {
            std::hint::black_box(kernels::matmul_with(Runtime::serial(), &a, &b, m, k, n));
        });
        let par_ns = time_ns(reps, || {
            std::hint::black_box(kernels::matmul_with(global, &a, &b, m, k, n));
        });
        let at_b_ns = time_ns(reps, || {
            let mut dw = vec![0.0f32; k * n];
            kernels::matmul_at_b(&a, &dy, m, k, n, &mut dw);
            std::hint::black_box(dw);
        });
        let a_bt_ns = time_ns(reps, || {
            let mut dx = vec![0.0f32; m * k];
            kernels::matmul_a_bt(&dy, &w, m, n, k, &mut dx);
            std::hint::black_box(dx);
        });
        println!(
            "  {m:>5}x{k:<4}x{n:<4}  serial {serial_ns:>10}ns  pool({}) {par_ns:>10}ns  \
             at_b {at_b_ns:>10}ns  a_bt {a_bt_ns:>10}ns",
            global.workers()
        );
        rows.push(serde_json::json!({
            "m": m, "k": k, "n": n,
            "matmul_serial_ns": serial_ns,
            "matmul_pool_ns": par_ns,
            "pool_workers": global.workers(),
            "matmul_at_b_ns": at_b_ns,
            "matmul_a_bt_ns": a_bt_ns,
        }));
    }

    let doc = serde_json::json!({
        "suite": "blocked matmul kernels on shapes recorded from HARP/DOTE/TEAL forward tapes (GEANT, 8 tunnels/flow)",
        "host_cpus": std::thread::available_parallelism().map_or(1, |n| n.get()),
        "pool_workers": global.workers(),
        "timing": "median of 15 reps, ns/call",
        "shapes": rows,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");
}
