//! Figure 15 (appendix): link-capacity variation over the *entire* AnonNet
//! dataset — CDFs of unique capacity values per link and min-to-max ratio,
//! aggregated across all clusters a link appears in.

use std::collections::HashMap;

use harp_bench::{cli::Ctx, data, report};
use harp_core::cdf_points;

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 15: capacity variation over the entire AnonNet dataset");
    let ds = data::anonnet(&ctx);
    let zero_cap = ds.cfg.zero_cap;

    // Aggregate per undirected link identified by (u, v) node ids, which
    // are stable across clusters (the node universe is shared).
    let mut per_link: HashMap<(usize, usize), Vec<f64>> = HashMap::new();
    for c in &ds.clusters {
        for (u, v, f, _) in c.topo.links() {
            let entry = per_link.entry((u, v)).or_default();
            for s in &c.snapshots {
                entry.push(s.capacities[f]);
            }
        }
    }

    let mut unique_counts = Vec::new();
    let mut ratios = Vec::new();
    let mut zero_links = 0usize;
    for vals in per_link.values() {
        let mut sorted: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        unique_counts.push(sorted.len() as f64);
        let mn = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = vals.iter().cloned().fold(0.0f64, f64::max);
        if mn <= zero_cap {
            zero_links += 1;
        }
        ratios.push(if mx > 0.0 { (mn / mx).min(1.0) } else { 0.0 });
    }

    let n = per_link.len() as f64;
    let multi = unique_counts.iter().filter(|&&c| c > 1.0).count() as f64 / n;
    let max_unique = unique_counts.iter().cloned().fold(0.0, f64::max) as usize;
    let low_ratio = ratios.iter().filter(|&&r| r <= 0.8).count() as f64 / n;
    report::kv_table(&[
        ("links observed", format!("{}", per_link.len())),
        (
            "links with >1 capacity value",
            format!("{:.1}% (paper: ~80%)", 100.0 * multi),
        ),
        (
            "max unique capacity values",
            format!("{max_unique} (paper: 33)"),
        ),
        (
            "links with min/max <= 0.8",
            format!("{:.1}% (paper: ~60%)", 100.0 * low_ratio),
        ),
        (
            "links with a zero-capacity snapshot",
            format!("{:.1}% (paper: ~20%)", 100.0 * zero_links as f64 / n),
        ),
    ]);

    let json = serde_json::json!({
        "links": per_link.len(),
        "unique_capacity_cdf": cdf_points(&unique_counts),
        "min_max_ratio_cdf": cdf_points(&ratios),
        "frac_links_multi_value": multi,
        "max_unique_values": max_unique,
        "frac_ratio_le_0_8": low_ratio,
        "frac_links_zero": zero_links as f64 / n,
    });
    ctx.write_json("fig15", &json);
}
