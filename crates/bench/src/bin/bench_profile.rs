//! Profiling drill-down: run one quick HARP training pass on GEANT with
//! full observability (spans + per-op tape timing) and print where the time
//! goes — the stage breakdown (GCN / SETTRANS / MLP1 / RAU / backward /
//! merge / validate) as a span tree, plus the hottest tape ops by total
//! forward/backward nanoseconds.
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_profile [epochs]`
//! (default 1 epoch). Structured events stream to stderr in human form;
//! the report prints to stdout at the end.

use harp_bench::zoo;
use harp_core::{train_model, EvalOptions, Instance, TrainConfig};
use harp_obs::{Config, SinkKind};
use harp_paths::TunnelSet;
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

fn geant_instances(count: usize) -> Vec<Instance> {
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 4, 0.0);
    let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    cfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(7);
    gravity_series(&cfg, &mut rng, count)
        .into_iter()
        .map(|tm| Instance::compile(&topo, &tunnels, &tm))
        .collect()
}

fn main() {
    let epochs: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("epochs must be a number"))
        .unwrap_or(1);
    if !harp_obs::init(Config {
        sink: SinkKind::Human,
        file: None,
        op_timing: true,
    }) {
        eprintln!("bench_profile: observability was already configured elsewhere; proceeding");
    }

    let instances = geant_instances(5);
    // Loss normalization by the optimal MLU is irrelevant to a timing
    // profile; 1.0 keeps the oracle out of the measured window.
    let train_refs: Vec<(&Instance, f64)> = instances[..4].iter().map(|i| (i, 1.0)).collect();
    let val_refs: Vec<(&Instance, f64)> = instances[4..].iter().map(|i| (i, 1.0)).collect();

    let (model, mut store) =
        zoo::build_model(zoo::Scheme::Harp { rau_iters: 7 }, train_refs[0].0, 3);
    let t0 = std::time::Instant::now();
    let report = train_model(
        &*model,
        &mut store,
        &train_refs,
        &val_refs,
        TrainConfig {
            epochs,
            batch_size: train_refs.len(),
            ..Default::default()
        },
        EvalOptions::default(),
    )
    .expect("bench_profile training run failed");
    let wall = t0.elapsed();

    println!(
        "\n=== bench_profile: {} epoch(s) of HARP on GEANT in {:.2?} (best val NormMLU {:.4}) ===",
        report.history.len(),
        wall,
        report.best_val
    );
    println!("\n--- span tree (wall time by stage) ---");
    print!("{}", harp_obs::span_report());

    let (counters, histograms) = harp_obs::metrics_snapshot();
    let mut op_hists: Vec<_> = histograms
        .iter()
        .filter(|h| h.name.starts_with("tape.fwd.") || h.name.starts_with("tape.bwd."))
        .collect();
    op_hists.sort_by_key(|h| std::cmp::Reverse(h.sum));
    println!("\n--- hottest tape ops (total ns, forward + backward attribution) ---");
    for h in op_hists.iter().take(16) {
        println!(
            "  {:<24} {:>9} calls  total {:>10.3}ms  mean {:>8.0}ns",
            h.name,
            h.count,
            h.sum as f64 / 1e6,
            h.mean()
        );
    }

    println!("\n--- counters ---");
    for c in &counters {
        println!("  {:<28} {}", c.name, c.value);
    }
    harp_obs::flush();
}
