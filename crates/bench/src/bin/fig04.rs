//! Figure 4: HARP trained on the first three AnonNet clusters, validated
//! on the next three, tested on **all remaining clusters** — the paper's
//! headline transferability result (98% of snapshots within 1.11 of
//! optimal; max 1.86).

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{evaluate_model, norm_mlu, Instance};

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 4: HARP transferability across AnonNet clusters");
    let ds = data::anonnet(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("anonnet_opt"));

    // --- training/validation sets: clusters 0-2 / 3-5 ---
    let mut train_store: Vec<(Instance, f64)> = Vec::new();
    let mut val_store: Vec<(Instance, f64)> = Vec::new();
    let per_cluster_cap = if ctx.quick { 24 } else { 60 };
    for cid in 0..6 {
        let instances = data::compile_cluster(&ds, cid);
        let opts = data::cluster_oracles(&mut cache, "anonnet", cid, &instances);
        let dst = if cid < 3 {
            &mut train_store
        } else {
            &mut val_store
        };
        // stride-sample across the cluster so failure snapshots are seen
        let stride = (instances.len() / per_cluster_cap.min(instances.len())).max(1);
        for (inst, opt) in instances.into_iter().zip(opts).step_by(stride) {
            dst.push((inst, opt));
        }
        // augment the training clusters with synthetic failure/jitter
        // capacity configurations (see data::augmented_instance docs)
        if cid < 3 {
            let mut arng = rand::SeedableRng::seed_from_u64(900 + cid as u64);
            let cluster = &ds.clusters[cid];
            for (sid, snap) in cluster.snapshots.iter().enumerate().step_by(stride * 2) {
                if let Some(inst) =
                    data::augmented_instance(cluster, snap, &mut arng, ds.cfg.zero_cap)
                {
                    let key = format!("anonnet/aug{cid}/s{sid}");
                    let (opt, _) = cache.get_or_solve(&key, &inst.program, None);
                    train_store.push((inst, opt));
                }
            }
            // topology variants: new link set + recomputed tunnels
            for v in 0..3 {
                let mut vrng = rand::SeedableRng::seed_from_u64(700 + cid as u64 * 10 + v);
                let snap0 = &cluster.snapshots[0];
                if let Some((vtopo, vtun)) =
                    data::topology_variant(cluster, snap0, ds.cfg.tunnels_per_flow, &mut vrng)
                {
                    for (sid, snap) in cluster.snapshots.iter().enumerate().step_by(stride * 3) {
                        let inst = harp_core::Instance::compile(&vtopo, &vtun, &snap.tm);
                        let key = format!("anonnet/var{cid}.{v}/s{sid}");
                        let (opt, _) = cache.get_or_solve(&key, &inst.program, None);
                        train_store.push((inst, opt));
                    }
                }
            }
        }
    }
    cache.save();
    println!(
        "train snapshots: {}   val snapshots: {}",
        train_store.len(),
        val_store.len()
    );

    let train: Vec<(&Instance, f64)> = train_store.iter().map(|(i, o)| (i, *o)).collect();
    let val: Vec<(&Instance, f64)> = val_store.iter().map(|(i, o)| (i, *o)).collect();
    let zm = zoo::train_or_load(
        &ctx,
        "anonnet-harp-abc",
        zoo::Scheme::Harp { rau_iters: 7 },
        &train,
        &val,
        zoo::train_config(&ctx),
    );

    // --- test on clusters 6.. ---
    let per_test_cap = if ctx.quick { 6 } else { usize::MAX };
    let mut norm = Vec::new();
    for cid in 6..ds.clusters.len() {
        let instances = data::compile_cluster(&ds, cid);
        let opts = data::cluster_oracles(&mut cache, "anonnet", cid, &instances);
        let stride = (instances.len() / per_test_cap.min(instances.len())).max(1);
        for (inst, opt) in instances.iter().zip(&opts).step_by(stride) {
            let (mlu, _) = evaluate_model(
                zm.as_model(),
                &zm.store,
                inst,
                zoo::Scheme::Harp { rau_iters: 7 }.eval_options(),
            );
            norm.push(norm_mlu(mlu, *opt));
        }
        if cid % 12 == 0 {
            cache.save();
            println!("  ... through cluster {cid} ({} test points)", norm.len());
        }
    }
    cache.save();

    report::section("Figure 4 result (NormMLU CDF over unseen clusters)");
    report::normmlu_summary("HARP", &norm);
    println!(
        "\n  paper: 98% of snapshots <= 1.11; worst case 1.86 (trained on 3 clusters, tested on 72)"
    );

    ctx.write_json(
        "fig04",
        &serde_json::json!({
            "test_points": norm.len(),
            "cdf": report::cdf_json(&norm, 200),
            "stats": report::stats_json(&norm),
        }),
    );
}
