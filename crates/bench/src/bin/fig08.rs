//! Figure 8: partial failures on KDL — schemes trained on the original
//! topology, tested on topologies where a random link lost 50-90% of its
//! capacity (40 scenarios × test TMs in the paper).

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{evaluate_model, norm_mlu, Instance};
use harp_topology::{fail_link_partial, random_partial_failures};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 8: partial failures on KDL");
    let setup = data::kdl_setup(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("kdl_opt"));

    // the same trained models as fig07 (zoo cache)
    let cap = if ctx.quick { 24 } else { 170 };
    let train_idx: Vec<usize> = (0..setup.train_end)
        .step_by((setup.train_end / cap.min(setup.train_end)).max(1))
        .collect();
    let val_idx: Vec<usize> = (setup.train_end..setup.val_end).collect();
    let train_insts: Vec<Instance> = train_idx.iter().map(|&i| setup.instance(i)).collect();
    let val_insts: Vec<Instance> = val_idx.iter().map(|&i| setup.instance(i)).collect();
    let tp: Vec<(usize, &Instance)> = train_idx.iter().copied().zip(train_insts.iter()).collect();
    let vp: Vec<(usize, &Instance)> = val_idx.iter().copied().zip(val_insts.iter()).collect();
    let train_opts = data::static_oracles(&mut cache, "kdl", "base", &tp);
    let val_opts = data::static_oracles(&mut cache, "kdl", "base", &vp);
    let train: Vec<(&Instance, f64)> = train_insts.iter().zip(train_opts.iter().copied()).collect();
    let val: Vec<(&Instance, f64)> = val_insts.iter().zip(val_opts.iter().copied()).collect();

    let schemes = [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 4,
        },
    ];
    let models: Vec<zoo::ZooModel> = schemes
        .iter()
        .map(|&s| {
            zoo::train_or_load(
                &ctx,
                &format!("kdl-{}", s.label()),
                s,
                &train,
                &val,
                zoo::train_config(&ctx),
            )
        })
        .collect();

    // failure scenarios
    let n_scenarios = if ctx.quick { 12 } else { 40 };
    let mut rng = StdRng::seed_from_u64(8080);
    let scenarios = random_partial_failures(&setup.topo, &mut rng, n_scenarios, 0.5, 0.9);
    let test_idx = setup.test_indices(if ctx.quick { 6 } else { 78 });

    let mut nms: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for (si, scenario) in scenarios.iter().enumerate() {
        let failed_topo = fail_link_partial(&setup.topo, *scenario);
        for &i in &test_idx {
            let inst = setup.instance_on(&failed_topo, i);
            let pair = [(i, &inst)];
            let opt = data::static_oracles(&mut cache, "kdl", &format!("pfail{si}"), &pair)[0];
            for (mi, (scheme, zm)) in schemes.iter().zip(&models).enumerate() {
                let (mlu, _) =
                    evaluate_model(zm.as_model(), &zm.store, &inst, scheme.eval_options());
                nms[mi].push(norm_mlu(mlu, opt));
            }
        }
        if si % 4 == 3 {
            cache.save();
            println!("  ... {} scenarios done", si + 1);
        }
    }
    cache.save();

    report::section("Figure 8 result (CDF over scenarios x test TMs)");
    let mut json = serde_json::Map::new();
    for ((scheme, zm), v) in schemes.iter().zip(&models).zip(&nms) {
        report::normmlu_summary(zm.model.name(), v);
        json.insert(
            scheme.label(),
            serde_json::json!({
                "cdf": report::cdf_json(v, 150),
                "stats": report::stats_json(v),
            }),
        );
    }
    println!("\n  paper: HARP < 1.09 everywhere; DOTE p75 = 1.46, TEAL p75 = 1.48");
    ctx.write_json("fig08", &serde_json::Value::Object(json));
}
