//! CI chaos drills: run training under an injected fault (via
//! `HARP_FAULT`) and verify the fault-tolerance machinery did its job —
//! rollback on poisoned gradients, containment of killed workers, typed
//! rejection of corrupted checkpoints, and bitwise-faithful resume after
//! a hard `SIGKILL`.
//!
//! ```text
//! chaos_drill nan          # HARP_FAULT=nan-grad@step=N
//! chaos_drill worker-kill  # HARP_FAULT=kill-worker@epoch=E,worker=W
//! chaos_drill corrupt      # HARP_FAULT=corrupt-checkpoint@write=1,...
//! chaos_drill kill-resume  # no HARP_FAULT: spawns + kills a child run
//! ```
//!
//! Exits 0 when the drill's invariants hold, 1 with a diagnostic line
//! otherwise.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use harp_core::{
    train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig, TrainError, TrainReport,
    SNAPSHOT_FILE,
};
use harp_opt::MluOracle;
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Total epochs for the resume drills; the victim is killed well before.
const EPOCHS: usize = 4;
const DATA_SEED: u64 = 17;
const MODEL_SEED: u64 = 23;

fn fail(msg: &str) -> ! {
    eprintln!("chaos-drill: FAIL: {msg}");
    std::process::exit(1);
}

fn diamond() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).expect("diamond link");
    topo.add_link(1, 3, 10.0).expect("diamond link");
    topo.add_link(0, 2, 20.0).expect("diamond link");
    topo.add_link(2, 3, 20.0).expect("diamond link");
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 3], 2, 0.0);
    (topo, tunnels)
}

type Labeled = Vec<(Instance, f64)>;

fn dataset(n_train: usize) -> (Labeled, Labeled) {
    let (topo, tunnels) = diamond();
    let mut rng = StdRng::seed_from_u64(DATA_SEED);
    let oracle = MluOracle::default();
    let make = |rng: &mut StdRng| {
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(0, 3, rng.gen_range(5.0..15.0));
        tm.set_demand(3, 0, rng.gen_range(2.0..8.0));
        let inst = Instance::compile(&topo, &tunnels, &tm);
        let opt = oracle.solve(&inst.program).mlu;
        (inst, opt)
    };
    let train: Vec<(Instance, f64)> = (0..n_train).map(|_| make(&mut rng)).collect();
    let val: Vec<(Instance, f64)> = (0..4).map(|_| make(&mut rng)).collect();
    (train, val)
}

fn fresh_model() -> (Harp, ParamStore) {
    let mut store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(MODEL_SEED);
    let cfg = HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 8,
        d_model: 16,
        settrans_layers: 1,
        heads: 2,
        d_ff: 16,
        mlp_hidden: 16,
        rau_iters: 1,
    };
    let harp = Harp::new(&mut store, &mut mrng, cfg);
    (harp, store)
}

/// One deterministic training run on the shared fixture. `TrainConfig`
/// leaves `chaos: None`, so the global `HARP_FAULT` plan (if any) applies.
fn run(
    epochs: usize,
    workers: usize,
    n_train: usize,
    dir: Option<PathBuf>,
) -> (Result<TrainReport, TrainError>, Vec<Vec<f32>>) {
    let (train, val) = dataset(n_train);
    let train_refs: Vec<(&Instance, f64)> = train.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val.iter().map(|(i, o)| (i, *o)).collect();
    let (harp, mut store) = fresh_model();
    let cfg = TrainConfig {
        epochs,
        batch_size: 8,
        lr: 5e-3,
        patience: 0,
        workers,
        checkpoint_dir: dir,
        checkpoint_every: 1,
        ..Default::default()
    };
    let report = train_model(
        &harp,
        &mut store,
        &train_refs,
        &val_refs,
        cfg,
        EvalOptions::default(),
    );
    let params = store.snapshot();
    (report, params)
}

fn require_plan() -> std::sync::Arc<harp_chaos::FaultPlan> {
    harp_chaos::global_plan()
        .unwrap_or_else(|| fail("this drill needs a fault plan in HARP_FAULT, but none is set"))
}

fn assert_finite(params: &[Vec<f32>]) {
    if params.iter().flatten().any(|x| !x.is_finite()) {
        fail("parameters are non-finite after recovery");
    }
}

/// Gradients poisoned with NaN at a planned step: training must detect
/// the divergence, roll back, halve the LR, and still finish healthy.
fn drill_nan() {
    let plan = require_plan();
    let (report, params) = run(3, 1, 16, None);
    let report = report.unwrap_or_else(|e| fail(&format!("run did not recover: {e}")));
    if report.rollbacks == 0 {
        fail("nan-grad fault fired but no rollback was recorded");
    }
    if !plan.exhausted() {
        fail("nan-grad fault never fired — wrong step index in HARP_FAULT?");
    }
    assert_finite(&params);
    println!(
        "chaos-drill[nan]: ok — {} rollback(s), final val {:.4}",
        report.rollbacks, report.best_val
    );
}

/// A pool worker killed mid-epoch: the panic must surface as a structured
/// per-epoch error, trigger rollback, and the retried epoch must succeed.
fn drill_worker_kill() {
    let plan = require_plan();
    let (report, params) = run(3, 4, 16, None);
    let report = report.unwrap_or_else(|e| fail(&format!("run did not recover: {e}")));
    if report.rollbacks == 0 {
        fail("kill-worker fault fired but no rollback was recorded");
    }
    if !plan.exhausted() {
        fail("kill-worker fault never fired — check epoch/worker in HARP_FAULT");
    }
    assert_finite(&params);
    println!(
        "chaos-drill[worker-kill]: ok — contained panic, {} rollback(s)",
        report.rollbacks
    );
}

/// A checkpoint corrupted on its way to disk: the write itself succeeds
/// (a crash can't tell), but resume must REJECT the file with a typed
/// error naming the problem — never silently train from garbage.
fn drill_corrupt() {
    let _plan = require_plan();
    let dir = scratch("corrupt");
    // Two epochs → two snapshot writes; the plan corrupts the final one.
    let (first, _) = run(2, 1, 16, Some(dir.clone()));
    if let Err(e) = first {
        fail(&format!("initial checkpointed run failed outright: {e}"));
    }
    match run(EPOCHS, 1, 16, Some(dir.clone())) {
        (Err(TrainError::Checkpoint(e)), _) => {
            println!("chaos-drill[corrupt]: ok — corrupted snapshot rejected: {e}");
        }
        (Err(e), _) => fail(&format!("wrong error class for corrupt snapshot: {e}")),
        (Ok(_), _) => fail("resume silently accepted a corrupted snapshot"),
    }
    // Recovery path: delete the poisoned snapshot and train fresh.
    std::fs::remove_file(dir.join(SNAPSHOT_FILE)).expect("remove corrupted snapshot");
    let (fresh, params) = run(2, 1, 16, Some(dir.clone()));
    if let Err(e) = fresh {
        fail(&format!("fresh run after snapshot removal failed: {e}"));
    }
    assert_finite(&params);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hard-kill a checkpointing child mid-run, then resume from whatever
/// snapshot it left behind and verify the result is bitwise-identical to
/// a run that was never interrupted.
fn drill_kill_resume() {
    if harp_chaos::global_plan().is_some() {
        fail("kill-resume must run without HARP_FAULT (the kill IS the fault)");
    }
    let dir = scratch("kill_resume");
    let n_train = 64; // enough work per epoch that the kill lands mid-run

    println!("chaos-drill[kill-resume]: reference run ({EPOCHS} epochs, no checkpoints)");
    let (straight, straight_params) = run(EPOCHS, 4, n_train, None);
    let straight = straight.unwrap_or_else(|e| fail(&format!("reference run failed: {e}")));

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("victim")
        .arg(&dir)
        .env_remove("HARP_FAULT")
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn victim: {e}")));

    // Wait for the first snapshot to land, then pull the plug.
    let snapshot = dir.join(SNAPSHOT_FILE);
    let deadline = Instant::now() + Duration::from_secs(60);
    while !snapshot.exists() {
        if Instant::now() > deadline {
            let _ = child.kill();
            fail("victim produced no snapshot within 60s");
        }
        if let Ok(Some(status)) = child.try_wait() {
            fail(&format!(
                "victim exited before it could be killed: {status}"
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().expect("SIGKILL victim");
    let _ = child.wait();

    let killed_at = snapshot_epoch(&snapshot);
    if killed_at >= EPOCHS {
        fail(&format!(
            "victim checkpointed epoch {killed_at} before the kill — fixture too fast to drill"
        ));
    }
    println!("chaos-drill[kill-resume]: victim killed after epoch {killed_at}; resuming");

    let (resumed, resumed_params) = run(EPOCHS, 4, n_train, Some(dir.clone()));
    let resumed = resumed.unwrap_or_else(|e| fail(&format!("resume after kill failed: {e}")));
    if resumed.resumed_from != Some(killed_at) {
        fail(&format!(
            "resumed from {:?}, snapshot said epoch {killed_at}",
            resumed.resumed_from
        ));
    }
    if resumed.history.len() != straight.history.len() {
        fail("resumed history length differs from reference");
    }
    for (r, s) in resumed.history.iter().zip(&straight.history) {
        if r.train_loss.to_bits() != s.train_loss.to_bits()
            || r.val_norm_mlu.to_bits() != s.val_norm_mlu.to_bits()
        {
            fail(&format!(
                "epoch {} diverged from reference after resume",
                r.epoch
            ));
        }
    }
    if resumed.best_epoch != straight.best_epoch {
        fail("best_epoch differs from reference after resume");
    }
    let same = straight_params.len() == resumed_params.len()
        && straight_params.iter().zip(&resumed_params).all(|(a, b)| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        });
    if !same {
        fail("final parameters differ bitwise from reference after resume");
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("chaos-drill[kill-resume]: ok — resume is bitwise-identical to the uninterrupted run");
}

/// Internal: the kill target. Trains far more epochs than the parent
/// needs, checkpointing every epoch, until the parent kills it.
fn victim(dir: &Path) {
    let (res, _) = run(500, 4, 64, Some(dir.to_path_buf()));
    // Reaching here means the parent failed to kill us; exit nonzero so
    // the drill notices.
    if let Err(e) = res {
        eprintln!("chaos-drill[victim]: training failed: {e}");
    }
    std::process::exit(3);
}

/// Read `progress.next_epoch` out of a snapshot file.
fn snapshot_epoch(path: &Path) -> usize {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read snapshot: {e}")));
    let json: serde_json::Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("victim snapshot is not valid JSON: {e}")));
    json.get("progress")
        .and_then(|p| p.get("next_epoch"))
        .and_then(serde_json::Value::as_u64)
        .unwrap_or_else(|| fail("victim snapshot has no progress.next_epoch")) as usize
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("harp_chaos_drill_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("nan") => drill_nan(),
        Some("worker-kill") => drill_worker_kill(),
        Some("corrupt") => drill_corrupt(),
        Some("kill-resume") => drill_kill_resume(),
        Some("victim") => {
            let dir = args
                .get(2)
                .unwrap_or_else(|| fail("victim needs a checkpoint dir argument"));
            victim(Path::new(dir));
        }
        _ => {
            eprintln!("usage: chaos_drill <nan|worker-kill|corrupt|kill-resume>");
            std::process::exit(2);
        }
    }
}
