//! Training perf baseline: wall-clock `train_model` on a representative zoo
//! instance (HARP on GEANT with a gravity snapshot series) at worker counts
//! 1 / 2 / 4, writing `BENCH_train.json` at the repo root so the training
//! perf trajectory — and the serial-vs-parallel determinism contract — is
//! tracked in-tree from PR to PR.
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_train [out.json]`
//!
//! `--check <baseline.json> [--tolerance <pct>]` re-runs the same training
//! workload (per-worker-count min over 3 rounds, to sit under scheduler
//! noise) and exits non-zero if wall time regressed beyond the tolerance
//! (default 25%: whole-training wall clock is far noisier than kernel
//! timings) against the matching baseline rows, or if the determinism
//! contract (equal `best_epoch`, `best_val` within 1e-5 across worker
//! counts) breaks. This is the CI smoke gate for training perf.
//!
//! Note: speedup numbers are only meaningful up to the measurement host's
//! core count, which is recorded in the output as `host_cpus`.

use std::time::Instant;

use harp_core::{train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig};
use harp_opt::MluOracle;
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

/// GEANT snapshot series: one topology, `count` gravity TMs, optimal MLU
/// per snapshot from the LP oracle.
fn geant_series(count: usize) -> Vec<(Instance, f64)> {
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 4, 0.0);
    let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    cfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(42);
    let tms = gravity_series(&cfg, &mut rng, count);
    let scale = harp_datasets::calibrate_demand_scale(&topo, &tunnels, &tms, 0.7);
    let oracle = MluOracle::default();
    tms.into_iter()
        .map(|tm| {
            let inst = Instance::compile(&topo, &tunnels, &tm.scaled(scale));
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        })
        .collect()
}

/// One measured training run at a fixed worker count.
struct Run {
    workers: usize,
    wall_s: f64,
    best_epoch: usize,
    best_val: f64,
}

/// Compare this run's wall times against a baseline document: per worker
/// count, wall time must stay within `tol` (fractional) of the baseline,
/// and the determinism contract must hold within this run. Returns the
/// failure messages (empty = pass).
fn check_against_baseline(baseline: &serde_json::Value, runs: &[Run], tol: f64) -> Vec<String> {
    let base_runs: Vec<&serde_json::Value> = baseline
        .get("runs")
        .and_then(serde_json::Value::as_array)
        .map(|v| v.iter().collect())
        .unwrap_or_default();
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for run in runs {
        let Some(base) = base_runs.iter().find(|b| {
            b.get("workers").and_then(serde_json::Value::as_u64) == Some(run.workers as u64)
        }) else {
            continue;
        };
        let Some(base_wall) = base.get("wall_s").and_then(serde_json::Value::as_f64) else {
            continue;
        };
        if base_wall <= 0.0 {
            continue;
        }
        matched += 1;
        let ratio = run.wall_s / base_wall;
        println!(
            "  check workers {:<2} {ratio:>6.3}x baseline (tolerance {tol:.2})",
            run.workers
        );
        if ratio > 1.0 + tol {
            failures.push(format!(
                "workers {}: {:.2}s vs baseline {base_wall:.2}s ({:.1}% slower, tolerance {:.1}%)",
                run.workers,
                run.wall_s,
                (ratio - 1.0) * 100.0,
                tol * 100.0
            ));
        }
    }
    if matched == 0 {
        failures.push("no worker counts matched the baseline (stale baseline file?)".to_string());
    }
    // determinism contract: identical model selection regardless of workers
    if let Some(first) = runs.first() {
        for run in &runs[1..] {
            if run.best_epoch != first.best_epoch {
                failures.push(format!(
                    "determinism: best_epoch {} at workers {} vs {} at workers {}",
                    run.best_epoch, run.workers, first.best_epoch, first.workers
                ));
            }
            if (run.best_val - first.best_val).abs() > 1e-5 {
                failures.push(format!(
                    "determinism: best_val {:.8} at workers {} vs {:.8} at workers {}",
                    run.best_val, run.workers, first.best_val, first.workers
                ));
            }
        }
    }
    failures
}

fn main() {
    let mut out_path = "BENCH_train.json".to_string();
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => {
                check_path = Some(args.next().expect("--check requires a baseline file"));
            }
            "--tolerance" => {
                let v = args.next().expect("--tolerance requires a percentage");
                tolerance = v
                    .parse::<f64>()
                    .expect("--tolerance must be a number (percent)")
                    / 100.0;
            }
            other => out_path = other.to_string(),
        }
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("bench_train: building GEANT snapshot series (host_cpus = {host_cpus})");
    let series = geant_series(12);
    let (train_set, val_set) = series.split_at(9);
    let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

    // Baseline mode records one round. Check mode takes the per-worker
    // minimum over several rounds: interference on shared runners only
    // ever slows a run down, so the min estimates the noise floor and a
    // genuine regression still shows in every round.
    let rounds = if check_path.is_some() { 3 } else { 1 };
    let epochs = 3;
    let mut runs: Vec<Run> = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut wall_s = f64::INFINITY;
        let mut best_epoch = 0usize;
        let mut best_val = f64::NAN;
        for _ in 0..rounds {
            // fresh, identically-seeded model per run so runs are comparable
            let mut store = ParamStore::new();
            let mut mrng = StdRng::seed_from_u64(1);
            let harp = Harp::new(&mut store, &mut mrng, HarpConfig::default());
            let cfg = TrainConfig {
                epochs,
                batch_size: 4,
                lr: 3e-3,
                patience: 0, // fixed epoch count: every run does identical work
                workers,
                ..Default::default()
            };
            let t0 = Instant::now();
            let report = train_model(
                &harp,
                &mut store,
                &train_refs,
                &val_refs,
                cfg,
                EvalOptions::default(),
            )
            .expect("bench_train training run failed");
            wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            best_epoch = report.best_epoch;
            best_val = report.best_val;
        }
        let speedup = runs
            .iter()
            .find(|r| r.workers == 1)
            .map_or(1.0, |serial| serial.wall_s / wall_s);
        println!(
            "  workers {workers}: {wall_s:.2}s  ({speedup:.2}x vs serial)  \
             best epoch {best_epoch} val {best_val:.6}"
        );
        runs.push(Run {
            workers,
            wall_s,
            best_epoch,
            best_val,
        });
    }

    if let Some(base_path) = check_path {
        let text = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: read baseline {base_path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: parse baseline {base_path}: {e}");
                std::process::exit(1);
            }
        };
        let failures = check_against_baseline(&baseline, &runs, tolerance);
        if failures.is_empty() {
            println!("[check passed against {base_path}]");
            return;
        }
        for f in &failures {
            eprintln!("regression: {f}");
        }
        std::process::exit(1);
    }

    let serial_wall = runs
        .iter()
        .find(|r| r.workers == 1)
        .map_or(f64::NAN, |r| r.wall_s);
    let rows: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "workers": r.workers,
                "wall_s": r.wall_s,
                "speedup_vs_serial": serial_wall / r.wall_s,
                "best_epoch": r.best_epoch,
                "best_val_norm_mlu": r.best_val,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "suite": "train_model: HARP (default config) on GEANT, 9 train / 3 val gravity snapshots, 3 epochs, batch 4",
        "host_cpus": host_cpus,
        "note": "speedup is bounded by host_cpus; determinism contract requires best_epoch equal and best_val within 1e-5 across worker counts",
        "runs": rows,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");
}
