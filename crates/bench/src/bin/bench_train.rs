//! Training perf baseline: wall-clock `train_model` on a representative zoo
//! instance (HARP on GEANT with a gravity snapshot series) at worker counts
//! 1 / 2 / 4, writing `BENCH_train.json` at the repo root so the training
//! perf trajectory — and the serial-vs-parallel determinism contract — is
//! tracked in-tree from PR to PR.
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_train [out.json]`
//!
//! Note: speedup numbers are only meaningful up to the measurement host's
//! core count, which is recorded in the output as `host_cpus`.

use std::time::Instant;

use harp_core::{train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig};
use harp_opt::MluOracle;
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_traffic::{gravity_series, GravityConfig};
use rand::{rngs::StdRng, SeedableRng};

/// GEANT snapshot series: one topology, `count` gravity TMs, optimal MLU
/// per snapshot from the LP oracle.
fn geant_series(count: usize) -> Vec<(Instance, f64)> {
    let topo = harp_datasets::geant();
    let edge_nodes: Vec<usize> = (0..topo.num_nodes()).collect();
    let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 4, 0.0);
    let mut cfg = GravityConfig::uniform(topo.num_nodes(), 1.0);
    cfg.edge_nodes = edge_nodes;
    let mut rng = StdRng::seed_from_u64(42);
    let tms = gravity_series(&cfg, &mut rng, count);
    let scale = harp_datasets::calibrate_demand_scale(&topo, &tunnels, &tms, 0.7);
    let oracle = MluOracle::default();
    tms.into_iter()
        .map(|tm| {
            let inst = Instance::compile(&topo, &tunnels, &tm.scaled(scale));
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_train.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("bench_train: building GEANT snapshot series (host_cpus = {host_cpus})");
    let series = geant_series(12);
    let (train_set, val_set) = series.split_at(9);
    let train_refs: Vec<(&Instance, f64)> = train_set.iter().map(|(i, o)| (i, *o)).collect();
    let val_refs: Vec<(&Instance, f64)> = val_set.iter().map(|(i, o)| (i, *o)).collect();

    let epochs = 3;
    let mut runs = Vec::new();
    let mut serial_secs = None;
    for workers in [1usize, 2, 4] {
        // fresh, identically-seeded model per run so runs are comparable
        let mut store = ParamStore::new();
        let mut mrng = StdRng::seed_from_u64(1);
        let harp = Harp::new(&mut store, &mut mrng, HarpConfig::default());
        let cfg = TrainConfig {
            epochs,
            batch_size: 4,
            lr: 3e-3,
            patience: 0, // fixed epoch count: every run does identical work
            workers,
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = train_model(
            &harp,
            &mut store,
            &train_refs,
            &val_refs,
            cfg,
            EvalOptions::default(),
        );
        let secs = t0.elapsed().as_secs_f64();
        if workers == 1 {
            serial_secs = Some(secs);
        }
        let speedup = serial_secs.map_or(1.0, |s| s / secs);
        println!(
            "  workers {workers}: {secs:.2}s  ({speedup:.2}x vs serial)  \
             best epoch {} val {:.6}",
            report.best_epoch, report.best_val
        );
        runs.push(serde_json::json!({
            "workers": workers,
            "wall_s": secs,
            "speedup_vs_serial": speedup,
            "best_epoch": report.best_epoch,
            "best_val_norm_mlu": report.best_val,
        }));
    }

    let doc = serde_json::json!({
        "suite": "train_model: HARP (default config) on GEANT, 9 train / 3 val gravity snapshots, 3 epochs, batch 4",
        "host_cpus": host_cpus,
        "note": "speedup is bounded by host_cpus; determinism contract requires best_epoch equal and best_val within 1e-5 across worker counts",
        "runs": runs,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");
}
