//! Figure 7: invariance to tunnel ordering on the KDL topology — all three
//! schemes trained with the original tunnel order, tested with (left) the
//! same order and (right) a shuffled order. Bars = mean NormMLU over the
//! test set, error bars = standard deviation.

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{evaluate_model, norm_mlu, Instance};
use rand::{rngs::StdRng, SeedableRng};

fn mean_std(v: &[f64]) -> (f64, f64) {
    let n = v.len().max(1) as f64;
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 7: tunnel-order invariance on KDL");
    let setup = data::kdl_setup(&ctx);
    println!(
        "KDL-small: {} nodes, {} flows, {} tunnels",
        setup.topo.num_nodes(),
        setup.tunnels.num_flows(),
        setup.tunnels.num_tunnels()
    );
    let mut cache = data::OracleCache::open(&ctx.cache_path("kdl_opt"));

    // training set on original tunnel order
    let cap = if ctx.quick { 24 } else { 170 };
    let train_idx: Vec<usize> = (0..setup.train_end)
        .step_by((setup.train_end / cap.min(setup.train_end)).max(1))
        .collect();
    let val_idx: Vec<usize> = (setup.train_end..setup.val_end).collect();
    let train_insts: Vec<Instance> = train_idx.iter().map(|&i| setup.instance(i)).collect();
    let val_insts: Vec<Instance> = val_idx.iter().map(|&i| setup.instance(i)).collect();
    let train_pairs_idx: Vec<(usize, &Instance)> =
        train_idx.iter().copied().zip(train_insts.iter()).collect();
    let val_pairs_idx: Vec<(usize, &Instance)> =
        val_idx.iter().copied().zip(val_insts.iter()).collect();
    let train_opts = data::static_oracles(&mut cache, "kdl", "base", &train_pairs_idx);
    let val_opts = data::static_oracles(&mut cache, "kdl", "base", &val_pairs_idx);
    cache.save();
    let train: Vec<(&Instance, f64)> = train_insts.iter().zip(train_opts.iter().copied()).collect();
    let val: Vec<(&Instance, f64)> = val_insts.iter().zip(val_opts.iter().copied()).collect();

    let schemes = [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 4,
        },
    ];
    let models: Vec<zoo::ZooModel> = schemes
        .iter()
        .map(|&s| {
            zoo::train_or_load(
                &ctx,
                &format!("kdl-{}", s.label()),
                s,
                &train,
                &val,
                zoo::train_config(&ctx),
            )
        })
        .collect();

    // test instances: original and shuffled tunnel order
    let mut rng = StdRng::seed_from_u64(2024);
    let shuffled = setup.tunnels.shuffled(&mut rng);
    let test_idx = setup.test_indices(if ctx.quick { 10 } else { 78 });

    let mut json = serde_json::Map::new();
    println!("\n  {:<8} {:>18} {:>18}", "Scheme", "original", "shuffled");
    for (scheme, zm) in schemes.iter().zip(&models) {
        let mut orig = Vec::new();
        let mut shuf = Vec::new();
        for &i in &test_idx {
            let inst = setup.instance(i);
            let pair = [(i, &inst)];
            let opt = data::static_oracles(&mut cache, "kdl", "base", &pair)[0];
            let (mlu, _) = evaluate_model(zm.as_model(), &zm.store, &inst, scheme.eval_options());
            orig.push(norm_mlu(mlu, opt));
            // same TM, same physical tunnels, different order (optimal MLU
            // is order-independent so the cached value is reused)
            let sinst = setup.instance_with_tunnels(&shuffled, i);
            let (smlu, _) = evaluate_model(zm.as_model(), &zm.store, &sinst, scheme.eval_options());
            shuf.push(norm_mlu(smlu, opt));
        }
        let (mo, so) = mean_std(&orig);
        let (ms, ss) = mean_std(&shuf);
        println!(
            "  {:<8} {:>10.3} ± {:<5.3} {:>10.3} ± {:<5.3}",
            zm.model.name(),
            mo,
            so,
            ms,
            ss
        );
        json.insert(
            scheme.label(),
            serde_json::json!({
                "original": { "mean": mo, "std": so },
                "shuffled": { "mean": ms, "std": ss },
            }),
        );
    }
    cache.save();

    println!(
        "\n  paper: all schemes ~1.0 with original order; HARP unchanged under\n  \
         shuffling while DOTE and TEAL degrade (Fig 7 right group)"
    );
    ctx.write_json("fig07", &serde_json::Value::Object(json));
}
