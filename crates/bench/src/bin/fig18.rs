//! Figure 18 (appendix): TEAL's training behaviour — converges on KDL
//! (static link capacities across training examples) but struggles on
//! AnonNet (capacities vary within the training set).
//!
//! Substitution note (DESIGN.md): the original TEAL trains with deep RL;
//! we train with the differentiable MLU loss, which is *kinder* to TEAL.
//! The per-epoch median train NormMLU curves still show the qualitative
//! contrast the paper reports: fast convergence to ~1.0 on fixed-capacity
//! data, a high plateau on capacity-varying data.

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{train_model, EvalOptions, Instance};

fn curve(
    ctx: &Ctx,
    label: &str,
    scheme: zoo::Scheme,
    train: &[(&Instance, f64)],
    epochs: usize,
) -> Vec<f64> {
    let (model, mut store) = zoo::build_model(scheme, train[0].0, 18);
    let report = train_model(
        model.as_ref(),
        &mut store,
        train,
        &[],
        harp_core::TrainConfig {
            epochs,
            patience: 0, // run all epochs; we want the curve
            ..zoo::train_config(ctx)
        },
        EvalOptions::with_rescaling(),
    )
    .expect("fig18 training run failed");
    let curve: Vec<f64> = report.history.iter().map(|h| h.train_loss).collect();
    println!("  {label}:");
    for (e, v) in curve.iter().enumerate() {
        println!("    epoch {e:>3}: mean train NormMLU {v:.4}");
    }
    curve
}

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 18: TEAL learning curves (static vs varying capacities)");
    let epochs = if ctx.quick { 10 } else { 30 };

    // (a) KDL: capacities identical across training snapshots
    let setup = data::kdl_setup(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("kdl_opt"));
    let cap = if ctx.quick { 16 } else { 60 };
    let idx: Vec<usize> = (0..setup.train_end)
        .step_by((setup.train_end / cap.min(setup.train_end)).max(1))
        .collect();
    let insts: Vec<Instance> = idx.iter().map(|&i| setup.instance(i)).collect();
    let pairs_idx: Vec<(usize, &Instance)> = idx.iter().copied().zip(insts.iter()).collect();
    let opts = data::static_oracles(&mut cache, "kdl", "base", &pairs_idx);
    cache.save();
    let train_kdl: Vec<(&Instance, f64)> = insts.iter().zip(opts.iter().copied()).collect();
    let kdl_curve = curve(
        &ctx,
        "TEAL on KDL (static capacities)",
        zoo::Scheme::Teal {
            tunnels_per_flow: 4,
        },
        &train_kdl,
        epochs,
    );

    // (b) AnonNet large cluster: capacities vary snapshot to snapshot
    let ds = data::anonnet(&ctx);
    let mut acache = data::OracleCache::open(&ctx.cache_path("anonnet_opt"));
    let cid = ds.largest_clusters(1)[0];
    let instances = data::compile_cluster(&ds, cid);
    let aopts = data::cluster_oracles(&mut acache, "anonnet", cid, &instances);
    acache.save();
    let take = cap.min(instances.len());
    let train_anon: Vec<(&Instance, f64)> = instances
        .iter()
        .zip(aopts.iter().copied())
        .take(take)
        .collect();
    let anon_curve = curve(
        &ctx,
        "TEAL on AnonNet (varying capacities)",
        zoo::Scheme::Teal {
            tunnels_per_flow: ds.cfg.tunnels_per_flow,
        },
        &train_anon,
        epochs,
    );

    let final_kdl = *kdl_curve.last().unwrap();
    let final_anon = *anon_curve.last().unwrap();
    report::kv_table(&[
        ("TEAL final train NormMLU on KDL", format!("{final_kdl:.3}")),
        (
            "TEAL final train NormMLU on AnonNet",
            format!("{final_anon:.3}"),
        ),
        (
            "contrast (AnonNet / KDL)",
            format!("{:.2}x", final_anon / final_kdl),
        ),
    ]);
    println!(
        "\n  paper: TEAL's median NormMLU converges toward 1.0 on KDL but stays\n  \
         high (no convergence) on AnonNet"
    );
    ctx.write_json(
        "fig18",
        &serde_json::json!({
            "kdl_curve": kdl_curve,
            "anonnet_curve": anon_curve,
        }),
    );
}
