//! Figure 10: Abilene single-link failure drill — pooled NormMLU CDF over
//! all (test TM x failure scenario) combinations for HARP, DOTE, TEAL.
//! Shares trained models and the oracle cache with fig17.

use harp_bench::{cli::Ctx, data, drill, report, zoo};

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 10: Abilene failures (pooled CDF)");
    let setup = data::abilene_setup(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("abilene_opt"));
    let schemes = [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ];
    let models = drill::drill_models(&ctx, &setup, &mut cache, &schemes);
    let result = drill::run_drill(&ctx, &setup, &mut cache, &schemes, &models);

    let mut json = serde_json::Map::new();
    for (mi, name) in result.scheme_names.iter().enumerate() {
        let pooled = result.pooled(mi);
        report::normmlu_summary(name, &pooled);
        json.insert(
            schemes[mi].label(),
            serde_json::json!({
                "cdf": report::cdf_json(&pooled, 150),
                "stats": report::stats_json(&pooled),
            }),
        );
    }
    println!(
        "\n  paper: HARP median 1.0 / worst 1.33; DOTE and TEAL significantly\n  \
         worse (long tails beyond 2x optimal)"
    );
    ctx.write_json("fig10", &serde_json::Value::Object(json));
}
