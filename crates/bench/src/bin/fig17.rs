//! Figure 17 (appendix): Abilene single-link failure drill — per-scenario
//! NormMLU boxplots for HARP, DOTE, and TEAL.

use harp_bench::{cli::Ctx, data, drill, report, zoo};

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 17: Abilene single-link failures (boxplots)");
    let setup = data::abilene_setup(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("abilene_opt"));
    let schemes = [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Dote,
        zoo::Scheme::Teal {
            tunnels_per_flow: 8,
        },
    ];
    let models = drill::drill_models(&ctx, &setup, &mut cache, &schemes);
    let result = drill::run_drill(&ctx, &setup, &mut cache, &schemes, &models);

    let mut json_links = Vec::new();
    for (mi, name) in result.scheme_names.iter().enumerate() {
        report::section(&format!("{name} per-failure boxplots"));
        for (label, per_scheme) in &result.per_link {
            report::boxplot_row(label, &per_scheme[mi]);
        }
    }
    for (label, per_scheme) in &result.per_link {
        json_links.push(serde_json::json!({
            "link": label,
            "schemes": result.scheme_names.iter().zip(per_scheme).map(|(n, v)| {
                serde_json::json!({ "scheme": n, "stats": report::stats_json(v) })
            }).collect::<Vec<_>>(),
        }));
    }
    println!("\n  paper: HARP tight near 1.0; DOTE/TEAL show wide boxes up to ~3");
    ctx.write_json("fig17", &serde_json::json!({ "links": json_links }));
}
