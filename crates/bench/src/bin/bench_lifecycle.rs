//! End-to-end lifecycle drill: replays a seeded AnonNet drift sequence
//! (failure storms, maintenance windows, flash crowds) into a live
//! in-process `harp-serve` fleet while the online trainer fine-tunes on
//! each drifted window and hot-ships parameter generations over
//! `reload_checkpoint`. Scores the run as an SLA: NormMLU over time
//! against a per-snapshot LP oracle, time-to-recover per storm, and
//! served-model staleness.
//!
//! `--chaos` arms all three fault surfaces at once — connection drops at
//! the fleet's accept loop, a worker kill inside a fine-tune, and a
//! corrupt checkpoint on the first ship (the fleet must reject it and the
//! engine re-ships clean) — and the run must still be bitwise
//! reproducible from its seed: `--check` runs the scenario twice and
//! diffs the deterministic report projections.
//!
//! Results go to `BENCH_lifecycle.json`; `--assert-*` flags turn SLA
//! measurements into CI gates (non-zero exit on violation).
//!
//! `--trainer process` runs every retrain in an exec'd `harp-trainerd`
//! child under `harp-super` supervision (this binary doubles as the
//! child — it re-execs itself via `maybe_run_child`). `--chaos-proc`
//! arms a per-attempt escalation script of process faults (real
//! SIGKILLs, garbled IPC frames); with `--chaos` and no explicit script,
//! a default kill+garble ladder is armed. `--assert-no-trainer-deaths`
//! and `--assert-no-child-leaks` gate the supervision outcome.
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_lifecycle -- \
//!   [out.json] [--seed N] [--scenario quick|flagship] [--shards N] \
//!   [--trainer thread|process] [--chaos-proc "spec;spec;..."] \
//!   [--chaos] [--check] [--assert-zero-protocol-errors] \
//!   [--assert-recover-ticks N] [--assert-max-staleness N] \
//!   [--assert-mean-norm-mlu X] [--assert-no-trainer-deaths] \
//!   [--assert-no-child-leaks]`

use std::sync::Arc;

use harp_chaos::FaultPlan;
use harp_lifecycle::{run_lifecycle, LifecycleConfig, LifecycleReport, Scenario, TrainerMode};
use serde_json::Value;

struct Gates {
    zero_protocol_errors: bool,
    max_recover_ticks: Option<usize>,
    max_staleness: Option<u64>,
    max_mean_norm_mlu: Option<f64>,
    no_trainer_deaths: bool,
    no_child_leaks: bool,
}

/// Pids still parented to this process — a supervised run must reap every
/// trainer child it spawned, so after the drill this must come back empty.
#[cfg(target_os = "linux")]
fn leaked_children() -> Vec<String> {
    let mut kids = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for tid in tasks.flatten() {
            let raw = std::fs::read_to_string(tid.path().join("children")).unwrap_or_default();
            kids.extend(raw.split_whitespace().map(str::to_string));
        }
    }
    kids
}

#[cfg(not(target_os = "linux"))]
fn leaked_children() -> Vec<String> {
    Vec::new()
}

fn plan(spec: &str) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::parse(spec).expect("valid fault plan"))
}

fn report_json(r: &LifecycleReport, chaos: bool, shards: usize, trainer: TrainerMode) -> Value {
    let mut doc = r.to_json();
    if let Value::Object(map) = &mut doc {
        map.insert(
            "suite".into(),
            Value::from(format!(
                "harp-lifecycle drill: scenario {} seed {}, {} shard(s), chaos {}",
                r.scenario,
                r.seed,
                shards,
                if chaos { "on" } else { "off" }
            )),
        );
        map.insert(
            "host_cpus".into(),
            Value::from(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        );
        map.insert("chaos".into(), Value::from(chaos));
        map.insert("shards".into(), Value::from(shards as f64));
        map.insert(
            "trainer".into(),
            Value::from(match trainer {
                TrainerMode::Thread => "thread",
                TrainerMode::Process => "process",
            }),
        );
    }
    doc
}

#[allow(clippy::too_many_lines)]
fn main() {
    // when exec'd as a trainer child (HARP_TRAINERD_CHILD=1) this call
    // runs the child protocol on stdin/stdout and never returns
    harp_lifecycle::maybe_run_child();

    let mut out_path = "BENCH_lifecycle.json".to_string();
    let mut seed = 7u64;
    let mut scenario_name = "flagship".to_string();
    let mut shards: Option<usize> = None;
    let mut chaos = false;
    let mut check = false;
    let mut trainer = TrainerMode::Thread;
    let mut chaos_proc: Vec<String> = Vec::new();
    let mut gates = Gates {
        zero_protocol_errors: false,
        max_recover_ticks: None,
        max_staleness: None,
        max_mean_norm_mlu: None,
        no_trainer_deaths: false,
        no_child_leaks: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a number"))
        };
        match a.as_str() {
            "--seed" => seed = num("--seed") as u64,
            "--scenario" => {
                scenario_name = args.next().expect("--scenario requires quick|flagship");
            }
            "--shards" => shards = Some((num("--shards") as usize).max(1)),
            "--chaos" => chaos = true,
            "--check" => check = true,
            "--trainer" => {
                trainer = match args.next().as_deref() {
                    Some("thread") => TrainerMode::Thread,
                    Some("process") => TrainerMode::Process,
                    other => panic!("--trainer requires thread|process, got {other:?}"),
                };
            }
            "--chaos-proc" => {
                let script = args
                    .next()
                    .expect("--chaos-proc requires \"spec;spec;...\"");
                chaos_proc = script
                    .split(';')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--assert-zero-protocol-errors" => gates.zero_protocol_errors = true,
            "--assert-no-trainer-deaths" => gates.no_trainer_deaths = true,
            "--assert-no-child-leaks" => gates.no_child_leaks = true,
            "--assert-recover-ticks" => {
                gates.max_recover_ticks = Some(num("--assert-recover-ticks") as usize);
            }
            "--assert-max-staleness" => {
                gates.max_staleness = Some(num("--assert-max-staleness") as u64);
            }
            "--assert-mean-norm-mlu" => {
                gates.max_mean_norm_mlu = Some(num("--assert-mean-norm-mlu"));
            }
            other => out_path = other.to_string(),
        }
    }

    // fault-plan latches are one-shot per plan instance, so every run
    // (including the --check rerun) gets freshly parsed plans
    let build_cfg = |tag: &str| {
        let scenario = match scenario_name.as_str() {
            "quick" => Scenario::quick(seed),
            "flagship" => Scenario::flagship(seed),
            other => panic!("unknown scenario {other:?} (quick|flagship)"),
        };
        let mut cfg = LifecycleConfig::new(scenario).apply_env();
        if let Some(n) = shards {
            cfg.shards = n;
        }
        if !tag.is_empty() {
            cfg.work_dir = cfg.work_dir.join(tag);
        }
        if chaos {
            // all three fault surfaces at once: the fleet loses
            // connections, one fine-tune loses a worker mid-epoch, and the
            // first shipped checkpoint arrives corrupt (rejected,
            // re-shipped clean)
            cfg.chaos_serve = Some(plan("drop-conn@nth=6"));
            cfg.chaos_train = Some(plan("kill-worker@epoch=1,worker=0"));
            cfg.chaos_ship = Some(plan("corrupt-checkpoint@write=1,mode=flip"));
        }
        cfg.trainer = trainer;
        cfg.chaos_proc = chaos_proc.clone();
        if cfg.chaos_proc.is_empty() && chaos && trainer == TrainerMode::Process {
            // default process-fault ladder: attempt 0 is SIGKILLed
            // mid-forward, attempt 1 garbles an IPC frame, attempt 2 runs
            // clean — every retrain walks the whole escalation ladder
            cfg.chaos_proc = vec![
                "kill-trainer@epoch=0,phase=forward".to_string(),
                "garble-ipc@frame=2".to_string(),
            ];
        }
        for spec in &cfg.chaos_proc {
            // fail fast on a typo instead of diagnosing a dead trainer
            drop(plan(spec));
        }
        cfg
    };
    let cfg = build_cfg("");

    println!(
        "lifecycle drill: scenario {} seed {seed}, {} shard(s), trainer {}, chaos {}",
        cfg.scenario.name,
        cfg.shards,
        match cfg.trainer {
            TrainerMode::Thread => "thread",
            TrainerMode::Process => "process (supervised)",
        },
        if chaos { "on" } else { "off" }
    );
    if !cfg.chaos_proc.is_empty() {
        println!("  process-fault ladder: {}", cfg.chaos_proc.join(" ; "));
    }
    let report = match run_lifecycle(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: lifecycle run failed: {e}");
            // lint: allow(exit) — bench tooling: a failed drill is fatal
            std::process::exit(1);
        }
    };

    if check {
        println!("[--check: re-running for bitwise reproducibility]");
        let cfg2 = build_cfg("check");
        let second = match run_lifecycle(&cfg2) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: --check rerun failed: {e}");
                // lint: allow(exit) — bench tooling
                std::process::exit(1);
            }
        };
        if report.deterministic_json().to_string() != second.deterministic_json().to_string() {
            eprintln!("error: --check failed: two runs with seed {seed} diverged");
            // lint: allow(exit) — determinism gate
            std::process::exit(1);
        }
        println!("[--check ok: deterministic projections identical]");
    }

    println!(
        "  {} ticks over {} maintenance window(s): NormMLU mean {:.4}  p95 {:.4}  worst {:.4}",
        report.ticks.len(),
        report.maintenance_windows + 1,
        report.mean_norm_mlu,
        report.p95_norm_mlu,
        report.worst_norm_mlu
    );
    for s in &report.storms {
        println!(
            "  storm {} at t={} ({} links): ttr {}",
            s.id,
            s.at_tick,
            s.links.len(),
            s.ttr
                .map_or("never".to_string(), |t| format!("{t} tick(s)")),
        );
    }
    for r in &report.retrains {
        println!(
            "  retrain gen {} triggered t={}: {}{}",
            r.generation,
            r.trigger_tick,
            match (r.ok, r.shipped_tick) {
                (true, Some(t)) => format!("shipped t={t}"),
                (true, None) => "trained, never shipped".to_string(),
                (false, _) => format!("failed ({})", r.detail),
            },
            if r.corrupted_ship {
                " [ship corrupted -> re-shipped]"
            } else {
                ""
            }
        );
    }
    println!(
        "  staleness max {} gen(s) over {} tick(s); conn drops {}, reload rejects {}, \
         degraded {}, protocol errors {}",
        report.max_staleness,
        report.stale_ticks,
        report.conn_drops,
        report.reload_rejects,
        report.degraded_ticks,
        report.protocol_errors
    );
    if trainer == TrainerMode::Process {
        println!(
            "  supervision: restarts {}, ipc errors {}, trainer deaths {}, ships abandoned {}",
            report.trainer_restarts,
            report.trainer_ipc_errors,
            report.trainer_deaths,
            report.ships_abandoned
        );
    }

    let doc = report_json(&report, chaos, cfg.shards, trainer);
    let text = serde_json::to_string_pretty(&doc).expect("serialize lifecycle report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        // lint: allow(exit) — bench tooling: unwritable results path is fatal
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");

    // --- gates: turn SLA measurements into exit status for CI ---
    let mut failures = Vec::new();
    if gates.zero_protocol_errors && report.protocol_errors > 0 {
        failures.push(format!(
            "{} protocol errors (chaos must cause none)",
            report.protocol_errors
        ));
    }
    if let Some(max) = gates.max_recover_ticks {
        for s in &report.storms {
            match s.ttr {
                Some(t) if t <= max => {}
                Some(t) => failures.push(format!(
                    "storm {} recovered in {t} tick(s) > allowed {max}",
                    s.id
                )),
                None => failures.push(format!("storm {} never recovered", s.id)),
            }
        }
    }
    if let Some(max) = gates.max_staleness {
        if report.max_staleness > max {
            failures.push(format!(
                "max staleness {} generation(s) > allowed {max}",
                report.max_staleness
            ));
        }
    }
    if let Some(max) = gates.max_mean_norm_mlu {
        // NaN mean (no samples) must fail the gate too
        if report.mean_norm_mlu.is_nan() || report.mean_norm_mlu > max {
            failures.push(format!(
                "mean NormMLU {:.4} > allowed {max:.4}",
                report.mean_norm_mlu
            ));
        }
    }
    if gates.no_trainer_deaths && (report.trainer_deaths > 0 || report.ships_abandoned > 0) {
        failures.push(format!(
            "{} trainer death(s), {} abandoned ship(s) (supervision must always recover)",
            report.trainer_deaths, report.ships_abandoned
        ));
    }
    if gates.no_child_leaks {
        let kids = leaked_children();
        if !kids.is_empty() {
            failures.push(format!(
                "leaked child process(es) after the drill: {}",
                kids.join(", ")
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        // lint: allow(exit) — CI gate
        std::process::exit(1);
    }
}
