//! End-to-end lifecycle drill: replays a seeded AnonNet drift sequence
//! (failure storms, maintenance windows, flash crowds) into a live
//! in-process `harp-serve` fleet while the online trainer fine-tunes on
//! each drifted window and hot-ships parameter generations over
//! `reload_checkpoint`. Scores the run as an SLA: NormMLU over time
//! against a per-snapshot LP oracle, time-to-recover per storm, and
//! served-model staleness.
//!
//! `--chaos` arms all three fault surfaces at once — connection drops at
//! the fleet's accept loop, a worker kill inside a fine-tune, and a
//! corrupt checkpoint on the first ship (the fleet must reject it and the
//! engine re-ships clean) — and the run must still be bitwise
//! reproducible from its seed: `--check` runs the scenario twice and
//! diffs the deterministic report projections.
//!
//! Results go to `BENCH_lifecycle.json`; `--assert-*` flags turn SLA
//! measurements into CI gates (non-zero exit on violation).
//!
//! Usage: `cargo run --release -p harp-bench --bin bench_lifecycle -- \
//!   [out.json] [--seed N] [--scenario quick|flagship] [--shards N] \
//!   [--chaos] [--check] [--assert-zero-protocol-errors] \
//!   [--assert-recover-ticks N] [--assert-max-staleness N] \
//!   [--assert-mean-norm-mlu X]`

use std::sync::Arc;

use harp_chaos::FaultPlan;
use harp_lifecycle::{run_lifecycle, LifecycleConfig, LifecycleReport, Scenario};
use serde_json::Value;

struct Gates {
    zero_protocol_errors: bool,
    max_recover_ticks: Option<usize>,
    max_staleness: Option<u64>,
    max_mean_norm_mlu: Option<f64>,
}

fn plan(spec: &str) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::parse(spec).expect("valid fault plan"))
}

fn report_json(r: &LifecycleReport, chaos: bool, shards: usize) -> Value {
    let mut doc = r.to_json();
    if let Value::Object(map) = &mut doc {
        map.insert(
            "suite".into(),
            Value::from(format!(
                "harp-lifecycle drill: scenario {} seed {}, {} shard(s), chaos {}",
                r.scenario,
                r.seed,
                shards,
                if chaos { "on" } else { "off" }
            )),
        );
        map.insert(
            "host_cpus".into(),
            Value::from(std::thread::available_parallelism().map_or(1, |n| n.get()) as f64),
        );
        map.insert("chaos".into(), Value::from(chaos));
        map.insert("shards".into(), Value::from(shards as f64));
    }
    doc
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut out_path = "BENCH_lifecycle.json".to_string();
    let mut seed = 7u64;
    let mut scenario_name = "flagship".to_string();
    let mut shards: Option<usize> = None;
    let mut chaos = false;
    let mut check = false;
    let mut gates = Gates {
        zero_protocol_errors: false,
        max_recover_ticks: None,
        max_staleness: None,
        max_mean_norm_mlu: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> f64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a number"))
        };
        match a.as_str() {
            "--seed" => seed = num("--seed") as u64,
            "--scenario" => {
                scenario_name = args.next().expect("--scenario requires quick|flagship");
            }
            "--shards" => shards = Some((num("--shards") as usize).max(1)),
            "--chaos" => chaos = true,
            "--check" => check = true,
            "--assert-zero-protocol-errors" => gates.zero_protocol_errors = true,
            "--assert-recover-ticks" => {
                gates.max_recover_ticks = Some(num("--assert-recover-ticks") as usize);
            }
            "--assert-max-staleness" => {
                gates.max_staleness = Some(num("--assert-max-staleness") as u64);
            }
            "--assert-mean-norm-mlu" => {
                gates.max_mean_norm_mlu = Some(num("--assert-mean-norm-mlu"));
            }
            other => out_path = other.to_string(),
        }
    }

    // fault-plan latches are one-shot per plan instance, so every run
    // (including the --check rerun) gets freshly parsed plans
    let build_cfg = |tag: &str| {
        let scenario = match scenario_name.as_str() {
            "quick" => Scenario::quick(seed),
            "flagship" => Scenario::flagship(seed),
            other => panic!("unknown scenario {other:?} (quick|flagship)"),
        };
        let mut cfg = LifecycleConfig::new(scenario).apply_env();
        if let Some(n) = shards {
            cfg.shards = n;
        }
        if !tag.is_empty() {
            cfg.work_dir = cfg.work_dir.join(tag);
        }
        if chaos {
            // all three fault surfaces at once: the fleet loses
            // connections, one fine-tune loses a worker mid-epoch, and the
            // first shipped checkpoint arrives corrupt (rejected,
            // re-shipped clean)
            cfg.chaos_serve = Some(plan("drop-conn@nth=6"));
            cfg.chaos_train = Some(plan("kill-worker@epoch=1,worker=0"));
            cfg.chaos_ship = Some(plan("corrupt-checkpoint@write=1,mode=flip"));
        }
        cfg
    };
    let cfg = build_cfg("");

    println!(
        "lifecycle drill: scenario {} seed {seed}, {} shard(s), chaos {}",
        cfg.scenario.name,
        cfg.shards,
        if chaos { "on" } else { "off" }
    );
    let report = match run_lifecycle(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: lifecycle run failed: {e}");
            // lint: allow(exit) — bench tooling: a failed drill is fatal
            std::process::exit(1);
        }
    };

    if check {
        println!("[--check: re-running for bitwise reproducibility]");
        let cfg2 = build_cfg("check");
        let second = match run_lifecycle(&cfg2) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: --check rerun failed: {e}");
                // lint: allow(exit) — bench tooling
                std::process::exit(1);
            }
        };
        if report.deterministic_json().to_string() != second.deterministic_json().to_string() {
            eprintln!("error: --check failed: two runs with seed {seed} diverged");
            // lint: allow(exit) — determinism gate
            std::process::exit(1);
        }
        println!("[--check ok: deterministic projections identical]");
    }

    println!(
        "  {} ticks over {} maintenance window(s): NormMLU mean {:.4}  p95 {:.4}  worst {:.4}",
        report.ticks.len(),
        report.maintenance_windows + 1,
        report.mean_norm_mlu,
        report.p95_norm_mlu,
        report.worst_norm_mlu
    );
    for s in &report.storms {
        println!(
            "  storm {} at t={} ({} links): ttr {}",
            s.id,
            s.at_tick,
            s.links.len(),
            s.ttr
                .map_or("never".to_string(), |t| format!("{t} tick(s)")),
        );
    }
    for r in &report.retrains {
        println!(
            "  retrain gen {} triggered t={}: {}{}",
            r.generation,
            r.trigger_tick,
            match (r.ok, r.shipped_tick) {
                (true, Some(t)) => format!("shipped t={t}"),
                (true, None) => "trained, never shipped".to_string(),
                (false, _) => format!("failed ({})", r.detail),
            },
            if r.corrupted_ship {
                " [ship corrupted -> re-shipped]"
            } else {
                ""
            }
        );
    }
    println!(
        "  staleness max {} gen(s) over {} tick(s); conn drops {}, reload rejects {}, \
         degraded {}, protocol errors {}",
        report.max_staleness,
        report.stale_ticks,
        report.conn_drops,
        report.reload_rejects,
        report.degraded_ticks,
        report.protocol_errors
    );

    let doc = report_json(&report, chaos, cfg.shards);
    let text = serde_json::to_string_pretty(&doc).expect("serialize lifecycle report");
    if let Err(e) = std::fs::write(&out_path, text) {
        eprintln!("error: write {out_path}: {e}");
        // lint: allow(exit) — bench tooling: unwritable results path is fatal
        std::process::exit(1);
    }
    println!("[results -> {out_path}]");

    // --- gates: turn SLA measurements into exit status for CI ---
    let mut failures = Vec::new();
    if gates.zero_protocol_errors && report.protocol_errors > 0 {
        failures.push(format!(
            "{} protocol errors (chaos must cause none)",
            report.protocol_errors
        ));
    }
    if let Some(max) = gates.max_recover_ticks {
        for s in &report.storms {
            match s.ttr {
                Some(t) if t <= max => {}
                Some(t) => failures.push(format!(
                    "storm {} recovered in {t} tick(s) > allowed {max}",
                    s.id
                )),
                None => failures.push(format!("storm {} never recovered", s.id)),
            }
        }
    }
    if let Some(max) = gates.max_staleness {
        if report.max_staleness > max {
            failures.push(format!(
                "max staleness {} generation(s) > allowed {max}",
                report.max_staleness
            ));
        }
    }
    if let Some(max) = gates.max_mean_norm_mlu {
        // NaN mean (no samples) must fail the gate too
        if report.mean_norm_mlu.is_nan() || report.mean_norm_mlu > max {
            failures.push(format!(
                "mean NormMLU {:.4} > allowed {max:.4}",
                report.mean_norm_mlu
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("GATE FAILED: {f}");
        }
        // lint: allow(exit) — CI gate
        std::process::exit(1);
    }
}
