//! Figure 6: ablation — HARP vs HARP-NoRAU (no recurrent adjustment unit,
//! evaluated with local rescaling as in the paper) trained and tested on
//! one of the largest AnonNet clusters.

use harp_bench::{cli::Ctx, data, report, zoo};
use harp_core::{evaluate_model, norm_mlu, Instance};
use harp_runtime::Runtime;

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 6: RAU ablation (HARP vs HARP-NoRAU)");
    let ds = data::anonnet(&ctx);
    let mut cache = data::OracleCache::open(&ctx.cache_path("anonnet_opt"));
    let cid = ds.largest_clusters(1)[0];
    let instances = data::compile_cluster(&ds, cid);
    let opts = data::cluster_oracles(&mut cache, "anonnet", cid, &instances);
    cache.save();

    // temporal 75/12.5/12.5 split (train on the past, test on the
    // future) — matching the paper; an interleaved split leaks
    // temporally-adjacent TMs into training and erases DOTE's
    // capacity-blindness penalty
    let pairs: Vec<(&Instance, f64)> = instances.iter().zip(opts.iter().copied()).collect();
    let n = pairs.len();
    let train_end = n * 3 / 4;
    let val_end = train_end + (n - train_end) / 2;
    let (train, rest) = pairs.split_at(train_end);
    let (val, test) = rest.split_at(val_end - train_end);
    println!(
        "cluster {cid}: {} train / {} val / {} test snapshots",
        train.len(),
        val.len(),
        test.len()
    );

    let mut out = serde_json::Map::new();
    for scheme in [
        zoo::Scheme::Harp { rau_iters: 7 },
        zoo::Scheme::Harp { rau_iters: 0 },
    ] {
        let zm = zoo::train_or_load(
            &ctx,
            &format!("anonnet-c{cid}-{}", scheme.label()),
            scheme,
            train,
            val,
            zoo::train_config(&ctx),
        );
        // pure per-snapshot sweep: fan out across HARP_THREADS workers
        let nms: Vec<f64> = Runtime::global().par_map(test, |_, (inst, o)| {
            let (mlu, _) = evaluate_model(zm.as_model(), &zm.store, inst, scheme.eval_options());
            norm_mlu(mlu, *o)
        });
        report::normmlu_summary(zm.model.name(), &nms);
        out.insert(
            scheme.label(),
            serde_json::json!({
                "cdf": report::cdf_json(&nms, 100),
                "stats": report::stats_json(&nms),
            }),
        );
    }

    println!("\n  paper: RAU improves the median NormMLU from 1.56 to 1.01");
    ctx.write_json("fig06", &serde_json::Value::Object(out));
}
