//! Figure 3: link-capacity variation within one of the largest AnonNet
//! clusters (a: CDF of unique capacity values per link; b: CDF of
//! min-to-max capacity ratio) and (c) tunnel churn between the first and
//! last clusters.

use harp_bench::{cli::Ctx, data, report};
use harp_core::cdf_points;
use harp_paths::tunnel_churn;

fn main() {
    let ctx = Ctx::from_args();
    report::section("Figure 3: capacity variation within a large cluster + tunnel churn");
    let ds = data::anonnet(&ctx);
    let large = ds.largest_clusters(1)[0];
    let cluster = &ds.clusters[large];
    println!(
        "using cluster {} with {} snapshots, {} links",
        large,
        cluster.snapshots.len(),
        cluster.topo.links().len()
    );

    // per *undirected link*: unique capacity values and min/max ratio
    let mut unique_counts = Vec::new();
    let mut ratios = Vec::new();
    let mut zero_links = 0usize;
    let zero_cap = ds.cfg.zero_cap;
    for (_, _, f, _) in cluster.topo.links() {
        let vals: Vec<f64> = cluster.snapshots.iter().map(|s| s.capacities[f]).collect();
        let mut sorted: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        unique_counts.push(sorted.len() as f64);
        let mn = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = vals.iter().cloned().fold(0.0f64, f64::max);
        if mn <= zero_cap {
            zero_links += 1;
        }
        ratios.push(if mx > 0.0 { (mn / mx).min(1.0) } else { 0.0 });
    }

    let multi =
        unique_counts.iter().filter(|&&c| c > 1.0).count() as f64 / unique_counts.len() as f64;
    let max_unique = unique_counts.iter().cloned().fold(0.0, f64::max);
    let low_ratio = ratios.iter().filter(|&&r| r <= 0.8).count() as f64 / ratios.len() as f64;
    report::kv_table(&[
        (
            "links with >1 capacity value",
            format!("{:.1}% (paper: ~40%)", 100.0 * multi),
        ),
        (
            "max unique capacity values",
            format!("{} (paper: 7)", max_unique as usize),
        ),
        (
            "links with min/max <= 0.8",
            format!("{:.1}% (paper: ~20%)", 100.0 * low_ratio),
        ),
        (
            "links hitting zero capacity",
            format!(
                "{:.1}% (paper: ~5%)",
                100.0 * zero_links as f64 / ratios.len() as f64
            ),
        ),
    ]);

    // distinct capacity configurations across the cluster
    let mut configs: Vec<Vec<u64>> = cluster
        .snapshots
        .iter()
        .map(|s| s.capacities.iter().map(|c| c.to_bits()).collect())
        .collect();
    configs.sort();
    configs.dedup();
    println!("  distinct capacity configurations: {}", configs.len());

    // (c) tunnel churn first vs last cluster
    let first = &ds.clusters[0];
    let last = ds.clusters.last().unwrap();
    let (common, only_last, only_first) =
        tunnel_churn(&first.tunnels, &first.topo, &last.tunnels, &last.topo);
    let last_total = (common + only_last) as f64;
    let first_total = (common + only_first) as f64;
    report::kv_table(&[
        (
            "tunnels unique to LastCluster",
            format!(
                "{:.1}% of last ({} of {}; paper: ~20%)",
                100.0 * only_last as f64 / last_total,
                only_last,
                last_total as usize
            ),
        ),
        (
            "tunnels of FirstCluster no longer present",
            format!(
                "{:.1}% of first ({} of {}; paper: ~8%)",
                100.0 * only_first as f64 / first_total,
                only_first,
                first_total as usize
            ),
        ),
    ]);

    let json = serde_json::json!({
        "cluster": large,
        "unique_capacity_cdf": cdf_points(&unique_counts),
        "min_max_ratio_cdf": cdf_points(&ratios),
        "frac_links_multi_value": multi,
        "max_unique_values": max_unique,
        "frac_ratio_le_0_8": low_ratio,
        "frac_links_zero": zero_links as f64 / ratios.len() as f64,
        "capacity_configurations": configs.len(),
        "tunnel_churn": {
            "common": common,
            "unique_to_last": only_last,
            "missing_from_last": only_first,
        },
    });
    ctx.write_json("fig03", &json);
}
