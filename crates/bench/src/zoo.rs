//! The model zoo: construct, train-or-load, and cache trained models so
//! figures sharing a model (e.g. fig09/fig11 both use GEANT-trained HARP)
//! pay the training cost once.

use harp_core::{
    train_model, Dote, EvalOptions, Harp, HarpConfig, Instance, SplitModel, Teal, TealConfig,
    TrainConfig, TrainReport,
};
use harp_nn::{load_params, save_params};
use harp_tensor::ParamStore;
use rand::{rngs::StdRng, SeedableRng};

use crate::cli::Ctx;

/// A model plus its parameter store.
pub struct ZooModel {
    /// The model (trait object so callers can mix schemes).
    pub model: Box<dyn SplitModel>,
    /// Its parameters (trained or loaded).
    pub store: ParamStore,
    /// Training report when training actually ran this invocation.
    pub report: Option<TrainReport>,
}

impl ZooModel {
    /// Shorthand for `&*self.model`.
    pub fn as_model(&self) -> &dyn SplitModel {
        &*self.model
    }
}

/// Which scheme to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// HARP with the given RAU iterations (`0` = HARP-NoRAU).
    Harp {
        /// RAU recursions.
        rau_iters: usize,
    },
    /// DOTE (fixed layout, sized from the first training instance).
    Dote,
    /// TEAL with the given tunnels-per-flow policy width.
    Teal {
        /// Policy width (max tunnels per flow).
        tunnels_per_flow: usize,
    },
}

impl Scheme {
    /// Scheme label for file names and reports.
    pub fn label(&self) -> String {
        match self {
            Scheme::Harp { rau_iters: 0 } => "harp-norau".into(),
            Scheme::Harp { .. } => "harp".into(),
            Scheme::Dote => "dote".into(),
            Scheme::Teal { .. } => "teal".into(),
        }
    }

    /// Evaluation options the paper applies to this scheme (rescaling for
    /// DOTE/TEAL/NoRAU, none for HARP).
    pub fn eval_options(&self) -> EvalOptions {
        match self {
            Scheme::Harp { rau_iters } if *rau_iters > 0 => EvalOptions::default(),
            _ => EvalOptions::with_rescaling(),
        }
    }
}

/// Instantiate a scheme's model with fresh parameters (seeded).
pub fn build_model(
    scheme: Scheme,
    sample_instance: &Instance,
    seed: u64,
) -> (Box<dyn SplitModel>, ParamStore) {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let model: Box<dyn SplitModel> = match scheme {
        Scheme::Harp { rau_iters } => Box::new(Harp::new(
            &mut store,
            &mut rng,
            HarpConfig {
                rau_iters,
                ..HarpConfig::default()
            },
        )),
        Scheme::Dote => Box::new(Dote::new(
            &mut store,
            &mut rng,
            sample_instance,
            &[128, 128],
        )),
        Scheme::Teal { tunnels_per_flow } => Box::new(Teal::new(
            &mut store,
            &mut rng,
            TealConfig {
                tunnels_per_flow,
                ..TealConfig::default()
            },
        )),
    };
    (model, store)
}

/// Default training config scaled by mode.
pub fn train_config(ctx: &Ctx) -> TrainConfig {
    TrainConfig {
        epochs: if ctx.quick { 18 } else { 40 },
        batch_size: 8,
        lr: 3e-3,
        clip_norm: 5.0,
        seed: 17,
        patience: if ctx.quick { 6 } else { 10 },
        workers: 0, // resolve HARP_THREADS / available parallelism
        ..Default::default()
    }
}

/// Train a scheme on `(instance, optimal)` pairs, or load a cached
/// checkpoint from a previous run with the same `name` and mode.
pub fn train_or_load(
    ctx: &Ctx,
    name: &str,
    scheme: Scheme,
    train: &[(&Instance, f64)],
    val: &[(&Instance, f64)],
    cfg: TrainConfig,
) -> ZooModel {
    assert!(!train.is_empty(), "zoo: empty training set for {name}");
    let (model, mut store) = build_model(scheme, train[0].0, 1000 + seed_of(name));
    let path = ctx.model_path(name);
    if path.exists() {
        match load_params(&mut store, &path) {
            Ok(()) => {
                println!("[zoo] loaded {name} from {}", path.display());
                return ZooModel {
                    model,
                    store,
                    report: None,
                };
            }
            Err(e) => {
                // Stale checkpoints are recoverable (we retrain) but must
                // never be silent: surface the rejection reason.
                harp_obs::warn_always(
                    "zoo.stale_checkpoint",
                    &[
                        ("model", name.into()),
                        ("path", path.display().to_string().into()),
                        ("error", e.to_string().into()),
                        ("action", "retraining".into()),
                    ],
                );
            }
        }
    }
    let t0 = std::time::Instant::now();
    let report = train_model(&*model, &mut store, train, val, cfg, scheme.eval_options())
        // lint: allow(panic) — bench tooling: a failed training run is fatal
        .unwrap_or_else(|e| panic!("zoo: training {name} failed: {e}"));
    println!(
        "[zoo] trained {name}: best val NormMLU {:.4} (epoch {}) in {:.1?} over {} epochs",
        report.best_val,
        report.best_epoch,
        t0.elapsed(),
        report.history.len()
    );
    for h in &report.history {
        println!(
            "[zoo]   epoch {:>3}: train {:.4}  val {:.4}",
            h.epoch, h.train_loss, h.val_norm_mlu
        );
    }
    save_params(&store, &path).expect("save checkpoint");
    ZooModel {
        model,
        store,
        report: Some(report),
    }
}

fn seed_of(name: &str) -> u64 {
    name.bytes()
        .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64))
}
