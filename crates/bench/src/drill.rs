//! The single-link failure drill shared by the GEANT and Abilene
//! experiments (Figs 9, 10, 17): train each scheme on the healthy topology,
//! then test every (test TM × single complete link failure) combination.
//! Tunnels are *not* recomputed (the paper's setting): HARP must move
//! traffic off dead tunnels on its own; DOTE/TEAL get local rescaling.

use harp_core::{evaluate_model, norm_mlu, Instance};

use crate::cli::Ctx;
use crate::data::{static_oracles, OracleCache, StaticSetup};
use crate::zoo::{self, Scheme, ZooModel};

/// NormMLU samples per failure scenario per scheme.
pub struct DrillResult {
    /// `(link label, per-scheme NormMLU vectors over test TMs)`.
    pub per_link: Vec<(String, Vec<Vec<f64>>)>,
    /// Scheme names, aligned with the inner vectors.
    pub scheme_names: Vec<String>,
}

impl DrillResult {
    /// All samples of scheme `i` pooled across failure scenarios.
    pub fn pooled(&self, scheme: usize) -> Vec<f64> {
        self.per_link
            .iter()
            .flat_map(|(_, per_scheme)| per_scheme[scheme].iter().copied())
            .collect()
    }
}

/// Train (or load) the three schemes on the healthy topology.
pub fn drill_models(
    ctx: &Ctx,
    setup: &StaticSetup,
    cache: &mut OracleCache,
    schemes: &[Scheme],
) -> Vec<ZooModel> {
    let cap = if ctx.quick { 24 } else { 96 };
    let train_idx: Vec<usize> = (0..setup.train_end)
        .step_by((setup.train_end / cap.min(setup.train_end)).max(1))
        .collect();
    let val_idx: Vec<usize> = (setup.train_end..setup.val_end).collect();
    let train_insts: Vec<Instance> = train_idx.iter().map(|&i| setup.instance(i)).collect();
    let val_insts: Vec<Instance> = val_idx.iter().map(|&i| setup.instance(i)).collect();
    let tp: Vec<(usize, &Instance)> = train_idx.iter().copied().zip(train_insts.iter()).collect();
    let vp: Vec<(usize, &Instance)> = val_idx.iter().copied().zip(val_insts.iter()).collect();
    let train_opts = static_oracles(cache, setup.name, "base", &tp);
    let val_opts = static_oracles(cache, setup.name, "base", &vp);
    // Partial-failure augmentation for the *training* set only: random
    // links lose 50-95% of capacity. Complete failures remain unseen (they
    // are what the drill tests); this teaches the RAU's bottleneck-feedback
    // rule at larger utilization magnitudes so it extrapolates to dead
    // links — the behaviour §4 of the paper reports for HARP
    // ("automatically ensures no traffic is carried on unavailable
    // tunnels"). See EXPERIMENTS.md for the negative result without it.
    let mut aug_insts: Vec<Instance> = Vec::new();
    {
        use rand::seq::SliceRandom;
        use rand::Rng;
        let mut arng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(4242);
        let links = setup.topo.links();
        for (ai, &i) in train_idx.iter().enumerate().step_by(2) {
            let mut topo = setup.topo.clone();
            for _ in 0..(1 + ai % 2) {
                let &(_, _, f, r) = links.choose(&mut arng).expect("links");
                // half mild (50-90%), half near-complete (95-99.5%) —
                // complete failures (the capacity floor) remain unseen
                let sev = if arng.gen_bool(0.5) {
                    arng.gen_range(0.5..0.9)
                } else {
                    arng.gen_range(0.95..0.995)
                };
                let c = topo.capacity(f);
                topo.set_capacity(f, c * (1.0 - sev)).expect("cap");
                let c = topo.capacity(r);
                topo.set_capacity(r, c * (1.0 - sev)).expect("cap");
            }
            aug_insts.push(setup.instance_on(&topo, i));
        }
    }
    let aug_pairs: Vec<(usize, &Instance)> = aug_insts.iter().enumerate().collect();
    let aug_opts = static_oracles(cache, setup.name, "aug", &aug_pairs);
    cache.save();
    let mut train: Vec<(&Instance, f64)> =
        train_insts.iter().zip(train_opts.iter().copied()).collect();
    let n_aug = aug_insts.len();
    // keep the last two augmented instances for validation so model
    // selection cannot early-stop on a trivially-perfect healthy val set
    train.extend(
        aug_insts[..n_aug.saturating_sub(2)]
            .iter()
            .zip(aug_opts.iter().copied()),
    );
    let mut val: Vec<(&Instance, f64)> = val_insts.iter().zip(val_opts.iter().copied()).collect();
    val.extend(
        aug_insts[n_aug.saturating_sub(2)..]
            .iter()
            .zip(aug_opts[n_aug.saturating_sub(2)..].iter().copied()),
    );
    schemes
        .iter()
        .map(|&s| {
            zoo::train_or_load(
                ctx,
                &format!("{}-{}", setup.name, s.label()),
                s,
                &train,
                &val,
                zoo::train_config(ctx),
            )
        })
        .collect()
}

/// Run the drill: every undirected link failed completely (capacity floored
/// at `1e-4`), over the setup's test TMs.
pub fn run_drill(
    ctx: &Ctx,
    setup: &StaticSetup,
    cache: &mut OracleCache,
    schemes: &[Scheme],
    models: &[ZooModel],
) -> DrillResult {
    let test_idx = setup.test_indices(if ctx.quick { 6 } else { 32 });
    let mut per_link = Vec::new();
    for (li, (u, v, f, r)) in setup.topo.links().into_iter().enumerate() {
        let mut failed = setup.topo.clone();
        failed.set_capacity(f, 1e-4).expect("edge");
        failed.set_capacity(r, 1e-4).expect("edge");
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
        for &i in &test_idx {
            let inst = setup.instance_on(&failed, i);
            let pair = [(i, &inst)];
            let opt = static_oracles(cache, setup.name, &format!("fail{li}"), &pair)[0];
            for (mi, (scheme, zm)) in schemes.iter().zip(models).enumerate() {
                let (mlu, _) =
                    evaluate_model(zm.as_model(), &zm.store, &inst, scheme.eval_options());
                per_scheme[mi].push(norm_mlu(mlu, opt));
            }
        }
        per_link.push((format!("{u}-{v}"), per_scheme));
        if li % 8 == 7 {
            cache.save();
            println!("  ... {} links drilled", li + 1);
        }
    }
    cache.save();
    DrillResult {
        per_link,
        scheme_names: models.iter().map(|m| m.model.name().to_string()).collect(),
    }
}
