//! # harp-bench
//!
//! The experiment harness: shared dataset construction, oracle caching,
//! model training/caching ("the zoo"), and reporting utilities used by the
//! per-figure binaries (`fig01` ... `fig18`, `table1`) that regenerate every
//! table and figure of the paper's evaluation. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured results.

pub mod cli;
pub mod data;
pub mod drill;
pub mod report;
pub mod zoo;
