//! Terminal reporting: aligned tables, CDF summaries, and JSON helpers.

use harp_core::{boxplot_stats, fraction_at_most, percentile};

/// Print a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Print an aligned two-column table.
pub fn kv_table(rows: &[(&str, String)]) {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("  {k:<w$}  {v}");
    }
}

/// Print a CDF summary line for a NormMLU distribution, mirroring how the
/// paper quotes its CDFs (median / p90 / p98 / p99.9 / max, plus the
/// fraction within 1.10 of optimal).
pub fn normmlu_summary(label: &str, values: &[f64]) {
    if values.is_empty() {
        println!("  {label:<14} (no data)");
        return;
    }
    // non-empty (guarded above), so every percentile is Some
    let pct = |p: f64| percentile(values, p).unwrap_or(f64::NAN);
    println!(
        "  {label:<14} n={:<6} median={:.3} p90={:.3} p98={:.3} p99.9={:.3} max={:.3}  frac<=1.10: {:.1}%",
        values.len(),
        pct(50.0),
        pct(90.0),
        pct(98.0),
        pct(99.9),
        pct(100.0),
        100.0 * fraction_at_most(values, 1.10),
    );
}

/// Print a boxplot row (the paper's per-failure-scenario plots).
pub fn boxplot_row(label: &str, values: &[f64]) {
    let Some(b) = boxplot_stats(values) else {
        println!("  {label:<18} (no data)");
        return;
    };
    println!(
        "  {label:<18} min={:.3} q1={:.3} med={:.3} q3={:.3} p90={:.3} max={:.3}",
        b.min, b.q1, b.median, b.q3, b.p90, b.max
    );
}

/// Downsampled CDF points as JSON (at most `max_points`).
pub fn cdf_json(values: &[f64], max_points: usize) -> serde_json::Value {
    let pts = harp_core::cdf_points(values);
    let stride = (pts.len() / max_points.max(1)).max(1);
    let sampled: Vec<serde_json::Value> = pts
        .iter()
        .step_by(stride)
        .chain(pts.last())
        .map(|(v, f)| serde_json::json!([v, f]))
        .collect();
    serde_json::Value::Array(sampled)
}

/// Summary statistics as JSON.
pub fn stats_json(values: &[f64]) -> serde_json::Value {
    if values.is_empty() {
        return serde_json::json!({ "n": 0 });
    }
    // non-empty (guarded above), so every percentile is Some
    let pct = |p: f64| percentile(values, p).unwrap_or(f64::NAN);
    serde_json::json!({
        "n": values.len(),
        "median": pct(50.0),
        "p90": pct(90.0),
        "p98": pct(98.0),
        "p999": pct(99.9),
        "max": pct(100.0),
        "mean": values.iter().sum::<f64>() / values.len() as f64,
        "frac_within_1_10": fraction_at_most(values, 1.10),
        "frac_within_1_11": fraction_at_most(values, 1.11),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_json_downsamples_and_keeps_last() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let json = cdf_json(&values, 50);
        let arr = json.as_array().unwrap();
        assert!(arr.len() <= 52);
        let last = arr.last().unwrap().as_array().unwrap();
        assert_eq!(last[0].as_f64().unwrap(), 999.0);
        assert!((last[1].as_f64().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_json_fields() {
        let v = vec![1.0, 1.05, 1.2, 2.0];
        let s = stats_json(&v);
        assert_eq!(s["n"], 4);
        assert!(s["median"].as_f64().unwrap() > 1.0);
        assert!((s["frac_within_1_10"].as_f64().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(stats_json(&[])["n"], 0);
    }
}
