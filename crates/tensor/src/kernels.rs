//! Low-level dense kernels shared by the tape's forward and backward passes.
//!
//! All kernels operate on plain `&[f32]` slices in row-major layout. They are
//! public so that non-autodiff code (e.g. the LP solvers' dense algebra or
//! inference-only paths) can reuse them.

/// `c = a[m,k] * b[k,n]` (row-major, accumulating into a fresh buffer).
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul: lhs size");
    assert_eq!(b.len(), k * n, "matmul: rhs size");
    let mut c = vec![0.0f32; m * n];
    // ikj loop order: streams through b and c rows, good cache behaviour.
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    }
    c
}

/// `c += a^T[k,m]^T... ` — accumulate `a[m,k]^T * b[m,n]` into `out[k,n]`.
/// Used for weight gradients: `dW = x^T * dy`.
pub fn matmul_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(out.len(), k * n, "matmul_at_b: out size");
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[i * n..(i + 1) * n];
            let orow = &mut out[kk * n..(kk + 1) * n];
            for (oj, bj) in orow.iter_mut().zip(brow) {
                *oj += aik * bj;
            }
        }
    }
}

/// Accumulate `a[m,k] * b[k,n]^T`→ wait: computes `a[m,n] * b[k,n]^T` i.e.
/// `out[m,k] += a * b^T` where `a` is `[m,n]` and `b` is `[k,n]`.
/// Used for input gradients: `dx = dy * W^T`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, n: usize, k: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * n, "matmul_a_bt: lhs size");
    assert_eq!(b.len(), k * n, "matmul_a_bt: rhs size");
    assert_eq!(out.len(), m * k, "matmul_a_bt: out size");
    for i in 0..m {
        let arow = &a[i * n..(i + 1) * n];
        for kk in 0..k {
            let brow = &b[kk * n..(kk + 1) * n];
            let mut acc = 0.0f32;
            for (aj, bj) in arow.iter().zip(brow) {
                acc += aj * bj;
            }
            out[i * k + kk] += acc;
        }
    }
}

/// Transpose a `[m, n]` matrix into `[n, m]`.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * n, "transpose: size");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let mx = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Stable masked softmax over a slice, in place. `mask[i] == 0.0` excludes
/// position `i` (probability exactly 0); all-masked rows become all-zero.
pub fn masked_softmax_inplace(x: &mut [f32], mask: &[f32]) {
    assert_eq!(x.len(), mask.len(), "masked softmax: mask length");
    let mut mx = f32::NEG_INFINITY;
    for (v, m) in x.iter().zip(mask) {
        if *m != 0.0 && *v > mx {
            mx = *v;
        }
    }
    if mx == f32::NEG_INFINITY {
        x.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for (v, m) in x.iter_mut().zip(mask) {
        if *m != 0.0 {
            *v = (*v - mx).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Backward of a softmax row: given the softmax output `y` and upstream
/// gradient `dy`, writes `dx[i] = y[i] * (dy[i] - sum_j y[j] dy[j])` into
/// `dx` (accumulating).
pub fn softmax_backward_row(y: &[f32], dy: &[f32], dx: &mut [f32]) {
    let dot: f32 = y.iter().zip(dy).map(|(a, b)| a * b).sum();
    for ((d, yv), dyv) in dx.iter_mut().zip(y).zip(dy) {
        *d += yv * (dyv - dot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_basic() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let c = matmul(&[1., 2., 3., 4.], &[5., 6., 7., 8.], 2, 2, 2);
        assert_eq!(c, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rect() {
        // [1,3] x [3,2]
        let c = matmul(&[1., 2., 3.], &[1., 0., 0., 1., 1., 1.], 1, 3, 2);
        assert_eq!(c, vec![4., 5.]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = [1., 2., 3., 4., 5., 6.]; // [3,2]
        let b = [1., 0., 2., 1., 0., 3.]; // [3,2]
        let mut out = vec![0.0; 4];
        matmul_at_b(&a, &b, 3, 2, 2, &mut out);
        let at = transpose(&a, 3, 2);
        let expect = matmul(&at, &b, 2, 3, 2);
        assert_eq!(out, expect);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = [1., 2., 3., 4.]; // [2,2]
        let b = [5., 6., 7., 8., 9., 10.]; // [3,2]
        let mut out = vec![0.0; 6];
        matmul_a_bt(&a, &b, 2, 2, 3, &mut out);
        let bt = transpose(&b, 3, 2);
        let expect = matmul(&a, &bt, 2, 2, 3);
        assert_eq!(out, expect);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut x = vec![1000.0, 1000.0];
        softmax_inplace(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_excludes() {
        let mut x = vec![5.0, 1.0, 1.0];
        masked_softmax_inplace(&mut x, &[0.0, 1.0, 1.0]);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_all_masked() {
        let mut x = vec![5.0, 1.0];
        masked_softmax_inplace(&mut x, &[0.0, 0.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
