//! Low-level dense kernels shared by the tape's forward and backward passes.
//!
//! All kernels operate on plain `&[f32]` slices in row-major layout. They are
//! public so that non-autodiff code (e.g. the LP solvers' dense algebra or
//! inference-only paths) can reuse them.
//!
//! ## Microkernel architecture
//!
//! All three matmul variants (`c = a*b`, `out += a^T*b`, `out += a*b^T`) and
//! the fused `act(a*b + bias)` kernel run through one GEMM driver:
//!
//! 1. **Packed-B panels.** The right-hand operand is packed once per call
//!    (on the calling thread, into a thread-local scratch buffer) into
//!    column panels of up to [`MAX_PANEL`] columns, each padded with zero
//!    columns to a multiple of [`LANES`]. Packing also folds in the
//!    transpose for the `a*b^T` variant, so every inner loop reads the
//!    panel stride-1 — this is what fixes the historical `matmul_a_bt`
//!    outlier (it used to stride `b` column-wise per dot product).
//! 2. **Lane-array microkernel.** The inner kernel holds a register block
//!    of `MR x NG` fixed-size `[f32; 8]` accumulator lane arrays (`MR`
//!    output rows by `NG` lane groups = up to 48 output columns) and runs
//!    the reduction index innermost. The fixed-size arrays autovectorize to
//!    8-lane FMA vector code under `-C target-cpu=native` (see
//!    `.cargo/config.toml`) with zero dependencies and no `unsafe`. The
//!    recorded HARP/DOTE/TEAL hot shapes are tall-skinny (m ≈ 33k,
//!    n/k ∈ {8, 9, 16, 20, 32, 48}), so a whole output row fits in one
//!    panel and the monomorphized `NG ∈ 1..=6` instances cover every
//!    recorded width exactly.
//!
//! ## Determinism contract
//!
//! Per output element the accumulation order is **fixed and identical on
//! every path**: reduction-index increasing (k for products, sample index
//! for gradient reductions), accumulated in a register starting from `0.0`,
//! then added to the output element once. Lane grouping vectorizes *across*
//! output elements, never within one element's reduction, so blocking,
//! shape specialization, and row partitioning cannot reorder any element's
//! float operations. Rows are split across a [`harp_runtime::Runtime`]
//! with strip-aligned boundaries ([`Runtime::par_row_blocks_grained`]);
//! each output row is computed entirely by one worker, so serial and
//! parallel outputs are **bitwise identical** for every worker count —
//! verified by property tests below. All paths multiply-accumulate through
//! [`fmla`], so one binary uses one rounding scheme throughout (hardware
//! FMA when the build target has it).
//!
//! The convenience entry points ([`matmul`], [`matmul_at_b`],
//! [`matmul_a_bt`], [`matmul_bias_act`]) consult [`Runtime::global`] (the
//! `HARP_THREADS` environment knob) above a size threshold; the `*_with`
//! variants honor an explicit runtime unconditionally, which tests and
//! benchmarks use to pin the worker count.

use std::cell::RefCell;

use harp_obs::Counter;
use harp_runtime::Runtime;

/// Multiply-accumulates executed by the matmul kernels (all variants).
static MACS: Counter = Counter::new("kernels.macs");
/// Matmul-family calls that ran on the calling thread only.
static CALLS_SERIAL: Counter = Counter::new("kernels.calls_serial");
/// Matmul-family calls that fanned output rows across the worker pool.
static CALLS_PARALLEL: Counter = Counter::new("kernels.calls_parallel");
/// Output rows dispatched to the pool by parallel matmul-family calls.
static ROWS_PARALLEL: Counter = Counter::new("kernels.rows_parallel");
/// Fused matmul+bias+activation kernel calls.
static CALLS_FUSED: Counter = Counter::new("kernels.calls_fused");

/// Credit one matmul-family call of `macs` multiply-accumulates and
/// `rows` output rows to the kernel counters. A branch when obs is off.
#[inline]
fn count_call(rt: Runtime, macs: usize, rows: usize) {
    if !harp_obs::enabled() {
        return;
    }
    MACS.add(macs as u64);
    if rt.workers() > 1 && rows > 1 {
        CALLS_PARALLEL.add(1);
        ROWS_PARALLEL.add(rows as u64);
    } else {
        CALLS_SERIAL.add(1);
    }
}

/// Accumulator lane width: one `[f32; LANES]` array is one SIMD register
/// under `-C target-cpu=native` on AVX2-class hardware.
pub const LANES: usize = 8;
/// Widest packed-B panel (6 lane groups): a full output-row register block
/// for every recorded tall-skinny shape (n ≤ 48).
const MAX_PANEL: usize = 48;
/// Output rows per register-blocked microkernel strip; worker partitions
/// are aligned to this grain so strips never straddle two workers.
const MR_GRAIN: usize = 4;
/// Minimum multiply-accumulate count before the convenience entry points
/// fan rows out across [`Runtime::global`]; below this, scoped-thread spawn
/// overhead (tens of microseconds) exceeds the win. Retuned upward from
/// the scalar-kernel era (1<<21): the vectorized kernels finish ~4-8x
/// sooner, so the spawn cost amortizes later.
const PAR_MIN_MACS: usize = 1 << 22;

/// Worker fan-out for `macs` multiply-accumulates: the global runtime above
/// the threshold, serial below it.
fn auto_runtime(macs: usize) -> Runtime {
    if macs >= PAR_MIN_MACS {
        Runtime::global()
    } else {
        Runtime::serial()
    }
}

/// Fused multiply-add when the build target has hardware FMA, separate
/// mul+add otherwise. The compile-time branch keeps every kernel path on
/// one rounding scheme per binary (and avoids the catastrophically slow
/// libm soft-fma that `f32::mul_add` becomes without the instruction).
#[inline(always)]
fn fmla(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

#[inline]
fn pad_lanes(w: usize) -> usize {
    w.div_ceil(LANES) * LANES
}

thread_local! {
    /// Per-thread packing scratch, reused across kernel calls so steady-state
    /// GEMMs allocate nothing. Taken out of the cell for the duration of a
    /// call (never borrowed across the parallel section), so nested kernel
    /// calls and worker threads each simply see their own (possibly fresh)
    /// buffer.
    static PACK_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Pack the right-hand GEMM operand into zero-padded column panels.
///
/// `trans == false`: `rhs` is `[red, cols]` row-major and is packed as-is.
/// `trans == true`: `rhs` is `[cols, red]` row-major and the transpose is
/// packed, so the caller's reduction always walks panel rows stride-1.
/// Panel `p` covers output columns `[p*MAX_PANEL, ...)`, stores
/// `red * pad_lanes(width)` floats contiguously, and pads its tail columns
/// with zeros (harmless: padded lanes are never stored to the output).
fn pack_rhs(rhs: &[f32], red: usize, cols: usize, trans: bool, dst: &mut Vec<f32>) {
    dst.clear();
    let mut total = 0;
    let mut c0 = 0;
    while c0 < cols {
        let w = (cols - c0).min(MAX_PANEL);
        total += red * pad_lanes(w);
        c0 += w;
    }
    dst.resize(total, 0.0);
    let mut off = 0;
    c0 = 0;
    while c0 < cols {
        let w = (cols - c0).min(MAX_PANEL);
        let wp = pad_lanes(w);
        let panel = &mut dst[off..off + red * wp];
        if trans {
            for c in 0..w {
                let src = &rhs[(c0 + c) * red..(c0 + c + 1) * red];
                for (r, &x) in src.iter().enumerate() {
                    panel[r * wp + c] = x;
                }
            }
        } else {
            for r in 0..red {
                panel[r * wp..r * wp + w].copy_from_slice(&rhs[r * cols + c0..r * cols + c0 + w]);
            }
        }
        off += red * wp;
        c0 += w;
    }
}

/// Epilogue applied to each freshly-written output chunk (one strip row x
/// one panel's columns `[c0, c0+w)`) right after the microkernel's
/// writeback, while the chunk is still L1-hot. Each output element is
/// covered by exactly one (strip, panel) pair — `red` spans the whole
/// reduction in one call — so the epilogue sees every element's final
/// value exactly once, and the fused bias+activation costs no separate
/// pass over the (cache-cold) output. Implementations iterate slices so
/// the activation compiles to vector selects, not per-element branches.
trait Epilogue: Copy + Sync {
    fn apply_chunk(&self, c0: usize, chunk: &mut [f32]);
}

/// No-op epilogue for plain GEMMs; the calls vanish at compile time.
#[derive(Clone, Copy)]
struct EpiId;
impl Epilogue for EpiId {
    #[inline(always)]
    fn apply_chunk(&self, _c0: usize, _chunk: &mut [f32]) {}
}

/// Bias add + ReLU, the fused-op epilogue for `alpha == None`.
#[derive(Clone, Copy)]
struct EpiBiasRelu<'a> {
    bias: &'a [f32],
}
impl Epilogue for EpiBiasRelu<'_> {
    #[inline(always)]
    fn apply_chunk(&self, c0: usize, chunk: &mut [f32]) {
        for (v, &bj) in chunk.iter_mut().zip(&self.bias[c0..]) {
            *v = (*v + bj).max(0.0);
        }
    }
}

/// Bias add + leaky ReLU (negative slope `al`), the fused-op epilogue for
/// `alpha == Some(al)`. A separate type from [`EpiBiasRelu`] so each
/// activation monomorphizes its own select-based loop.
#[derive(Clone, Copy)]
struct EpiBiasLeaky<'a> {
    bias: &'a [f32],
    al: f32,
}
impl Epilogue for EpiBiasLeaky<'_> {
    #[inline(always)]
    fn apply_chunk(&self, c0: usize, chunk: &mut [f32]) {
        for (v, &bj) in chunk.iter_mut().zip(&self.bias[c0..]) {
            let x = *v + bj;
            *v = if x > 0.0 { x } else { self.al * x };
        }
    }
}

/// Register-blocked microkernel: `MR` output rows by `NG` lane groups.
///
/// Accumulates `Σ_kk lhs(row, kk) * panel(kk, col)` for the strip's rows
/// into `[[f32; LANES]; NG]` lane arrays (reduction index `kk` increasing,
/// starting from 0.0 — the per-element order every path shares), then adds
/// each element's register sum to the output once. `lhs(row, kk)` is read
/// at `lhs[abase + row*lrs + kk*lcs]`, which expresses both the plain
/// (`lrs=k, lcs=1`) and transposed (`lrs=1, lcs=k`) left operands without
/// copying.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro<const NG: usize, const MR: usize>(
    lhs: &[f32],
    abase: usize,
    lrs: usize,
    lcs: usize,
    panel: &[f32],
    red: usize,
    block: &mut [f32],
    obase: usize,
    ors: usize,
    w: usize,
) {
    let mut acc = [[[0.0f32; LANES]; NG]; MR];
    // Re-slice to the exact extent so the iteration count below is provably
    // `red` and the per-iteration bounds checks vanish.
    let panel = &panel[..red * (NG * LANES)];
    if lcs == 1 {
        // Contiguous lhs rows (matmul / a_bt): pre-slice each strip row once
        // so the hot loop indexes check-free.
        let arows: [&[f32]; MR] = core::array::from_fn(|r| {
            let s = abase + r * lrs;
            &lhs[s..s + red]
        });
        for (kk, brow) in panel.chunks_exact(NG * LANES).enumerate() {
            for (r, arow) in arows.iter().enumerate() {
                let aik = arow[kk];
                for g in 0..NG {
                    for l in 0..LANES {
                        acc[r][g][l] = fmla(aik, brow[g * LANES + l], acc[r][g][l]);
                    }
                }
            }
        }
    } else {
        // Strided lhs (a^T with small reduction): indexed loads.
        for (kk, brow) in panel.chunks_exact(NG * LANES).enumerate() {
            for r in 0..MR {
                let aik = lhs[abase + r * lrs + kk * lcs];
                for g in 0..NG {
                    for l in 0..LANES {
                        acc[r][g][l] = fmla(aik, brow[g * LANES + l], acc[r][g][l]);
                    }
                }
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let rb = obase + r * ors;
        for (g, lanes) in acc_row.iter().enumerate() {
            let cbase = g * LANES;
            if cbase >= w {
                break;
            }
            let lim = (w - cbase).min(LANES);
            for (o, &v) in block[rb + cbase..rb + cbase + lim].iter_mut().zip(lanes) {
                *o += v;
            }
        }
    }
}

/// Nine-column microkernel: one full lane group plus one scalar tail
/// column, for the recorded n == 9 tall-skinny shape where padding to two
/// lane groups would waste 7 of 16 lanes. Reads the same 16-wide packed
/// panel as the generic kernel and applies the identical per-element
/// fused-multiply-add chain (reduction index increasing), so its results
/// are bit-for-bit the same as the generic path it replaces.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro91<const MR: usize>(
    lhs: &[f32],
    abase: usize,
    lrs: usize,
    lcs: usize,
    panel: &[f32],
    red: usize,
    block: &mut [f32],
    obase: usize,
    ors: usize,
) {
    let mut acc = [[0.0f32; LANES]; MR];
    let mut acct = [0.0f32; MR];
    let panel = &panel[..red * (2 * LANES)];
    if lcs == 1 {
        let arows: [&[f32]; MR] = core::array::from_fn(|r| {
            let s = abase + r * lrs;
            &lhs[s..s + red]
        });
        for (kk, brow) in panel.chunks_exact(2 * LANES).enumerate() {
            for (r, arow) in arows.iter().enumerate() {
                let aik = arow[kk];
                for l in 0..LANES {
                    acc[r][l] = fmla(aik, brow[l], acc[r][l]);
                }
                acct[r] = fmla(aik, brow[LANES], acct[r]);
            }
        }
    } else {
        for (kk, brow) in panel.chunks_exact(2 * LANES).enumerate() {
            for r in 0..MR {
                let aik = lhs[abase + r * lrs + kk * lcs];
                for l in 0..LANES {
                    acc[r][l] = fmla(aik, brow[l], acc[r][l]);
                }
                acct[r] = fmla(aik, brow[LANES], acct[r]);
            }
        }
    }
    for (r, lanes) in acc.iter().enumerate() {
        let rb = obase + r * ors;
        for (o, &v) in block[rb..rb + LANES].iter_mut().zip(lanes) {
            *o += v;
        }
        block[rb + LANES] += acct[r];
    }
}

/// [`micro91`] over all rows of a block (strips of 4, then singles).
#[allow(clippy::too_many_arguments)]
fn panel_rows91<E: Epilogue>(
    lhs: &[f32],
    lrs: usize,
    lcs: usize,
    row0: usize,
    panel: &[f32],
    red: usize,
    block: &mut [f32],
    cols: usize,
    c0: usize,
    rows: usize,
    epi: E,
) {
    let strip = |block: &mut [f32], r: usize, mr: usize| {
        for i in 0..mr {
            let rb = (r + i) * cols + c0;
            epi.apply_chunk(c0, &mut block[rb..rb + LANES + 1]);
        }
    };
    let mut r = 0;
    while r + 4 <= rows {
        micro91::<4>(
            lhs,
            (row0 + r) * lrs,
            lrs,
            lcs,
            panel,
            red,
            block,
            r * cols + c0,
            cols,
        );
        strip(block, r, 4);
        r += 4;
    }
    while r < rows {
        micro91::<1>(
            lhs,
            (row0 + r) * lrs,
            lrs,
            lcs,
            panel,
            red,
            block,
            r * cols + c0,
            cols,
        );
        strip(block, r, 1);
        r += 1;
    }
}

/// Run the microkernel over all rows of a block for one packed panel,
/// register-blocking [`MR_GRAIN`] rows at a time (2 for wide panels, where
/// the accumulator block would otherwise exceed the register file).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn panel_rows<const NG: usize, E: Epilogue>(
    lhs: &[f32],
    lrs: usize,
    lcs: usize,
    row0: usize,
    panel: &[f32],
    red: usize,
    block: &mut [f32],
    cols: usize,
    c0: usize,
    w: usize,
    rows: usize,
    epi: E,
) {
    let strip = |block: &mut [f32], r: usize, mr: usize| {
        for i in 0..mr {
            let rb = (r + i) * cols + c0;
            epi.apply_chunk(c0, &mut block[rb..rb + w]);
        }
    };
    let mut r = 0;
    if NG <= 2 {
        while r + 4 <= rows {
            micro::<NG, 4>(
                lhs,
                (row0 + r) * lrs,
                lrs,
                lcs,
                panel,
                red,
                block,
                r * cols + c0,
                cols,
                w,
            );
            strip(block, r, 4);
            r += 4;
        }
    } else {
        while r + 2 <= rows {
            micro::<NG, 2>(
                lhs,
                (row0 + r) * lrs,
                lrs,
                lcs,
                panel,
                red,
                block,
                r * cols + c0,
                cols,
                w,
            );
            strip(block, r, 2);
            r += 2;
        }
    }
    while r < rows {
        micro::<NG, 1>(
            lhs,
            (row0 + r) * lrs,
            lrs,
            lcs,
            panel,
            red,
            block,
            r * cols + c0,
            cols,
            w,
        );
        strip(block, r, 1);
        r += 1;
    }
}

/// GEMM over one contiguous block of output rows: walk the packed panels,
/// dispatching each to the lane-group-specialized microkernel instance.
fn gemm_block<E: Epilogue>(
    lhs: &[f32],
    lrs: usize,
    lcs: usize,
    packed: &[f32],
    red: usize,
    cols: usize,
    row0: usize,
    block: &mut [f32],
    epi: E,
) {
    let rows = block.len() / cols;
    let mut off = 0;
    let mut c0 = 0;
    while c0 < cols {
        let w = (cols - c0).min(MAX_PANEL);
        let wp = pad_lanes(w);
        let panel = &packed[off..off + red * wp];
        match wp / LANES {
            1 => panel_rows::<1, E>(
                lhs, lrs, lcs, row0, panel, red, block, cols, c0, w, rows, epi,
            ),
            2 if w == LANES + 1 => {
                panel_rows91(lhs, lrs, lcs, row0, panel, red, block, cols, c0, rows, epi)
            }
            2 => panel_rows::<2, E>(
                lhs, lrs, lcs, row0, panel, red, block, cols, c0, w, rows, epi,
            ),
            3 => panel_rows::<3, E>(
                lhs, lrs, lcs, row0, panel, red, block, cols, c0, w, rows, epi,
            ),
            4 => panel_rows::<4, E>(
                lhs, lrs, lcs, row0, panel, red, block, cols, c0, w, rows, epi,
            ),
            5 => panel_rows::<5, E>(
                lhs, lrs, lcs, row0, panel, red, block, cols, c0, w, rows, epi,
            ),
            _ => panel_rows::<6, E>(
                lhs, lrs, lcs, row0, panel, red, block, cols, c0, w, rows, epi,
            ),
        }
        off += red * wp;
        c0 += w;
    }
}

/// The one GEMM driver behind every matmul variant: pack the right operand,
/// split output rows across `rt` on strip-aligned boundaries, and run the
/// microkernel per block with `epi` applied to each output chunk right
/// after its (single, final) writeback — so fused bias+activation runs on
/// L1-hot data instead of re-walking the finished output, and plain GEMMs
/// ([`EpiId`]) compile to exactly the unfused code.
#[allow(clippy::too_many_arguments)]
fn gemm_into<E: Epilogue>(
    rt: Runtime,
    lhs: &[f32],
    lrs: usize,
    lcs: usize,
    rhs: &[f32],
    rhs_trans: bool,
    red: usize,
    cols: usize,
    out: &mut [f32],
    epi: E,
) {
    let mut scratch = PACK_SCRATCH.with(RefCell::take);
    pack_rhs(rhs, red, cols, rhs_trans, &mut scratch);
    let packed: &[f32] = &scratch;
    rt.par_row_blocks_grained(out, cols, MR_GRAIN, |row0, block| {
        gemm_block(lhs, lrs, lcs, packed, red, cols, row0, block, epi);
    });
    let _ = PACK_SCRATCH.with(|c| c.replace(scratch));
}

/// `c = a[m,k] * b[k,n]` (row-major, into a fresh buffer), parallelized over
/// rows of `c` via [`Runtime::global`] when large enough.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_with(auto_runtime(m * k * n), a, b, m, k, n)
}

/// [`matmul`] with an explicit worker pool (always honored; use
/// [`Runtime::serial`] to force the single-threaded path).
pub fn matmul_with(rt: Runtime, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_into_with(rt, a, b, m, k, n, &mut c);
    c
}

/// [`matmul_into_with`] with the worker pool chosen from the problem size
/// (same policy as [`matmul`]).
pub fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_into_with(auto_runtime(m * k * n), a, b, m, k, n, out);
}

/// Accumulate `a[m,k] * b[k,n]` into `out[m,n]` (`out += a*b`; zero `out`
/// first for a plain product). This is the allocation-free entry the tape's
/// arena-backed forward pass writes through.
pub fn matmul_into_with(
    rt: Runtime,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul: lhs size");
    assert_eq!(b.len(), k * n, "matmul: rhs size");
    assert_eq!(out.len(), m * n, "matmul: out size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    count_call(rt, m * k * n, m);
    if n == 1 {
        // Matrix-vector product (MLP output heads): the 8-lane panel would
        // waste 7/8 of its multiplies on padding. Per element this is the
        // same single k-increasing fmla chain as the panel kernel, so the
        // bits are identical; rows run as independent chains to keep the
        // FPU pipeline full.
        matvec_into(rt, a, b, k, out);
        return;
    }
    gemm_into(rt, a, k, 1, b, false, k, n, out, EpiId);
}

/// `out[r] += dot(a[r, :], b)` with the dot accumulated in k-increasing
/// order by one fmla chain per row — bitwise-equal to what the panel
/// kernel computes for a width-1 output. Four rows in flight.
fn matvec_into(rt: Runtime, a: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
    let b = &b[..k];
    rt.par_row_blocks_grained(out, 1, MR_GRAIN, |row0, block| {
        let mut r = 0usize;
        while r + 4 <= block.len() {
            let base = (row0 + r) * k;
            let a0 = &a[base..base + k];
            let a1 = &a[base + k..base + 2 * k];
            let a2 = &a[base + 2 * k..base + 3 * k];
            let a3 = &a[base + 3 * k..base + 4 * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (kk, &bv) in b.iter().enumerate() {
                s0 = fmla(a0[kk], bv, s0);
                s1 = fmla(a1[kk], bv, s1);
                s2 = fmla(a2[kk], bv, s2);
                s3 = fmla(a3[kk], bv, s3);
            }
            block[r] += s0;
            block[r + 1] += s1;
            block[r + 2] += s2;
            block[r + 3] += s3;
            r += 4;
        }
        while r < block.len() {
            let base = (row0 + r) * k;
            let arow = &a[base..base + k];
            let mut s = 0.0f32;
            for (kk, &bv) in b.iter().enumerate() {
                s = fmla(arow[kk], bv, s);
            }
            block[r] += s;
            r += 1;
        }
    });
}

/// Output size (floats) below which [`matmul_at_b`] streams samples through
/// a cache-resident output instead of register strips. A `k x n` weight
/// gradient is at most a few KB while the sample stream is MBs, so the
/// streaming path reads `a` and `b` exactly once.
const AT_B_STREAM_MAX_OUT: usize = 8192;
/// Minimum reduction length before the streaming path pays off (below it
/// the register-strip path re-reads nothing anyway).
const AT_B_STREAM_MIN_RED: usize = 256;

/// Accumulate `a[m,k]^T * b[m,n]` into `out[k,n]` (i.e. `out += a^T * b`),
/// parallelized over rows of `out` via [`Runtime::global`] when large
/// enough. Used for weight gradients: `dW = x^T * dy`.
///
/// Per element the sample index increases — the gradient-reduction order.
/// Two shape-dispatched regimes share that order: small outputs
/// (`k*n <= AT_B_STREAM_MAX_OUT` with a long reduction) stream samples once
/// through the cache-resident output, fused-multiply-adding each sample's
/// outer-product contribution directly into `out` in sample order; large
/// outputs use the register-strip GEMM (per-element register accumulation
/// in sample order, added to `out` once). The dispatch depends only on the
/// shape, never on the worker count, so results stay worker-independent.
pub fn matmul_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_at_b_with(auto_runtime(m * k * n), a, b, m, k, n, out);
}

/// [`matmul_at_b`] with an explicit worker pool (always honored).
pub fn matmul_at_b_with(
    rt: Runtime,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul_at_b: lhs size");
    assert_eq!(b.len(), m * n, "matmul_at_b: rhs size");
    assert_eq!(out.len(), k * n, "matmul_at_b: out size");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    count_call(rt, m * k * n, k);
    if k * n <= AT_B_STREAM_MAX_OUT && m >= AT_B_STREAM_MIN_RED {
        // Workers split output rows; each streams the full sample range for
        // its rows, so every element still sees samples in increasing order.
        rt.par_row_blocks(out, n, |row0, block| {
            at_b_stream(a, b, m, k, n, row0, block);
        });
        return;
    }
    // lhs is a^T: element (out_row, sample) lives at a[sample*k + out_row].
    gemm_into(rt, a, 1, k, b, false, m, n, out, EpiId);
}

/// Samples chained through registers per streaming step; each output
/// element receives one chained fused-multiply-add per sample, so the
/// arithmetic sequence is identical to updating it sample-by-sample.
const AT_B_CHAIN: usize = 8;

/// Sample-streaming `out[row0.., :] += a^T b` for cache-resident outputs:
/// reads `a` and `b` exactly once, accumulating each sample's outer-product
/// contribution into `block` via register-chained FMAs ([`AT_B_CHAIN`]
/// samples per load/store round trip). Per element this applies exactly
/// `out = fmla(a_s, b_s, out)` for `s = 0, 1, ..., m-1` — the same fixed
/// sample order as the register-strip path, independent of chain length,
/// column grouping, and worker count.
fn at_b_stream(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, row0: usize, block: &mut [f32]) {
    let rows = block.len() / n;
    let mut s = 0;
    while s + AT_B_CHAIN <= m {
        let arows: [&[f32]; AT_B_CHAIN] =
            core::array::from_fn(|i| &a[(s + i) * k + row0..(s + i) * k + row0 + rows]);
        let mut c0 = 0;
        // Full 8-wide column groups: vector FMA chains.
        while c0 + LANES <= n {
            let bg: [[f32; LANES]; AT_B_CHAIN] = core::array::from_fn(|i| {
                let mut v = [0.0f32; LANES];
                v.copy_from_slice(&b[(s + i) * n + c0..(s + i) * n + c0 + LANES]);
                v
            });
            for r in 0..rows {
                let o = &mut block[r * n + c0..r * n + c0 + LANES];
                let mut v = [0.0f32; LANES];
                v.copy_from_slice(o);
                for (arow, bgi) in arows.iter().zip(&bg) {
                    let aik = arow[r];
                    for l in 0..LANES {
                        v[l] = fmla(aik, bgi[l], v[l]);
                    }
                }
                o.copy_from_slice(&v);
            }
            c0 += LANES;
        }
        // Tail columns: scalar FMA chains.
        for c in c0..n {
            let bt: [f32; AT_B_CHAIN] = core::array::from_fn(|i| b[(s + i) * n + c]);
            for r in 0..rows {
                let mut o = block[r * n + c];
                for (arow, &bv) in arows.iter().zip(&bt) {
                    o = fmla(arow[r], bv, o);
                }
                block[r * n + c] = o;
            }
        }
        s += AT_B_CHAIN;
    }
    // Leftover samples (m % AT_B_CHAIN), one at a time in sample order.
    while s < m {
        let arow = &a[s * k + row0..s * k + row0 + rows];
        let brow = &b[s * n..(s + 1) * n];
        for (r, &aik) in arow.iter().enumerate() {
            for (o, &bv) in block[r * n..(r + 1) * n].iter_mut().zip(brow) {
                *o = fmla(aik, bv, *o);
            }
        }
        s += 1;
    }
}

/// Accumulate `out[m,k] += a[m,n] * b[k,n]^T` (i.e. `out += a * b^T`, where
/// `a` is `[m,n]` and `b` is `[k,n]`, both row-major), parallelized over
/// rows of `out` via [`Runtime::global`] when large enough. Used for input
/// gradients: `dx = dy * W^T`. `b` is transposed once during panel packing,
/// so the inner loop is stride-1 (this variant used to be the ~2x outlier).
/// Per element the index `j` into the shared dim `n` increases.
pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, n: usize, k: usize, out: &mut [f32]) {
    matmul_a_bt_with(auto_runtime(m * n * k), a, b, m, n, k, out);
}

/// [`matmul_a_bt`] with an explicit worker pool (always honored).
pub fn matmul_a_bt_with(
    rt: Runtime,
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * n, "matmul_a_bt: lhs size");
    assert_eq!(b.len(), k * n, "matmul_a_bt: rhs size");
    assert_eq!(out.len(), m * k, "matmul_a_bt: out size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    count_call(rt, m * n * k, m);
    gemm_into(rt, a, n, 1, b, true, n, k, out, EpiId);
}

/// Fused `act(a[m,k] * b[k,n] + bias)` into a fresh buffer, where `act` is
/// ReLU (`alpha == None`) or leaky ReLU with negative slope `alpha`.
///
/// Bitwise-equal to the unfused `matmul` → `+ bias` → activation chain: the
/// epilogue adds `bias[j]` to each element's register-accumulated product
/// exactly once, then applies `max(x, 0)` / `if x > 0 { x } else { alpha*x }`
/// — the same float operations in the same order.
pub fn matmul_bias_act(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    alpha: Option<f32>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    matmul_bias_act_with(auto_runtime(m * k * n), a, b, bias, alpha, m, k, n)
}

/// [`matmul_bias_act`] with an explicit worker pool (always honored).
#[allow(clippy::too_many_arguments)]
pub fn matmul_bias_act_with(
    rt: Runtime,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    alpha: Option<f32>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_bias_act_into_with(rt, a, b, bias, alpha, m, k, n, &mut out);
    out
}

/// [`matmul_bias_act_into_with`] with the worker pool chosen from the
/// problem size (same policy as [`matmul`]).
#[allow(clippy::too_many_arguments)]
pub fn matmul_bias_act_into(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    alpha: Option<f32>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    matmul_bias_act_into_with(auto_runtime(m * k * n), a, b, bias, alpha, m, k, n, out);
}

/// [`matmul_bias_act`] writing into caller-provided storage. `out` must be
/// zero-filled (the product is accumulated, then the bias+activation
/// epilogue rewrites each row in place); it is fully overwritten.
#[allow(clippy::too_many_arguments)]
pub fn matmul_bias_act_into_with(
    rt: Runtime,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    alpha: Option<f32>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul_bias_act: lhs size");
    assert_eq!(b.len(), k * n, "matmul_bias_act: rhs size");
    assert_eq!(bias.len(), n, "matmul_bias_act: bias size");
    assert_eq!(out.len(), m * n, "matmul_bias_act: out size");
    if m == 0 || n == 0 {
        return;
    }
    count_call(rt, m * k * n, m);
    if harp_obs::enabled() {
        CALLS_FUSED.add(1);
    }
    match alpha {
        None => gemm_into(rt, a, k, 1, b, false, k, n, out, EpiBiasRelu { bias }),
        Some(al) => gemm_into(rt, a, k, 1, b, false, k, n, out, EpiBiasLeaky { bias, al }),
    }
}

/// Transpose a `[m, n]` matrix into `[n, m]`.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * n, "transpose: size");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let mx = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Stable masked softmax over a slice, in place. `mask[i] == 0.0` excludes
/// position `i` (probability exactly 0); all-masked rows become all-zero.
pub fn masked_softmax_inplace(x: &mut [f32], mask: &[f32]) {
    assert_eq!(x.len(), mask.len(), "masked softmax: mask length");
    let mut mx = f32::NEG_INFINITY;
    for (v, m) in x.iter().zip(mask) {
        if *m != 0.0 && *v > mx {
            mx = *v;
        }
    }
    if mx == f32::NEG_INFINITY {
        x.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for (v, m) in x.iter_mut().zip(mask) {
        if *m != 0.0 {
            *v = (*v - mx).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Backward of a softmax row: given the softmax output `y` and upstream
/// gradient `dy`, writes `dx[i] = y[i] * (dy[i] - sum_j y[j] dy[j])` into
/// `dx` (accumulating).
pub fn softmax_backward_row(y: &[f32], dy: &[f32], dx: &mut [f32]) {
    let dot: f32 = y.iter().zip(dy).map(|(a, b)| a * b).sum();
    for ((d, yv), dyv) in dx.iter_mut().zip(y).zip(dy) {
        *d += yv * (dyv - dot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_basic() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let c = matmul(&[1., 2., 3., 4.], &[5., 6., 7., 8.], 2, 2, 2);
        assert_eq!(c, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rect() {
        // [1,3] x [3,2]
        let c = matmul(&[1., 2., 3.], &[1., 0., 0., 1., 1., 1.], 1, 3, 2);
        assert_eq!(c, vec![4., 5.]);
    }

    #[test]
    fn matmul_into_accumulates() {
        let mut out = vec![100.0f32, 200.0, 300.0, 400.0];
        matmul_into_with(
            Runtime::serial(),
            &[1., 2., 3., 4.],
            &[5., 6., 7., 8.],
            2,
            2,
            2,
            &mut out,
        );
        assert_eq!(out, vec![119., 222., 343., 450.]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = [1., 2., 3., 4., 5., 6.]; // [3,2]
        let b = [1., 0., 2., 1., 0., 3.]; // [3,2]
        let mut out = vec![0.0; 4];
        matmul_at_b(&a, &b, 3, 2, 2, &mut out);
        let at = transpose(&a, 3, 2);
        let expect = matmul(&at, &b, 2, 3, 2);
        assert_eq!(out, expect);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = [1., 2., 3., 4.]; // [2,2]
        let b = [5., 6., 7., 8., 9., 10.]; // [3,2]
        let mut out = vec![0.0; 6];
        matmul_a_bt(&a, &b, 2, 2, 3, &mut out);
        let bt = transpose(&b, 3, 2);
        let expect = matmul(&a, &bt, 2, 2, 3);
        assert_eq!(out, expect);
    }

    /// Pseudo-random but deterministic test matrix (no RNG dependency).
    fn test_matrix(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Bitwise determinism: every worker count produces exactly the
        /// serial result for all three kernels (dimensions chosen to span
        /// multiple panels and uneven strips/partitions).
        #[test]
        fn parallel_kernels_bitwise_equal_serial(
            m in 1usize..40,
            k in 1usize..70,
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            let a = test_matrix(m * k, seed);
            let b = test_matrix(k * n, seed.wrapping_add(1));
            let serial = matmul_with(Runtime::serial(), &a, &b, m, k, n);
            for w in [2, 3, 4, 7] {
                let par = matmul_with(Runtime::new(w), &a, &b, m, k, n);
                prop_assert_eq!(&par, &serial);
            }

            // at_b: a is [m2,k2] = [k, m], b is [k, n] -> out [m, n]
            let a2 = test_matrix(k * m, seed.wrapping_add(2));
            let b2 = test_matrix(k * n, seed.wrapping_add(3));
            let mut serial2 = test_matrix(m * n, seed.wrapping_add(4));
            let init2 = serial2.clone();
            matmul_at_b_with(Runtime::serial(), &a2, &b2, k, m, n, &mut serial2);
            for w in [2, 3, 4] {
                let mut par = init2.clone();
                matmul_at_b_with(Runtime::new(w), &a2, &b2, k, m, n, &mut par);
                prop_assert_eq!(&par, &serial2);
            }

            // a_bt: a is [m, n], b is [k3, n] -> out [m, k3]
            let a3 = test_matrix(m * n, seed.wrapping_add(5));
            let b3 = test_matrix(k * n, seed.wrapping_add(6));
            let mut serial3 = test_matrix(m * k, seed.wrapping_add(7));
            let init3 = serial3.clone();
            matmul_a_bt_with(Runtime::serial(), &a3, &b3, m, n, k, &mut serial3);
            for w in [2, 3, 4] {
                let mut par = init3.clone();
                matmul_a_bt_with(Runtime::new(w), &a3, &b3, m, n, k, &mut par);
                prop_assert_eq!(&par, &serial3);
            }
        }

        /// The sample-streaming `at_b` regime (long reduction, small output)
        /// stays bitwise-equal across worker counts and agrees with the
        /// explicit-transpose matmul: on a zero-initialized output both
        /// regimes apply the identical fused-multiply-add chain per element.
        #[test]
        fn at_b_streaming_path_deterministic(
            m in 256usize..320,
            k in 1usize..12,
            n in 1usize..12,
            seed in 0u64..1000,
        ) {
            let a = test_matrix(m * k, seed);
            let b = test_matrix(m * n, seed.wrapping_add(1));
            let mut serial = vec![0.0f32; k * n];
            matmul_at_b_with(Runtime::serial(), &a, &b, m, k, n, &mut serial);
            for w in [2, 3, 4, 7] {
                let mut par = vec![0.0f32; k * n];
                matmul_at_b_with(Runtime::new(w), &a, &b, m, k, n, &mut par);
                prop_assert_eq!(&par, &serial);
            }
            let at = transpose(&a, m, k);
            let reference = matmul_with(Runtime::serial(), &at, &b, k, m, n);
            prop_assert_eq!(&serial, &reference);
        }

        /// The fused matmul+bias+activation kernel is bitwise-equal to the
        /// unfused composition for both activations, at every worker count.
        #[test]
        fn fused_bias_act_bitwise_equal_composed(
            m in 1usize..40,
            k in 1usize..50,
            n in 1usize..52,
            seed in 0u64..1000,
        ) {
            let a = test_matrix(m * k, seed);
            let b = test_matrix(k * n, seed.wrapping_add(1));
            let bias = test_matrix(n, seed.wrapping_add(2));
            for alpha in [None, Some(0.01f32), Some(0.3)] {
                let mut composed = matmul_with(Runtime::serial(), &a, &b, m, k, n);
                for r in 0..m {
                    for j in 0..n {
                        let x = composed[r * n + j] + bias[j];
                        composed[r * n + j] = match alpha {
                            None => x.max(0.0),
                            Some(al) => if x > 0.0 { x } else { al * x },
                        };
                    }
                }
                for w in [1, 2, 3, 4, 7] {
                    let fused =
                        matmul_bias_act_with(Runtime::new(w), &a, &b, &bias, alpha, m, k, n);
                    prop_assert_eq!(&fused, &composed, "alpha={:?} workers={}", alpha, w);
                }
            }
        }

        /// The blocked kernels agree with a straightforward transpose-based
        /// reference within floating-point tolerance.
        #[test]
        fn blocked_kernels_match_reference(
            m in 1usize..20,
            k in 1usize..30,
            n in 1usize..20,
            seed in 0u64..1000,
        ) {
            let a = test_matrix(m * k, seed);
            let b = test_matrix(k * n, seed.wrapping_add(9));
            let c = matmul_with(Runtime::new(3), &a, &b, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f64;
                    for kk in 0..k {
                        acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                    }
                    prop_assert!((c[i * n + j] as f64 - acc).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn degenerate_dims_are_safe() {
        assert!(matmul(&[], &[], 0, 3, 0).is_empty());
        assert_eq!(matmul(&[], &[], 2, 0, 2), vec![0.0; 4]);
        let mut out = vec![1.0; 4];
        matmul_at_b(&[], &[], 0, 2, 2, &mut out);
        assert_eq!(out, vec![1.0; 4]);
        matmul_a_bt(&[], &[], 2, 0, 2, &mut out);
        assert_eq!(out, vec![1.0; 4]);
        // fused with k == 0: the product is all zeros, the epilogue still
        // applies bias + activation (same as the unfused composition).
        let fused = matmul_bias_act(&[], &[], &[1.0, -2.0], Some(0.5), 2, 0, 2);
        assert_eq!(fused, vec![1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut x = vec![1000.0, 1000.0];
        softmax_inplace(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_excludes() {
        let mut x = vec![5.0, 1.0, 1.0];
        masked_softmax_inplace(&mut x, &[0.0, 1.0, 1.0]);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_all_masked() {
        let mut x = vec![5.0, 1.0];
        masked_softmax_inplace(&mut x, &[0.0, 0.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
