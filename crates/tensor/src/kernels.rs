//! Low-level dense kernels shared by the tape's forward and backward passes.
//!
//! All kernels operate on plain `&[f32]` slices in row-major layout. They are
//! public so that non-autodiff code (e.g. the LP solvers' dense algebra or
//! inference-only paths) can reuse them.
//!
//! ## Blocking and parallelism
//!
//! The three matmul variants are cache-blocked (k- and n-blocks sized so the
//! active `b` panel and `c` row segments stay in L1) and split **rows of the
//! output** across a [`harp_runtime::Runtime`] when the work is large enough
//! to amortize scoped-thread spawns. Each output row is computed entirely by
//! one worker with the same inner accumulation order as the serial path
//! (k-index increasing for products, sample-index increasing for gradient
//! reductions), so serial and parallel outputs are **bitwise identical** for
//! every worker count — verified by property tests below.
//!
//! The convenience entry points ([`matmul`], [`matmul_at_b`],
//! [`matmul_a_bt`]) consult [`Runtime::global`] (the `HARP_THREADS`
//! environment knob) above a size threshold; the `*_with` variants honor an
//! explicit runtime unconditionally, which tests and benchmarks use to pin
//! the worker count.

use harp_obs::Counter;
use harp_runtime::Runtime;

/// Multiply-accumulates executed by the matmul kernels (all variants).
static MACS: Counter = Counter::new("kernels.macs");
/// Matmul-family calls that ran on the calling thread only.
static CALLS_SERIAL: Counter = Counter::new("kernels.calls_serial");
/// Matmul-family calls that fanned output rows across the worker pool.
static CALLS_PARALLEL: Counter = Counter::new("kernels.calls_parallel");
/// Output rows dispatched to the pool by parallel matmul-family calls.
static ROWS_PARALLEL: Counter = Counter::new("kernels.rows_parallel");

/// Credit one matmul-family call of `macs` multiply-accumulates and
/// `rows` output rows to the kernel counters. A branch when obs is off.
#[inline]
fn count_call(rt: Runtime, macs: usize, rows: usize) {
    if !harp_obs::enabled() {
        return;
    }
    MACS.add(macs as u64);
    if rt.workers() > 1 && rows > 1 {
        CALLS_PARALLEL.add(1);
        ROWS_PARALLEL.add(rows as u64);
    } else {
        CALLS_SERIAL.add(1);
    }
}

/// Rows of the shared `b` panel kept hot across an output-row strip.
const KB: usize = 32;
/// Output-column block: one `c` row segment plus the matching `b` panel
/// columns (`KB * NB * 4` bytes ≈ 16 KiB) fit comfortably in L1.
const NB: usize = 128;
/// Output rows handled per micro-kernel strip (shares each `b` row load
/// across this many output rows).
const MR: usize = 4;
/// Minimum multiply-accumulate count before the convenience entry points
/// fan rows out across [`Runtime::global`]; below this, scoped-thread spawn
/// overhead (tens of microseconds) exceeds the win.
const PAR_MIN_MACS: usize = 1 << 21;

/// Worker fan-out for `macs` multiply-accumulates: the global runtime above
/// the threshold, serial below it.
fn auto_runtime(macs: usize) -> Runtime {
    if macs >= PAR_MIN_MACS {
        Runtime::global()
    } else {
        Runtime::serial()
    }
}

/// `c = a[m,k] * b[k,n]` (row-major, into a fresh buffer), parallelized over
/// rows of `c` via [`Runtime::global`] when large enough.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_with(auto_runtime(m * k * n), a, b, m, k, n)
}

/// [`matmul`] with an explicit worker pool (always honored; use
/// [`Runtime::serial`] to force the single-threaded path).
pub fn matmul_with(rt: Runtime, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul: lhs size");
    assert_eq!(b.len(), k * n, "matmul: rhs size");
    let mut c = vec![0.0f32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    count_call(rt, m * k * n, m);
    rt.par_row_blocks(&mut c, n, |row0, block| {
        matmul_rows(a, b, k, n, row0, block)
    });
    c
}

/// Blocked ikj kernel for output rows `[row0, row0 + block.len()/n)`.
///
/// Accumulation order per `c` element is `kk = 0..k` increasing regardless
/// of blocking or row partition — the bitwise-determinism invariant.
fn matmul_rows(a: &[f32], b: &[f32], k: usize, n: usize, row0: usize, block: &mut [f32]) {
    let rows = block.len() / n;
    let mut sr = 0;
    while sr < rows {
        let strip_rows = MR.min(rows - sr);
        let strip = &mut block[sr * n..(sr + strip_rows) * n];
        let mut kb = 0;
        while kb < k {
            let kend = (kb + KB).min(k);
            let mut jb = 0;
            while jb < n {
                let jend = (jb + NB).min(n);
                for r in 0..strip_rows {
                    let arow = &a[(row0 + sr + r) * k..(row0 + sr + r + 1) * k];
                    let crow = &mut strip[r * n + jb..r * n + jend];
                    for kk in kb..kend {
                        let aik = arow[kk];
                        let brow = &b[kk * n + jb..kk * n + jend];
                        for (cj, bj) in crow.iter_mut().zip(brow) {
                            *cj += aik * bj;
                        }
                    }
                }
                jb = jend;
            }
            kb = kend;
        }
        sr += strip_rows;
    }
}

/// Accumulate `a[m,k]^T * b[m,n]` into `out[k,n]` (i.e. `out += a^T * b`),
/// parallelized over rows of `out` via [`Runtime::global`] when large
/// enough. Used for weight gradients: `dW = x^T * dy`.
pub fn matmul_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    matmul_at_b_with(auto_runtime(m * k * n), a, b, m, k, n, out);
}

/// [`matmul_at_b`] with an explicit worker pool (always honored).
pub fn matmul_at_b_with(
    rt: Runtime,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "matmul_at_b: lhs size");
    assert_eq!(b.len(), m * n, "matmul_at_b: rhs size");
    assert_eq!(out.len(), k * n, "matmul_at_b: out size");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    count_call(rt, m * k * n, k);
    rt.par_row_blocks(out, n, |kk0, block| at_b_rows(a, b, m, k, n, kk0, block));
}

/// Gradient-reduction kernel for `out` rows `[kk0, kk0 + block.len()/n)`:
/// `out[kk] += sum_i a[i,kk] * b[i]`, with the sample index `i` blocked for
/// `b`-panel reuse but always increasing per element.
fn at_b_rows(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, kk0: usize, block: &mut [f32]) {
    let krows = block.len() / n;
    let mut ib = 0;
    while ib < m {
        let iend = (ib + KB).min(m);
        for r in 0..krows {
            let kk = kk0 + r;
            let orow = &mut block[r * n..(r + 1) * n];
            for i in ib..iend {
                let aik = a[i * k + kk];
                let brow = &b[i * n..(i + 1) * n];
                for (oj, bj) in orow.iter_mut().zip(brow) {
                    *oj += aik * bj;
                }
            }
        }
        ib = iend;
    }
}

/// Accumulate `out[m,k] += a[m,n] * b[k,n]^T` (i.e. `out += a * b^T`, where
/// `a` is `[m,n]` and `b` is `[k,n]`, both row-major), parallelized over
/// rows of `out` via [`Runtime::global`] when large enough. Used for input
/// gradients: `dx = dy * W^T`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, n: usize, k: usize, out: &mut [f32]) {
    matmul_a_bt_with(auto_runtime(m * n * k), a, b, m, n, k, out);
}

/// [`matmul_a_bt`] with an explicit worker pool (always honored).
pub fn matmul_a_bt_with(
    rt: Runtime,
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * n, "matmul_a_bt: lhs size");
    assert_eq!(b.len(), k * n, "matmul_a_bt: rhs size");
    assert_eq!(out.len(), m * k, "matmul_a_bt: out size");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    count_call(rt, m * n * k, m);
    rt.par_row_blocks(out, k, |i0, block| a_bt_rows(a, b, n, k, i0, block));
}

/// Dot-product kernel for `out` rows `[i0, i0 + block.len()/k)`: each
/// element is a full-length dot of an `a` row with a `b` row (j increasing),
/// strips of [`MR`] `a` rows sharing each `b` row load.
fn a_bt_rows(a: &[f32], b: &[f32], n: usize, k: usize, i0: usize, block: &mut [f32]) {
    let rows = block.len() / k;
    let mut sr = 0;
    while sr < rows {
        let strip_rows = MR.min(rows - sr);
        let strip = &mut block[sr * k..(sr + strip_rows) * k];
        for kk in 0..k {
            let brow = &b[kk * n..(kk + 1) * n];
            for r in 0..strip_rows {
                let arow = &a[(i0 + sr + r) * n..(i0 + sr + r + 1) * n];
                let mut acc = 0.0f32;
                for (aj, bj) in arow.iter().zip(brow) {
                    acc += aj * bj;
                }
                strip[r * k + kk] += acc;
            }
        }
        sr += strip_rows;
    }
}

/// Transpose a `[m, n]` matrix into `[n, m]`.
pub fn transpose(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * n, "transpose: size");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let mx = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - mx).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Stable masked softmax over a slice, in place. `mask[i] == 0.0` excludes
/// position `i` (probability exactly 0); all-masked rows become all-zero.
pub fn masked_softmax_inplace(x: &mut [f32], mask: &[f32]) {
    assert_eq!(x.len(), mask.len(), "masked softmax: mask length");
    let mut mx = f32::NEG_INFINITY;
    for (v, m) in x.iter().zip(mask) {
        if *m != 0.0 && *v > mx {
            mx = *v;
        }
    }
    if mx == f32::NEG_INFINITY {
        x.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0f32;
    for (v, m) in x.iter_mut().zip(mask) {
        if *m != 0.0 {
            *v = (*v - mx).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    }
}

/// Backward of a softmax row: given the softmax output `y` and upstream
/// gradient `dy`, writes `dx[i] = y[i] * (dy[i] - sum_j y[j] dy[j])` into
/// `dx` (accumulating).
pub fn softmax_backward_row(y: &[f32], dy: &[f32], dx: &mut [f32]) {
    let dot: f32 = y.iter().zip(dy).map(|(a, b)| a * b).sum();
    for ((d, yv), dyv) in dx.iter_mut().zip(y).zip(dy) {
        *d += yv * (dyv - dot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_basic() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let c = matmul(&[1., 2., 3., 4.], &[5., 6., 7., 8.], 2, 2, 2);
        assert_eq!(c, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rect() {
        // [1,3] x [3,2]
        let c = matmul(&[1., 2., 3.], &[1., 0., 0., 1., 1., 1.], 1, 3, 2);
        assert_eq!(c, vec![4., 5.]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = [1., 2., 3., 4., 5., 6.]; // [3,2]
        let b = [1., 0., 2., 1., 0., 3.]; // [3,2]
        let mut out = vec![0.0; 4];
        matmul_at_b(&a, &b, 3, 2, 2, &mut out);
        let at = transpose(&a, 3, 2);
        let expect = matmul(&at, &b, 2, 3, 2);
        assert_eq!(out, expect);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = [1., 2., 3., 4.]; // [2,2]
        let b = [5., 6., 7., 8., 9., 10.]; // [3,2]
        let mut out = vec![0.0; 6];
        matmul_a_bt(&a, &b, 2, 2, 3, &mut out);
        let bt = transpose(&b, 3, 2);
        let expect = matmul(&a, &bt, 2, 2, 3);
        assert_eq!(out, expect);
    }

    /// Pseudo-random but deterministic test matrix (no RNG dependency).
    fn test_matrix(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Bitwise determinism: every worker count produces exactly the
        /// serial result for all three kernels (dimensions chosen to span
        /// multiple blocks and uneven strips/partitions).
        #[test]
        fn parallel_kernels_bitwise_equal_serial(
            m in 1usize..40,
            k in 1usize..70,
            n in 1usize..40,
            seed in 0u64..1000,
        ) {
            let a = test_matrix(m * k, seed);
            let b = test_matrix(k * n, seed.wrapping_add(1));
            let serial = matmul_with(Runtime::serial(), &a, &b, m, k, n);
            for w in [2, 3, 4, 7] {
                let par = matmul_with(Runtime::new(w), &a, &b, m, k, n);
                prop_assert_eq!(&par, &serial);
            }

            // at_b: a is [m2,k2] = [k, m], b is [k, n] -> out [m, n]
            let a2 = test_matrix(k * m, seed.wrapping_add(2));
            let b2 = test_matrix(k * n, seed.wrapping_add(3));
            let mut serial2 = test_matrix(m * n, seed.wrapping_add(4));
            let init2 = serial2.clone();
            matmul_at_b_with(Runtime::serial(), &a2, &b2, k, m, n, &mut serial2);
            for w in [2, 3, 4] {
                let mut par = init2.clone();
                matmul_at_b_with(Runtime::new(w), &a2, &b2, k, m, n, &mut par);
                prop_assert_eq!(&par, &serial2);
            }

            // a_bt: a is [m, n], b is [k3, n] -> out [m, k3]
            let a3 = test_matrix(m * n, seed.wrapping_add(5));
            let b3 = test_matrix(k * n, seed.wrapping_add(6));
            let mut serial3 = test_matrix(m * k, seed.wrapping_add(7));
            let init3 = serial3.clone();
            matmul_a_bt_with(Runtime::serial(), &a3, &b3, m, n, k, &mut serial3);
            for w in [2, 3, 4] {
                let mut par = init3.clone();
                matmul_a_bt_with(Runtime::new(w), &a3, &b3, m, n, k, &mut par);
                prop_assert_eq!(&par, &serial3);
            }
        }

        /// The blocked kernels agree with a straightforward transpose-based
        /// reference within floating-point tolerance.
        #[test]
        fn blocked_kernels_match_reference(
            m in 1usize..20,
            k in 1usize..30,
            n in 1usize..20,
            seed in 0u64..1000,
        ) {
            let a = test_matrix(m * k, seed);
            let b = test_matrix(k * n, seed.wrapping_add(9));
            let c = matmul_with(Runtime::new(3), &a, &b, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f64;
                    for kk in 0..k {
                        acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                    }
                    prop_assert!((c[i * n + j] as f64 - acc).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn degenerate_dims_are_safe() {
        assert!(matmul(&[], &[], 0, 3, 0).is_empty());
        assert_eq!(matmul(&[], &[], 2, 0, 2), vec![0.0; 4]);
        let mut out = vec![1.0; 4];
        matmul_at_b(&[], &[], 0, 2, 2, &mut out);
        assert_eq!(out, vec![1.0; 4]);
        matmul_a_bt(&[], &[], 2, 0, 2, &mut out);
        assert_eq!(out, vec![1.0; 4]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        let s: f32 = x.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut x = vec![1000.0, 1000.0];
        softmax_inplace(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_excludes() {
        let mut x = vec![5.0, 1.0, 1.0];
        masked_softmax_inplace(&mut x, &[0.0, 1.0, 1.0]);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_all_masked() {
        let mut x = vec![5.0, 1.0];
        masked_softmax_inplace(&mut x, &[0.0, 0.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
