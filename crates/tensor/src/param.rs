//! Persistent trainable parameters.
//!
//! A [`ParamStore`] owns the data and gradient buffers of every trainable
//! tensor in a model. A forward pass injects parameters into a fresh
//! [`crate::Tape`] as leaf nodes; [`crate::Tape::backward`] accumulates
//! gradients back into the store, where an optimizer consumes them.

use crate::shape::Shape;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[must_use = "a ParamId is the only handle to the parameter just registered; dropping it orphans the entry"]
pub struct ParamId(pub(crate) usize);

#[derive(Clone, Debug)]
struct ParamEntry {
    name: String,
    shape: Shape,
    data: Vec<f32>,
    grad: Vec<f32>,
}

/// Owns all trainable parameters of a model (data + gradient buffers).
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter with initial values. Panics if `data` does
    /// not match `shape`, or if `name` is already taken.
    pub fn register(&mut self, name: &str, shape: Vec<usize>, data: Vec<f32>) -> ParamId {
        let shape = Shape(shape);
        assert_eq!(
            shape.numel(),
            data.len(),
            "param '{}': shape {:?} does not match data length {}",
            name,
            shape,
            data.len()
        );
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "param '{}' registered twice",
            name
        );
        let grad = vec![0.0; data.len()];
        self.entries.push(ParamEntry {
            name: name.to_string(),
            shape,
            data,
            grad,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }

    /// The parameter's values.
    pub fn data(&self, id: ParamId) -> &[f32] {
        &self.entries[id.0].data
    }

    /// Mutable access to the parameter's values (used by optimizers).
    pub fn data_mut(&mut self, id: ParamId) -> &mut [f32] {
        &mut self.entries[id.0].data
    }

    /// The parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &[f32] {
        &self.entries[id.0].grad
    }

    /// Mutable access to the gradient buffer.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut [f32] {
        &mut self.entries[id.0].grad
    }

    /// The parameter's shape.
    pub fn shape(&self, id: ParamId) -> &Shape {
        &self.entries[id.0].shape
    }

    /// The parameter's registration name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zero every gradient buffer (call before accumulating a new batch).
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .flat_map(|e| e.grad.iter())
            .map(|g| g * g)
            .sum::<f32>()
            .sqrt()
    }

    /// Scale every gradient by `factor` (used by gradient clipping).
    pub fn scale_grads(&mut self, factor: f32) {
        for e in &mut self.entries {
            e.grad.iter_mut().for_each(|g| *g *= factor);
        }
    }

    /// A zeroed [`GradBuffer`] matching this store's parameter layout.
    ///
    /// Data-parallel training gives each worker its own buffer, runs
    /// [`crate::Tape::backward_into`] against it, and merges the buffers
    /// into the store in a fixed order with [`ParamStore::merge_grads`] —
    /// keeping results bitwise-reproducible for a given worker count.
    pub fn grad_buffer(&self) -> GradBuffer {
        GradBuffer {
            bufs: self
                .entries
                .iter()
                .map(|e| vec![0.0; e.data.len()])
                .collect(),
        }
    }

    /// Add a detached gradient buffer into this store's gradients
    /// (elementwise, like a batch of extra [`crate::Tape::backward`] calls).
    /// Panics if the buffer's layout does not match.
    pub fn merge_grads(&mut self, buf: &GradBuffer) {
        assert_eq!(
            buf.bufs.len(),
            self.entries.len(),
            "merge_grads: buffer layout mismatch"
        );
        for (e, b) in self.entries.iter_mut().zip(&buf.bufs) {
            assert_eq!(
                e.grad.len(),
                b.len(),
                "merge_grads: size mismatch for '{}'",
                e.name
            );
            for (g, s) in e.grad.iter_mut().zip(b) {
                *g += *s;
            }
        }
    }

    /// Snapshot all parameter values (for model-selection checkpoints).
    pub fn snapshot(&self) -> Vec<Vec<f32>> {
        self.entries.iter().map(|e| e.data.clone()).collect()
    }

    /// Restore a snapshot previously taken with [`ParamStore::snapshot`].
    /// Panics if the layout differs.
    pub fn restore(&mut self, snap: &[Vec<f32>]) {
        assert_eq!(snap.len(), self.entries.len(), "snapshot layout mismatch");
        for (e, s) in self.entries.iter_mut().zip(snap) {
            assert_eq!(
                e.data.len(),
                s.len(),
                "snapshot size mismatch for '{}'",
                e.name
            );
            e.data.copy_from_slice(s);
        }
    }
}

/// A detached gradient accumulation buffer with the same layout as the
/// [`ParamStore`] that created it (see [`ParamStore::grad_buffer`]).
///
/// Unlike the store's own gradient buffers, a `GradBuffer` is independent
/// of the parameter data, so any number of them can accumulate in parallel
/// against a shared `&ParamStore` before being merged back serially.
#[derive(Clone, Debug)]
pub struct GradBuffer {
    pub(crate) bufs: Vec<Vec<f32>>,
}

impl GradBuffer {
    /// Elementwise-add `other` into `self` (used as the combine step of a
    /// fixed-order tree reduction over per-worker buffers). Panics on
    /// layout mismatch.
    pub fn accumulate(&mut self, other: &GradBuffer) {
        assert_eq!(
            self.bufs.len(),
            other.bufs.len(),
            "GradBuffer::accumulate: layout mismatch"
        );
        for (d, s) in self.bufs.iter_mut().zip(&other.bufs) {
            assert_eq!(d.len(), s.len(), "GradBuffer::accumulate: size mismatch");
            for (g, v) in d.iter_mut().zip(s) {
                *g += *v;
            }
        }
    }

    /// The accumulated gradient for `id`.
    pub fn grad(&self, id: ParamId) -> &[f32] {
        &self.bufs[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut s = ParamStore::new();
        let id = s.register("w", vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.data(id), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.grad(id), &[0.0; 4]);
        assert_eq!(s.shape(id).as_matrix(), (2, 2));
        assert_eq!(s.name(id), "w");
        assert_eq!(s.num_scalars(), 4);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let mut s = ParamStore::new();
        let _ = s.register("w", vec![1], vec![0.0]);
        let _ = s.register("w", vec![1], vec![0.0]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = ParamStore::new();
        let id = s.register("w", vec![2], vec![1.0, 2.0]);
        let snap = s.snapshot();
        s.data_mut(id)[0] = 9.0;
        s.restore(&snap);
        assert_eq!(s.data(id), &[1.0, 2.0]);
    }

    #[test]
    fn grad_buffer_merge_matches_direct_accumulation() {
        let mut s = ParamStore::new();
        let id = s.register("w", vec![3], vec![0.0; 3]);
        let mut b1 = s.grad_buffer();
        let mut b2 = s.grad_buffer();
        b1.bufs[id.0].copy_from_slice(&[1.0, 2.0, 3.0]);
        b2.bufs[id.0].copy_from_slice(&[10.0, 20.0, 30.0]);
        b1.accumulate(&b2);
        assert_eq!(b1.grad(id), &[11.0, 22.0, 33.0]);
        s.merge_grads(&b1);
        s.merge_grads(&b2);
        assert_eq!(s.grad(id), &[21.0, 42.0, 63.0]);
    }

    #[test]
    fn grad_norm_and_scale() {
        let mut s = ParamStore::new();
        let id = s.register("w", vec![2], vec![0.0, 0.0]);
        s.grad_mut(id).copy_from_slice(&[3.0, 4.0]);
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.scale_grads(0.5);
        assert_eq!(s.grad(id), &[1.5, 2.0]);
        s.zero_grads();
        assert_eq!(s.grad(id), &[0.0, 0.0]);
    }
}
