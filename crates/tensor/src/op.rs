//! The operation set recorded on the tape.
//!
//! Each variant stores the handles of its inputs plus whatever metadata the
//! backward pass needs (index arrays, saved argmaxes, scalar constants).
//! Forward kernels live in [`crate::kernels`]; the backward dispatch is in
//! [`crate::tape`].

use std::sync::Arc;

use crate::tape::Var;

/// An operation node. `Var` fields reference earlier nodes on the same tape.
#[derive(Clone, Debug)]
pub enum Op {
    /// A leaf: constant input or injected parameter (no inputs).
    Leaf,

    // ---- elementwise binary (identical shapes) ----
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise `a * b`.
    Mul(Var, Var),
    /// Elementwise `a / b`.
    Div(Var, Var),

    // ---- elementwise unary ----
    /// Elementwise negation.
    Neg(Var),
    /// Elementwise `e^x`.
    Exp(Var),
    /// Elementwise natural log.
    Ln(Var),
    /// Elementwise square root.
    Sqrt(Var),
    /// Elementwise `max(x, 0)`.
    Relu(Var),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(Var, f32),
    /// ELU with the given alpha.
    Elu(Var, f32),
    /// Elementwise logistic sigmoid.
    Sigmoid(Var),
    /// Elementwise hyperbolic tangent.
    Tanh(Var),
    /// `x * c` for a compile-time scalar constant.
    MulScalar(Var, f32),
    /// `x + c` for a compile-time scalar constant.
    AddScalar(Var, f32),
    /// `1 / max(x, eps)` — numerically-guarded reciprocal.
    Recip(Var, f32),

    // ---- broadcast helpers ----
    /// `[n, m]` matrix plus a length-`m` row vector, broadcast over rows.
    AddBias(Var, Var),
    /// `[n, m]` matrix times a length-`m` row vector, broadcast over rows.
    MulRow(Var, Var),
    /// Replicate a scalar (1-element tensor) into a length-`n` vector.
    BroadcastScalar(Var, usize),

    // ---- linear algebra ----
    /// `[m, k] x [k, n]` matrix product.
    MatMul(Var, Var),
    /// `[b, m, k] x [b, k, n]` batched matrix product.
    BatchMatMul(Var, Var),
    /// Fused `relu(a @ w + bias)` for `[m, k] x [k, n]` plus a length-`n`
    /// bias row. One kernel pass; backward masks from the saved output.
    MatMulBiasRelu(Var, Var, Var),
    /// Fused `leaky_relu(a @ w + bias, alpha)`. `alpha` must be positive so
    /// the output sign recovers the pre-activation sign in backward.
    MatMulBiasLeakyRelu(Var, Var, Var, f32),
    /// Swap the last two axes of a rank-2 or rank-3 tensor.
    TransposeLast2(Var),

    // ---- shape manipulation ----
    /// Reinterpret with a new shape of equal element count.
    Reshape(Var),
    /// Concatenate rank-2 tensors along the last axis (equal row counts).
    ConcatCols(Vec<Var>),
    /// Concatenate along axis 0 (equal trailing shapes).
    ConcatRows(Vec<Var>),
    /// Select rows of a rank-2 tensor (or elements of a rank-1 tensor):
    /// `out[i] = in[idx[i]]`. Rows may repeat; gradients accumulate.
    GatherRows(Var, Arc<Vec<usize>>),
    /// Columns `[start, end)` of a rank-2 tensor.
    SliceCols(Var, usize, usize),

    // ---- reductions ----
    /// Sum of every element, producing a scalar.
    SumAll(Var),
    /// Mean of every element, producing a scalar.
    MeanAll(Var),
    /// Global max; `aux` saves the argmax found in forward.
    MaxAll(Var),
    /// Sum over axis 0 of a rank-2 tensor, producing a row vector.
    SumRows(Var),
    /// Mean over the last axis (per row), producing `[rows, 1]`.
    MeanLastDim(Var),

    // ---- segment (grouped) operations ----
    /// `out[seg[i]] += in[i]` over rows; produces `n_segments` rows.
    SegmentSum(Var, Arc<Vec<usize>>, usize),
    /// Per-segment max over a rank-1 tensor; saves per-segment argmax.
    SegmentMax(Var, Arc<Vec<usize>>, usize),
    /// Softmax within each segment of a rank-1 tensor (segments need not be
    /// contiguous). Used for per-flow split-ratio normalization.
    SegmentSoftmax(Var, Arc<Vec<usize>>, usize),

    // ---- softmax / normalization ----
    /// Softmax over the last axis. Optional additive mask (same length as
    /// the last axis pattern, broadcast over leading dims): entries with
    /// mask 0 are excluded (treated as -inf), entries with mask 1 kept.
    SoftmaxLastDim(Var, Option<Arc<Vec<f32>>>),
    /// Layer normalization over the last axis (no affine; compose with
    /// `MulRow`/`AddBias` for a learnable affine).
    LayerNorm(Var, f32),
}

impl Op {
    /// Stable kind name of this operation (the variant name), used to key
    /// per-op timing histograms and profiling reports.
    pub fn kind(&self) -> &'static str {
        use Op::*;
        match self {
            Leaf => "Leaf",
            Add(..) => "Add",
            Sub(..) => "Sub",
            Mul(..) => "Mul",
            Div(..) => "Div",
            Neg(..) => "Neg",
            Exp(..) => "Exp",
            Ln(..) => "Ln",
            Sqrt(..) => "Sqrt",
            Relu(..) => "Relu",
            LeakyRelu(..) => "LeakyRelu",
            Elu(..) => "Elu",
            Sigmoid(..) => "Sigmoid",
            Tanh(..) => "Tanh",
            MulScalar(..) => "MulScalar",
            AddScalar(..) => "AddScalar",
            Recip(..) => "Recip",
            AddBias(..) => "AddBias",
            MulRow(..) => "MulRow",
            BroadcastScalar(..) => "BroadcastScalar",
            MatMul(..) => "MatMul",
            BatchMatMul(..) => "BatchMatMul",
            MatMulBiasRelu(..) => "MatMulBiasRelu",
            MatMulBiasLeakyRelu(..) => "MatMulBiasLeakyRelu",
            TransposeLast2(..) => "TransposeLast2",
            Reshape(..) => "Reshape",
            ConcatCols(..) => "ConcatCols",
            ConcatRows(..) => "ConcatRows",
            GatherRows(..) => "GatherRows",
            SliceCols(..) => "SliceCols",
            SumAll(..) => "SumAll",
            MeanAll(..) => "MeanAll",
            MaxAll(..) => "MaxAll",
            SumRows(..) => "SumRows",
            MeanLastDim(..) => "MeanLastDim",
            SegmentSum(..) => "SegmentSum",
            SegmentMax(..) => "SegmentMax",
            SegmentSoftmax(..) => "SegmentSoftmax",
            SoftmaxLastDim(..) => "SoftmaxLastDim",
            LayerNorm(..) => "LayerNorm",
        }
    }

    /// Handles of this op's inputs, in order.
    pub fn inputs(&self) -> Vec<Var> {
        use Op::*;
        match self {
            Leaf => vec![],
            Add(a, b)
            | Sub(a, b)
            | Mul(a, b)
            | Div(a, b)
            | AddBias(a, b)
            | MulRow(a, b)
            | MatMul(a, b)
            | BatchMatMul(a, b) => vec![*a, *b],
            MatMulBiasRelu(a, w, b) => vec![*a, *w, *b],
            MatMulBiasLeakyRelu(a, w, b, _) => vec![*a, *w, *b],
            Neg(a) | Exp(a) | Ln(a) | Sqrt(a) | Relu(a) | Sigmoid(a) | Tanh(a)
            | TransposeLast2(a) | Reshape(a) | SumAll(a) | MeanAll(a) | MaxAll(a) | SumRows(a)
            | MeanLastDim(a) => vec![*a],
            LeakyRelu(a, _)
            | Elu(a, _)
            | MulScalar(a, _)
            | AddScalar(a, _)
            | Recip(a, _)
            | BroadcastScalar(a, _)
            | LayerNorm(a, _) => vec![*a],
            GatherRows(a, _) => vec![*a],
            SliceCols(a, _, _) => vec![*a],
            SegmentSum(a, _, _) | SegmentMax(a, _, _) | SegmentSoftmax(a, _, _) => vec![*a],
            SoftmaxLastDim(a, _) => vec![*a],
            ConcatCols(vs) | ConcatRows(vs) => vs.clone(),
        }
    }
}
