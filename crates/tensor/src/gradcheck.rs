//! Numerical gradient checking.
//!
//! Verifies analytic gradients against central finite differences. Used
//! heavily by the test-suites of this crate and `harp-nn` to certify every
//! op's backward pass, and exported so downstream model code can gradcheck
//! end-to-end forward functions.

use crate::param::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Result of a gradient check: the worst relative error seen and where.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest relative error across all checked coordinates.
    pub max_rel_err: f64,
    /// `(param index, coordinate)` where it occurred.
    pub worst: (usize, usize),
    /// Number of coordinates compared.
    pub checked: usize,
}

/// Check the analytic gradient of a scalar function of the parameters in
/// `store` against central finite differences.
///
/// `f` must build a fresh graph from the store each call and return the
/// scalar loss node along with the tape. `eps` is the finite-difference
/// step (1e-2..1e-3 works well in f32); `tol` the allowed relative error.
///
/// Returns `Ok(report)` when all coordinates pass, `Err(report)` otherwise.
/// The relative error uses an absolute floor so near-zero gradients don't
/// blow up the ratio.
pub fn gradcheck<F>(
    store: &mut ParamStore,
    ids: &[ParamId],
    eps: f32,
    tol: f64,
    mut f: F,
) -> Result<GradCheckReport, GradCheckReport>
where
    F: FnMut(&ParamStore) -> (Tape, Var),
{
    store.zero_grads();
    let (tape, loss) = f(store);
    tape.backward(loss, store);
    let analytic: Vec<Vec<f32>> = ids.iter().map(|&id| store.grad(id).to_vec()).collect();

    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        worst: (0, 0),
        checked: 0,
    };

    for (pi, &id) in ids.iter().enumerate() {
        let n = store.data(id).len();
        for c in 0..n {
            let orig = store.data(id)[c];

            store.data_mut(id)[c] = orig + eps;
            let (tp, lp) = f(store);
            let fp = tp.scalar_value(lp) as f64;

            store.data_mut(id)[c] = orig - eps;
            let (tm, lm) = f(store);
            let fm = tm.scalar_value(lm) as f64;

            store.data_mut(id)[c] = orig;

            let numeric = (fp - fm) / (2.0 * eps as f64);
            let a = analytic[pi][c] as f64;
            let denom = a.abs().max(numeric.abs()).max(1e-3);
            let rel = (a - numeric).abs() / denom;
            report.checked += 1;
            if rel > report.max_rel_err {
                report.max_rel_err = rel;
                report.worst = (pi, c);
            }
        }
    }

    if report.max_rel_err <= tol {
        Ok(report)
    } else {
        Err(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn seeded_data(n: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values without external deps.
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 2000) as f32 / 1000.0) - 1.0
            })
            .collect()
    }

    fn check<F>(params: Vec<(&str, Vec<usize>)>, f: F)
    where
        F: FnMut(&ParamStore) -> (Tape, Var),
    {
        let mut store = ParamStore::new();
        let ids: Vec<ParamId> = params
            .iter()
            .enumerate()
            .map(|(i, (name, shape))| {
                let n: usize = shape.iter().product();
                store.register(name, shape.clone(), seeded_data(n, i as u64 + 1))
            })
            .collect();
        let res = gradcheck(&mut store, &ids, 1e-2, 2e-2, f);
        if let Err(r) = res {
            panic!("gradcheck failed: {:?}", r);
        }
    }

    #[test]
    fn gc_elementwise_chain() {
        check(vec![("a", vec![6]), ("b", vec![6])], |s| {
            let mut t = Tape::new();
            let a = t.param(s, ParamId(0));
            let b = t.param(s, ParamId(1));
            let m = t.mul(a, b);
            let e = t.tanh(m);
            let d = t.sub(e, b);
            let sq = t.mul(d, d);
            let l = t.mean_all(sq);
            (t, l)
        });
    }

    #[test]
    fn gc_matmul_bias_relu() {
        check(
            vec![("x", vec![3, 4]), ("w", vec![4, 2]), ("b", vec![2])],
            |s| {
                let mut t = Tape::new();
                let x = t.param(s, ParamId(0));
                let w = t.param(s, ParamId(1));
                let b = t.param(s, ParamId(2));
                let y = t.matmul(x, w);
                let y = t.add_bias(y, b);
                let y = t.leaky_relu(y, 0.1);
                let l = t.sum_all(y);
                (t, l)
            },
        );
    }

    #[test]
    fn gc_softmax_last_dim() {
        check(vec![("x", vec![2, 5])], |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let y = t.softmax_last_dim(x, None);
            let c = t.constant(vec![2, 5], (0..10).map(|i| (i as f32) / 10.0).collect());
            let p = t.mul(y, c);
            let l = t.sum_all(p);
            (t, l)
        });
    }

    #[test]
    fn gc_masked_softmax() {
        let mask = Arc::new(vec![1.0f32, 1.0, 0.0, 1.0]);
        check(vec![("x", vec![3, 4])], move |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let y = t.softmax_last_dim(x, Some(mask.clone()));
            let c = t.constant(vec![3, 4], (0..12).map(|i| (i as f32) / 6.0).collect());
            let p = t.mul(y, c);
            let l = t.sum_all(p);
            (t, l)
        });
    }

    #[test]
    fn gc_segment_softmax_sum() {
        let seg = Arc::new(vec![0usize, 0, 1, 1, 1, 2]);
        check(vec![("x", vec![6])], move |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let y = t.segment_softmax(x, seg.clone(), 3);
            let c = t.constant(vec![6], vec![0.1, 0.9, 0.3, 0.5, 0.2, 0.7]);
            let p = t.mul(y, c);
            let ss = t.segment_sum(p, seg.clone(), 3);
            let l = t.sum_all(ss);
            (t, l)
        });
    }

    #[test]
    fn gc_layer_norm() {
        check(vec![("x", vec![2, 6])], |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let y = t.layer_norm(x, 1e-5);
            let c = t.constant(vec![2, 6], (0..12).map(|i| 0.05 * i as f32).collect());
            let p = t.mul(y, c);
            let l = t.sum_all(p);
            (t, l)
        });
    }

    #[test]
    fn gc_batch_matmul_transpose() {
        check(vec![("q", vec![2, 3, 4]), ("k", vec![2, 3, 4])], |s| {
            let mut t = Tape::new();
            let q = t.param(s, ParamId(0));
            let k = t.param(s, ParamId(1));
            let kt = t.transpose_last2(k);
            let scores = t.batch_matmul(q, kt);
            let att = t.softmax_last_dim(scores, None);
            let out = t.batch_matmul(att, k);
            let l = t.mean_all(out);
            (t, l)
        });
    }

    #[test]
    fn gc_gather_concat_slice() {
        check(vec![("x", vec![4, 3])], |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let g = t.gather_rows(x, Arc::new(vec![0, 2, 2, 3]));
            let sl = t.slice_cols(g, 1, 3);
            let cc = t.concat_cols(&[sl, g]);
            let l = t.mean_all(cc);
            (t, l)
        });
    }

    #[test]
    fn gc_div_recip_sqrt() {
        check(vec![("x", vec![5])], |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            // keep strictly positive for ln/sqrt: sigmoid + 0.5
            let p = t.sigmoid(x);
            let p = t.add_scalar(p, 0.5);
            let sq = t.sqrt(p);
            let lg = t.ln(p);
            let r = t.recip(p, 1e-6);
            let a = t.add(sq, lg);
            let b = t.mul(a, r);
            let l = t.sum_all(b);
            (t, l)
        });
    }

    #[test]
    fn gc_segment_max_away_from_ties() {
        // Values well separated so the finite-difference step cannot flip
        // the argmax (max is piecewise linear).
        let mut store = ParamStore::new();
        let id = store.register("x", vec![5], vec![0.1, 0.9, 0.3, 1.4, 0.2]);
        let seg = Arc::new(vec![0usize, 0, 1, 1, 1]);
        let res = gradcheck(&mut store, &[id], 1e-3, 1e-2, move |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let m = t.segment_max(x, seg.clone(), 2);
            let l = t.sum_all(m);
            (t, l)
        });
        assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn gc_mean_last_dim_mul_row() {
        check(vec![("x", vec![3, 4]), ("r", vec![4])], |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let r = t.param(s, ParamId(1));
            let m = t.mul_row(x, r);
            let mm = t.mean_last_dim(m);
            let l = t.sum_all(mm);
            (t, l)
        });
    }

    #[test]
    fn gc_sum_rows_broadcast_chain() {
        check(vec![("x", vec![3, 4]), ("s", vec![1])], |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId(0));
            let sc = t.param(s, ParamId(1));
            let r = t.sum_rows(x);
            let b = t.broadcast_scalar(sc, 4);
            let y = t.mul(r, b);
            let e = t.elu(y, 1.0);
            let l = t.sum_all(e);
            (t, l)
        });
    }
}
