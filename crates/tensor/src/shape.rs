//! Tensor shapes: thin wrapper over a dimension list with the helpers the
//! engine's kernels need (row-major layout assumed everywhere).

use std::fmt;

/// The shape of a tensor (row-major). Rank 0 is represented as `[]` and
/// denotes a scalar with one element; ranks 1–3 are used throughout HARP.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// A scalar shape (`[]`, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dims; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension `i`. Panics if out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The size of the last dimension, or 1 for scalars.
    pub fn last_dim(&self) -> usize {
        self.0.last().copied().unwrap_or(1)
    }

    /// Interpret as a matrix `[rows, cols]`. A 1-D tensor is viewed as a
    /// single row; a scalar as `[1, 1]`. Panics for rank > 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.0.as_slice() {
            [] => (1, 1),
            [n] => (1, *n),
            [r, c] => (*r, *c),
            // lint: allow(panic) — documented API contract (rank <= 2)
            other => panic!("expected rank <= 2 shape, got {:?}", other),
        }
    }

    /// Interpret as a batched matrix `[batch, rows, cols]`. Panics unless
    /// rank is exactly 3.
    pub fn as_batched(&self) -> (usize, usize, usize) {
        match self.0.as_slice() {
            [b, r, c] => (*b, *r, *c),
            // lint: allow(panic) — documented API contract (rank == 3)
            other => panic!("expected rank-3 shape, got {:?}", other),
        }
    }

    /// Number of "rows" when the tensor is viewed as a 2-D array of rows of
    /// width [`Shape::last_dim`]. Scalars and rank-1 tensors have one row.
    pub fn leading_rows(&self) -> usize {
        if self.0.is_empty() {
            1
        } else {
            self.0[..self.0.len() - 1].iter().product()
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.as_matrix(), (1, 1));
        assert_eq!(s.leading_rows(), 1);
        assert_eq!(s.last_dim(), 1);
    }

    #[test]
    fn vector_shape() {
        let s = Shape(vec![5]);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.numel(), 5);
        assert_eq!(s.as_matrix(), (1, 5));
        assert_eq!(s.leading_rows(), 1);
    }

    #[test]
    fn matrix_shape() {
        let s = Shape(vec![3, 4]);
        assert_eq!(s.as_matrix(), (3, 4));
        assert_eq!(s.numel(), 12);
        assert_eq!(s.leading_rows(), 3);
        assert_eq!(s.last_dim(), 4);
    }

    #[test]
    fn batched_shape() {
        let s = Shape(vec![2, 3, 4]);
        assert_eq!(s.as_batched(), (2, 3, 4));
        assert_eq!(s.leading_rows(), 6);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    #[should_panic(expected = "rank-3")]
    fn batched_requires_rank3() {
        Shape(vec![3, 4]).as_batched();
    }
}
