//! The tape: operation recording, forward evaluation, and reverse-mode
//! gradient propagation.
//!
//! Every constructor method both records the op and eagerly computes its
//! forward value, so intermediate values (e.g. link utilizations inside the
//! RAU loop) can be inspected mid-graph with [`Tape::value`] — HARP uses this
//! to pick data-dependent bottleneck indices while keeping gradients exact
//! (subgradient through the argmax).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use harp_obs::Counter;

use crate::kernels;

/// Nodes recorded across all tapes (counts forward-op executions, since
/// every constructor computes its value eagerly).
static NODES_RECORDED: Counter = Counter::new("tape.nodes_recorded");
/// Reverse passes run (`backward` / `backward_into` / `gradients`).
static BACKWARD_PASSES: Counter = Counter::new("tape.backward_passes");
use crate::op::Op;
use crate::param::{ParamId, ParamStore};
use crate::shape::Shape;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[must_use = "a Var is the only handle to the node just recorded; dropping it usually means a lost subgraph"]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node's position on its tape (0-based recording order).
    ///
    /// Stable for the lifetime of the tape: analysis tools can use it to key
    /// per-node side tables.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Read-only view of one recorded tape node, exposed for analysis tools
/// (see the `harp-verify` crate). Borrowed from the tape; indices in
/// [`NodeView::op`] refer to earlier nodes of the same tape.
#[derive(Clone, Copy, Debug)]
pub struct NodeView<'a> {
    /// Handle of this node.
    pub var: Var,
    /// The recorded operation, including input handles.
    pub op: &'a Op,
    /// Shape recorded at construction time.
    pub shape: &'a Shape,
    /// Forward value computed eagerly at construction time.
    pub value: &'a [f32],
    /// Parameter provenance: set iff this leaf was injected with
    /// [`Tape::param`] from a `ParamStore`.
    pub param: Option<ParamId>,
}

struct Node {
    op: Op,
    shape: Shape,
    /// `(offset, len)` of this node's forward value in the tape's arena
    /// buffer. Values are bump-allocated: each constructor appends at the
    /// buffer tail, so offsets are monotone in recording order and a node's
    /// value never moves relative to the buffer once recorded.
    val: (usize, usize),
    /// Set when this leaf mirrors a parameter in a `ParamStore`.
    param: Option<ParamId>,
    /// Integer side-channel saved by forward for backward (argmaxes).
    aux_idx: Vec<usize>,
    /// Float side-channel saved by forward for backward (inv-std, etc.).
    aux_f: Vec<f32>,
}

/// Reusable backing storage for a [`Tape`]: the bump arena holding every
/// node's forward value, plus the node table itself.
///
/// [`Tape::new`] acquires an arena from a small global pool and `Drop`
/// returns it cleared with capacity kept, so steady-state forward passes
/// (the per-request cached-inference path in particular) allocate nothing
/// for tape values beyond first-touch growth. Hold an arena explicitly with
/// [`Tape::with_arena`] / [`Tape::recycle`] to pin reuse to one call site
/// instead of sharing through the pool.
#[derive(Default)]
pub struct TapeArena {
    buf: Vec<f32>,
    nodes: Vec<Node>,
}

impl TapeArena {
    /// An empty arena (no reserved capacity; it grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity of the value buffer in floats (diagnostics only).
    pub fn value_capacity(&self) -> usize {
        self.buf.capacity()
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.nodes.clear();
    }
}

/// Arenas parked between tapes. Bounded: beyond [`ARENA_POOL_MAX`] entries
/// a dropped tape's storage is freed instead of pooled, so a transient
/// burst of live tapes does not pin memory forever.
static ARENA_POOL: Mutex<Vec<TapeArena>> = Mutex::new(Vec::new());
const ARENA_POOL_MAX: usize = 4;
/// Tapes created from a pooled (warm) arena vs fresh storage.
static ARENA_REUSED: Counter = Counter::new("tape.arena_reused");
static ARENA_FRESH: Counter = Counter::new("tape.arena_fresh");

/// A reverse-mode autodiff tape. Create one per forward/backward pass.
pub struct Tape {
    /// Bump arena for node values; `Node.val` ranges index into it.
    buf: Vec<f32>,
    nodes: Vec<Node>,
    /// Instant of the previous node record; `Some` iff per-op forward
    /// timing was on (`harp_obs::op_timing_enabled`) at construction.
    /// Because values are computed eagerly, the delta between consecutive
    /// records ≈ the newer op's forward compute time (plus caller glue),
    /// which is what the `tape.fwd.<OpKind>` histograms accumulate.
    fwd_clock: Option<Instant>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Tape {
    /// Park this tape's storage in the global arena pool (cleared, with
    /// capacity kept) so the next [`Tape::new`] skips the big allocations.
    fn drop(&mut self) {
        if self.buf.capacity() == 0 && self.nodes.capacity() == 0 {
            return;
        }
        let mut arena = TapeArena {
            buf: std::mem::take(&mut self.buf),
            nodes: std::mem::take(&mut self.nodes),
        };
        arena.clear();
        if let Ok(mut pool) = ARENA_POOL.lock() {
            if pool.len() < ARENA_POOL_MAX {
                pool.push(arena);
            }
        }
    }
}

impl Tape {
    /// An empty tape, backed by a pooled arena when one is parked (see
    /// [`TapeArena`]) or by fresh storage otherwise.
    pub fn new() -> Self {
        let arena = ARENA_POOL.lock().ok().and_then(|mut pool| pool.pop());
        match &arena {
            Some(_) => ARENA_REUSED.add(1),
            None => ARENA_FRESH.add(1),
        }
        Self::with_arena(arena.unwrap_or_default())
    }

    /// An empty tape backed by `arena`'s storage, bypassing the global
    /// pool. Pair with [`Tape::recycle`] to keep one arena hot across a
    /// caller-managed loop.
    pub fn with_arena(mut arena: TapeArena) -> Self {
        arena.clear();
        Tape {
            buf: arena.buf,
            nodes: arena.nodes,
            fwd_clock: harp_obs::op_timing_enabled().then(Instant::now),
        }
    }

    /// Tear down this tape and hand back its storage for reuse, bypassing
    /// the global pool.
    pub fn recycle(mut self) -> TapeArena {
        let mut arena = TapeArena {
            buf: std::mem::take(&mut self.buf),
            nodes: std::mem::take(&mut self.nodes),
        };
        std::mem::forget(self);
        arena.clear();
        arena
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &[f32] {
        let (o, l) = self.nodes[v.0].val;
        &self.buf[o..o + l]
    }

    /// `(offset, len)` of `v`'s value in the arena buffer.
    fn range(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].val
    }

    /// The shape of `v`.
    pub fn shape(&self, v: Var) -> &Shape {
        &self.nodes[v.0].shape
    }

    /// The scalar value of a 1-element tensor. Panics otherwise.
    pub fn scalar_value(&self, v: Var) -> f32 {
        let n = &self.nodes[v.0];
        assert_eq!(n.val.1, 1, "scalar_value on shape {:?}", n.shape);
        self.buf[n.val.0]
    }

    /// For a [`Tape::max_all`] node: the flat index of the maximum found in
    /// the forward pass.
    pub fn argmax_of(&self, v: Var) -> usize {
        let n = &self.nodes[v.0];
        assert!(
            matches!(n.op, Op::MaxAll(_)),
            "argmax_of requires a max_all node"
        );
        n.aux_idx[0]
    }

    /// For a [`Tape::segment_max`] node: per-segment argmax (indices into
    /// the *input* vector) found in the forward pass.
    pub fn segment_argmax_of(&self, v: Var) -> &[usize] {
        let n = &self.nodes[v.0];
        assert!(
            matches!(n.op, Op::SegmentMax(_, _, _)),
            "segment_argmax_of requires a segment_max node"
        );
        &n.aux_idx
    }

    /// Read-only view of the node behind `v`.
    pub fn node(&self, v: Var) -> NodeView<'_> {
        let n = &self.nodes[v.0];
        NodeView {
            var: v,
            op: &n.op,
            shape: &n.shape,
            value: &self.buf[n.val.0..n.val.0 + n.val.1],
            param: n.param,
        }
    }

    /// Iterate over all recorded nodes in recording (topological) order.
    ///
    /// Every input handle of a yielded node refers to a node yielded
    /// earlier, so single forward passes over this iterator can propagate
    /// per-node facts (shapes, value intervals) and single reverse passes
    /// can propagate reachability — the basis of the `harp-verify` static
    /// analyzer.
    pub fn nodes(&self) -> impl Iterator<Item = NodeView<'_>> {
        self.nodes.iter().enumerate().map(|(i, n)| NodeView {
            var: Var(i),
            op: &n.op,
            shape: &n.shape,
            value: &self.buf[n.val.0..n.val.0 + n.val.1],
            param: n.param,
        })
    }

    /// Parameter provenance of `v` (set iff it was injected with
    /// [`Tape::param`]).
    pub fn param_of(&self, v: Var) -> Option<ParamId> {
        self.nodes[v.0].param
    }

    /// Overwrite the recorded shape of `v` without touching its value
    /// buffer or recomputing anything downstream.
    ///
    /// This deliberately breaks the tape's invariants: it exists so the
    /// `harp-verify` test suite can simulate a buggy constructor and assert
    /// the analyzer catches the inconsistency. Never call it from model
    /// code.
    #[doc(hidden)]
    pub fn corrupt_shape_for_test(&mut self, v: Var, shape: Vec<usize>) {
        self.nodes[v.0].shape = Shape(shape);
    }

    /// Overwrite the integer aux side-channel (the argmaxes saved by
    /// `max_all` / `segment_max`) of `v` without recomputing anything.
    ///
    /// Like [`Tape::corrupt_shape_for_test`], this deliberately breaks the
    /// tape's invariants: it simulates a forward pass whose accumulation
    /// ran in a non-canonical order (e.g. a parallel max with a different
    /// tie-break), so the `harp-verify` reduction-order audit can be
    /// tested. Never call it from model code.
    #[doc(hidden)]
    pub fn corrupt_aux_for_test(&mut self, v: Var, aux_idx: Vec<usize>) {
        self.nodes[v.0].aux_idx = aux_idx;
    }

    /// Record a node whose value is everything appended to the arena buffer
    /// since `start` (i.e. `buf[start..]` at the time of the call).
    fn push(&mut self, op: Op, shape: Shape, start: usize) -> Var {
        self.push_aux(op, shape, start, Vec::new(), Vec::new())
    }

    fn push_aux(
        &mut self,
        op: Op,
        shape: Shape,
        start: usize,
        aux_idx: Vec<usize>,
        aux_f: Vec<f32>,
    ) -> Var {
        let len = self.buf.len() - start;
        debug_assert_eq!(shape.numel(), len, "value/shape mismatch");
        NODES_RECORDED.add(1);
        if let Some(last) = &mut self.fwd_clock {
            let now = Instant::now();
            let ns = u64::try_from(now.duration_since(*last).as_nanos()).unwrap_or(u64::MAX);
            harp_obs::histogram(&format!("tape.fwd.{}", op.kind())).record(ns);
            *last = now;
        }
        self.nodes.push(Node {
            op,
            shape,
            val: (start, len),
            param: None,
            aux_idx,
            aux_f,
        });
        Var(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// A constant tensor (no gradient).
    pub fn constant(&mut self, shape: Vec<usize>, data: Vec<f32>) -> Var {
        self.constant_slice(shape, &data)
    }

    /// [`Self::constant`] from a borrowed slice: copies straight into the
    /// tape arena without requiring an owned `Vec`. This is the right entry
    /// for hot paths that inject a large shared buffer every forward pass
    /// (e.g. a cached embedding table) — one copy instead of clone + copy.
    pub fn constant_slice(&mut self, shape: Vec<usize>, data: &[f32]) -> Var {
        let shape = Shape(shape);
        assert_eq!(shape.numel(), data.len(), "constant: shape/data mismatch");
        let start = self.buf.len();
        self.buf.extend_from_slice(data);
        self.push(Op::Leaf, shape, start)
    }

    /// A constant `[rows.len(), w]` tensor built by gathering rows of a
    /// host-side `[data.len()/w, w]` row-major table straight into the tape
    /// arena. Equivalent (bit-for-bit) to `constant_slice` of the full
    /// table followed by `gather_rows`, but copies only the rows actually
    /// used — the entry for serving paths that index a large epoch-cached
    /// table per request.
    pub fn constant_rows(&mut self, data: &[f32], w: usize, rows: &[usize]) -> Var {
        assert!(w > 0, "constant_rows: zero row width");
        assert_eq!(
            data.len() % w,
            0,
            "constant_rows: data not a multiple of width"
        );
        let nrows = data.len() / w;
        let start = self.buf.len();
        self.buf.reserve(rows.len() * w);
        for &r in rows {
            assert!(r < nrows, "constant_rows: row {r} out of range {nrows}");
            self.buf.extend_from_slice(&data[r * w..(r + 1) * w]);
        }
        self.push(Op::Leaf, Shape(vec![rows.len(), w]), start)
    }

    /// A constant scalar.
    pub fn scalar(&mut self, v: f32) -> Var {
        let start = self.buf.len();
        self.buf.push(v);
        self.push(Op::Leaf, Shape::scalar(), start)
    }

    /// A constant tensor of zeros.
    pub fn zeros(&mut self, shape: Vec<usize>) -> Var {
        let shape = Shape(shape);
        let n = shape.numel();
        let start = self.buf.len();
        self.buf.resize(start + n, 0.0);
        self.push(Op::Leaf, shape, start)
    }

    /// Inject a parameter from `store` as a differentiable leaf; gradients
    /// accumulate into the store on [`Tape::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let start = self.buf.len();
        self.buf.extend_from_slice(store.data(id));
        let v = self.push(Op::Leaf, store.shape(id).clone(), start);
        self.nodes[v.0].param = Some(id);
        v
    }

    // ------------------------------------------------------------------
    // Elementwise binary
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, a: Var, b: Var, what: &str) {
        assert_eq!(
            self.nodes[a.0].shape, self.nodes[b.0].shape,
            "{}: shape mismatch {:?} vs {:?}",
            what, self.nodes[a.0].shape, self.nodes[b.0].shape
        );
    }

    /// Copy `a`'s value to the buffer tail and combine it in place with
    /// `b`'s value: `tail[i] = f(a[i], b[i])`.
    fn binary(&mut self, a: Var, b: Var, op: Op, f: impl Fn(f32, f32) -> f32) -> Var {
        let (ao, alen) = self.range(a);
        let (bo, _) = self.range(b);
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        let (head, tail) = self.buf.split_at_mut(start);
        for (t, &s) in tail.iter_mut().zip(&head[bo..bo + alen]) {
            *t = f(*t, s);
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(op, sh, start)
    }

    /// Elementwise `a + b` (identical shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "add");
        self.binary(a, b, Op::Add(a, b), |x, y| x + y)
    }

    /// Elementwise `a - b` (identical shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "sub");
        self.binary(a, b, Op::Sub(a, b), |x, y| x - y)
    }

    /// Elementwise `a * b` (identical shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "mul");
        self.binary(a, b, Op::Mul(a, b), |x, y| x * y)
    }

    /// Elementwise `a / b` (identical shapes).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "div");
        self.binary(a, b, Op::Div(a, b), |x, y| x / y)
    }

    // ------------------------------------------------------------------
    // Elementwise unary
    // ------------------------------------------------------------------

    /// Copy `a`'s value to the buffer tail and map it in place.
    fn unary(&mut self, a: Var, op: Op, f: impl Fn(f32) -> f32) -> Var {
        let (ao, alen) = self.range(a);
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        for x in &mut self.buf[start..] {
            *x = f(*x);
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(op, sh, start)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, Op::Neg(a), |x| -x)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary(a, Op::Exp(a), f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, a: Var) -> Var {
        self.unary(a, Op::Ln(a), f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: Var) -> Var {
        self.unary(a, Op::Sqrt(a), f32::sqrt)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        self.unary(a, Op::LeakyRelu(a, alpha), move |x| {
            if x > 0.0 {
                x
            } else {
                alpha * x
            }
        })
    }

    /// Elementwise ELU with coefficient `alpha`.
    pub fn elu(&mut self, a: Var, alpha: f32) -> Var {
        self.unary(a, Op::Elu(a, alpha), move |x| {
            if x > 0.0 {
                x
            } else {
                alpha * (x.exp() - 1.0)
            }
        })
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, Op::Sigmoid(a), |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, Op::Tanh(a), f32::tanh)
    }

    /// `a * c` for a constant `c`.
    pub fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        self.unary(a, Op::MulScalar(a, c), move |x| x * c)
    }

    /// `a + c` for a constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        self.unary(a, Op::AddScalar(a, c), move |x| x + c)
    }

    /// Guarded reciprocal `1 / max(a, eps)`.
    pub fn recip(&mut self, a: Var, eps: f32) -> Var {
        assert!(eps > 0.0, "recip: eps must be positive");
        self.unary(a, Op::Recip(a, eps), move |x| 1.0 / x.max(eps))
    }

    // ------------------------------------------------------------------
    // Broadcast helpers
    // ------------------------------------------------------------------

    /// Add a row vector `b` (length = last dim of `a`) to every row of `a`.
    pub fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        assert_eq!(
            self.nodes[b.0].shape.numel(),
            w,
            "add_bias: bias length {} vs last dim {}",
            self.nodes[b.0].shape.numel(),
            w
        );
        let rows = self.nodes[a.0].shape.leading_rows();
        let (ao, alen) = self.range(a);
        let (bo, _) = self.range(b);
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        let (head, tail) = self.buf.split_at_mut(start);
        let bias = &head[bo..bo + w];
        for r in 0..rows {
            for j in 0..w {
                tail[r * w + j] += bias[j];
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::AddBias(a, b), sh, start)
    }

    /// Multiply every row of `a` elementwise by a row vector `b`.
    pub fn mul_row(&mut self, a: Var, b: Var) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        assert_eq!(
            self.nodes[b.0].shape.numel(),
            w,
            "mul_row: row length mismatch"
        );
        let rows = self.nodes[a.0].shape.leading_rows();
        let (ao, alen) = self.range(a);
        let (bo, _) = self.range(b);
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        let (head, tail) = self.buf.split_at_mut(start);
        let row = &head[bo..bo + w];
        for r in 0..rows {
            for j in 0..w {
                tail[r * w + j] *= row[j];
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::MulRow(a, b), sh, start)
    }

    /// Replicate a 1-element tensor into a rank-1 vector of length `n`.
    pub fn broadcast_scalar(&mut self, a: Var, n: usize) -> Var {
        assert_eq!(
            self.nodes[a.0].val.1, 1,
            "broadcast_scalar: input must have one element"
        );
        let x = self.buf[self.nodes[a.0].val.0];
        let start = self.buf.len();
        self.buf.resize(start + n, x);
        self.push(Op::BroadcastScalar(a, n), Shape(vec![n]), start)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `[m,k] x [k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.nodes[a.0].shape.as_matrix();
        let (k2, n) = self.nodes[b.0].shape.as_matrix();
        assert_eq!(k, k2, "matmul: inner dims {} vs {}", k, k2);
        let (ao, alen) = self.range(a);
        let (bo, blen) = self.range(b);
        let start = self.buf.len();
        self.buf.resize(start + m * n, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        kernels::matmul_into(&head[ao..ao + alen], &head[bo..bo + blen], m, k, n, tail);
        self.push(Op::MatMul(a, b), Shape(vec![m, n]), start)
    }

    /// Fused `relu(a @ w + bias)`: one kernel pass over `[m,k] x [k,n]`
    /// plus a length-`n` bias row, bitwise-equal to the unfused
    /// `matmul` → `add_bias` → `relu` chain (the kernel epilogue applies
    /// the same float operations in the same order; see
    /// [`kernels::matmul_bias_act`]).
    pub fn matmul_bias_relu(&mut self, a: Var, w: Var, b: Var) -> Var {
        self.fused_matmul_bias(a, w, b, None)
    }

    /// Fused `leaky_relu(a @ w + bias, alpha)`. `alpha` must be positive:
    /// backward recovers the pre-activation sign from the saved output,
    /// which requires a sign-preserving activation.
    pub fn matmul_bias_leaky_relu(&mut self, a: Var, w: Var, b: Var, alpha: f32) -> Var {
        assert!(
            alpha > 0.0,
            "matmul_bias_leaky_relu: alpha must be positive"
        );
        self.fused_matmul_bias(a, w, b, Some(alpha))
    }

    fn fused_matmul_bias(&mut self, a: Var, w: Var, b: Var, alpha: Option<f32>) -> Var {
        let (m, k) = self.nodes[a.0].shape.as_matrix();
        let (k2, n) = self.nodes[w.0].shape.as_matrix();
        assert_eq!(k, k2, "matmul_bias_act: inner dims {} vs {}", k, k2);
        assert_eq!(
            self.nodes[b.0].shape.numel(),
            n,
            "matmul_bias_act: bias length {} vs out cols {}",
            self.nodes[b.0].shape.numel(),
            n
        );
        let (ao, alen) = self.range(a);
        let (wo, wlen) = self.range(w);
        let (bo, blen) = self.range(b);
        let start = self.buf.len();
        self.buf.resize(start + m * n, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        kernels::matmul_bias_act_into(
            &head[ao..ao + alen],
            &head[wo..wo + wlen],
            &head[bo..bo + blen],
            alpha,
            m,
            k,
            n,
            tail,
        );
        let op = match alpha {
            None => Op::MatMulBiasRelu(a, w, b),
            Some(al) => Op::MatMulBiasLeakyRelu(a, w, b, al),
        };
        self.push(op, Shape(vec![m, n]), start)
    }

    /// Batched matrix product `[b,m,k] x [b,k,n]`.
    pub fn batch_matmul(&mut self, a: Var, b: Var) -> Var {
        let (ba, m, k) = self.nodes[a.0].shape.as_batched();
        let (bb, k2, n) = self.nodes[b.0].shape.as_batched();
        assert_eq!(ba, bb, "batch_matmul: batch dims {} vs {}", ba, bb);
        assert_eq!(k, k2, "batch_matmul: inner dims {} vs {}", k, k2);
        let (ao, _) = self.range(a);
        let (bo, _) = self.range(b);
        let start = self.buf.len();
        self.buf.resize(start + ba * m * n, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        for i in 0..ba {
            kernels::matmul_into(
                &head[ao + i * m * k..ao + (i + 1) * m * k],
                &head[bo + i * k * n..bo + (i + 1) * k * n],
                m,
                k,
                n,
                &mut tail[i * m * n..(i + 1) * m * n],
            );
        }
        self.push(Op::BatchMatMul(a, b), Shape(vec![ba, m, n]), start)
    }

    /// Swap the last two axes of a rank-2 or rank-3 tensor.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let sh = &self.nodes[a.0].shape;
        let (batches, m, n, out_shape) = match sh.rank() {
            2 => {
                let (m, n) = sh.as_matrix();
                (1, m, n, Shape(vec![n, m]))
            }
            3 => {
                let (b, m, n) = sh.as_batched();
                (b, m, n, Shape(vec![b, n, m]))
            }
            // lint: allow(panic) — documented API contract (rank 2 or 3)
            r => panic!("transpose_last2: rank must be 2 or 3, got {}", r),
        };
        let (ao, _) = self.range(a);
        let start = self.buf.len();
        self.buf.resize(start + batches * m * n, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        for t in 0..batches {
            let src = &head[ao + t * m * n..ao + (t + 1) * m * n];
            let dst = &mut tail[t * m * n..(t + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
        self.push(Op::TransposeLast2(a), out_shape, start)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterpret `a` with a new shape of equal element count.
    pub fn reshape(&mut self, a: Var, shape: Vec<usize>) -> Var {
        let shape = Shape(shape);
        assert_eq!(
            shape.numel(),
            self.nodes[a.0].val.1,
            "reshape: {:?} -> {:?} changes element count",
            self.nodes[a.0].shape,
            shape
        );
        let (ao, alen) = self.range(a);
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        self.push(Op::Reshape(a), shape, start)
    }

    /// Concatenate rank-2 tensors along the last axis.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = self.nodes[parts[0].0].shape.leading_rows();
        let mut widths = Vec::with_capacity(parts.len());
        let mut offs = Vec::with_capacity(parts.len());
        for &p in parts {
            assert_eq!(
                self.nodes[p.0].shape.leading_rows(),
                rows,
                "concat_cols: row counts differ"
            );
            widths.push(self.nodes[p.0].shape.last_dim());
            offs.push(self.nodes[p.0].val.0);
        }
        let total_w: usize = widths.iter().sum();
        let start = self.buf.len();
        // Row-major tight copy loop (not per-row extend_from_within): this
        // runs every RAU iteration on [tunnels, d_model + features] inputs,
        // where per-call overhead dominates the actual copying. Writing
        // each output row contiguously keeps stores sequential.
        self.buf.resize(start + rows * total_w, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        for (r, out_row) in tail.chunks_exact_mut(total_w).enumerate() {
            let mut col = 0usize;
            for (&w, &o) in widths.iter().zip(&offs) {
                if w == 1 {
                    out_row[col] = head[o + r];
                } else {
                    out_row[col..col + w].copy_from_slice(&head[o + r * w..o + (r + 1) * w]);
                }
                col += w;
            }
        }
        self.push(
            Op::ConcatCols(parts.to_vec()),
            Shape(vec![rows, total_w]),
            start,
        )
    }

    /// Concatenate tensors along axis 0 (rank-1: lengths add; rank-2: rows
    /// add, equal column counts).
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let rank1 = self.nodes[parts[0].0].shape.rank() <= 1;
        let start = self.buf.len();
        if rank1 {
            for &p in parts {
                assert!(
                    self.nodes[p.0].shape.rank() <= 1,
                    "concat_rows: mixed ranks"
                );
                let (o, l) = self.range(p);
                self.buf.extend_from_within(o..o + l);
            }
            let n = self.buf.len() - start;
            self.push(Op::ConcatRows(parts.to_vec()), Shape(vec![n]), start)
        } else {
            let cols = self.nodes[parts[0].0].shape.last_dim();
            let mut rows = 0;
            for &p in parts {
                assert_eq!(
                    self.nodes[p.0].shape.last_dim(),
                    cols,
                    "concat_rows: column counts differ"
                );
                rows += self.nodes[p.0].shape.leading_rows();
                let (o, l) = self.range(p);
                self.buf.extend_from_within(o..o + l);
            }
            self.push(
                Op::ConcatRows(parts.to_vec()),
                Shape(vec![rows, cols]),
                start,
            )
        }
    }

    /// Select rows of a rank-2 tensor (or elements of a rank-1 tensor) by
    /// index, with repetition allowed.
    pub fn gather_rows(&mut self, a: Var, idx: Arc<Vec<usize>>) -> Var {
        let sh = &self.nodes[a.0].shape;
        let (rows, w, out_shape) = match sh.rank() {
            1 => (sh.dim(0), 1usize, Shape(vec![idx.len()])),
            2 => (sh.dim(0), sh.dim(1), Shape(vec![idx.len(), sh.dim(1)])),
            // lint: allow(panic) — documented API contract (rank 1 or 2)
            r => panic!("gather_rows: rank must be 1 or 2, got {}", r),
        };
        let (ao, _) = self.range(a);
        let start = self.buf.len();
        // Tight copy loops: gathers run several times per RAU iteration
        // over (tunnel, edge) incidence pairs, so per-element
        // extend_from_within overhead is the dominant cost, not the copy.
        self.buf.resize(start + idx.len() * w, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        let src = &head[ao..ao + rows * w];
        if w == 1 {
            for (out, &i) in tail.iter_mut().zip(idx.iter()) {
                assert!(i < rows, "gather_rows: index {} out of {} rows", i, rows);
                *out = src[i];
            }
        } else {
            for (out, &i) in tail.chunks_exact_mut(w).zip(idx.iter()) {
                assert!(i < rows, "gather_rows: index {} out of {} rows", i, rows);
                out.copy_from_slice(&src[i * w..(i + 1) * w]);
            }
        }
        self.push(Op::GatherRows(a, idx), out_shape, start)
    }

    /// Columns `[start, end)` of a rank-2 tensor.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let (rows, cols) = self.nodes[a.0].shape.as_matrix();
        assert!(
            start < end && end <= cols,
            "slice_cols: [{start}, {end}) out of {cols} cols"
        );
        let w = end - start;
        let (ao, _) = self.range(a);
        let base = self.buf.len();
        self.buf.reserve(rows * w);
        for r in 0..rows {
            self.buf
                .extend_from_within(ao + r * cols + start..ao + r * cols + end);
        }
        self.push(Op::SliceCols(a, start, end), Shape(vec![rows, w]), base)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s: f32 = self.value(a).iter().sum();
        let start = self.buf.len();
        self.buf.push(s);
        self.push(Op::SumAll(a), Shape::scalar(), start)
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.nodes[a.0].val.1.max(1);
        let s: f32 = self.value(a).iter().sum::<f32>() / n as f32;
        let start = self.buf.len();
        self.buf.push(s);
        self.push(Op::MeanAll(a), Shape::scalar(), start)
    }

    /// Maximum element (scalar output; subgradient to the first argmax).
    pub fn max_all(&mut self, a: Var) -> Var {
        let vals = self.value(a);
        assert!(!vals.is_empty(), "max_all: empty tensor");
        let mut best = 0usize;
        for (i, &x) in vals.iter().enumerate() {
            if x > vals[best] {
                best = i;
            }
        }
        let m = vals[best];
        let start = self.buf.len();
        self.buf.push(m);
        self.push_aux(Op::MaxAll(a), Shape::scalar(), start, vec![best], vec![])
    }

    /// Sum over axis 0 of a rank-2 tensor, producing a row vector `[cols]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let (rows, cols) = self.nodes[a.0].shape.as_matrix();
        let (ao, _) = self.range(a);
        let start = self.buf.len();
        self.buf.resize(start + cols, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        for r in 0..rows {
            for j in 0..cols {
                tail[j] += head[ao + r * cols + j];
            }
        }
        self.push(Op::SumRows(a), Shape(vec![cols]), start)
    }

    /// Per-row mean over the last axis, producing `[rows, 1]`.
    pub fn mean_last_dim(&mut self, a: Var) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        let rows = self.nodes[a.0].shape.leading_rows();
        assert!(w > 0, "mean_last_dim: zero-width rows");
        let (ao, _) = self.range(a);
        let start = self.buf.len();
        self.buf.reserve(rows);
        for r in 0..rows {
            let s: f32 = self.buf[ao + r * w..ao + (r + 1) * w].iter().sum();
            self.buf.push(s / w as f32);
        }
        self.push(Op::MeanLastDim(a), Shape(vec![rows, 1]), start)
    }

    // ------------------------------------------------------------------
    // Segment ops
    // ------------------------------------------------------------------

    /// Scatter-add rows (or scalars for rank-1 input) into `n_segments`
    /// buckets: `out[seg[i]] += in[i]`.
    pub fn segment_sum(&mut self, a: Var, seg: Arc<Vec<usize>>, n_segments: usize) -> Var {
        let sh = &self.nodes[a.0].shape;
        let (rows, w, out_shape) = match sh.rank() {
            1 => (sh.dim(0), 1usize, Shape(vec![n_segments])),
            2 => (sh.dim(0), sh.dim(1), Shape(vec![n_segments, sh.dim(1)])),
            // lint: allow(panic) — documented API contract (rank 1 or 2)
            r => panic!("segment_sum: rank must be 1 or 2, got {}", r),
        };
        assert_eq!(seg.len(), rows, "segment_sum: segment index length");
        let (ao, _) = self.range(a);
        let start = self.buf.len();
        self.buf.resize(start + n_segments * w, 0.0);
        let (head, tail) = self.buf.split_at_mut(start);
        if w == 1 {
            // Accumulate runs of equal segment indices in a register (the
            // pair arrays are grouped by tunnel, so runs are long), storing
            // once per run. Element visit order per segment is unchanged,
            // and `acc = tail[s]; acc += x..; tail[s] = acc` is the same
            // left-associated chain as `tail[s] += x` one at a time, so the
            // bits match for any index order.
            let n = seg.len();
            let mut i = 0;
            while i < n {
                let s = seg[i];
                assert!(s < n_segments, "segment_sum: segment {} out of range", s);
                let mut acc = tail[s];
                let mut j = i;
                while j < n && seg[j] == s {
                    acc += head[ao + j];
                    j += 1;
                }
                tail[s] = acc;
                i = j;
            }
        } else {
            for (i, &s) in seg.iter().enumerate() {
                assert!(s < n_segments, "segment_sum: segment {} out of range", s);
                for j in 0..w {
                    tail[s * w + j] += head[ao + i * w + j];
                }
            }
        }
        self.push(Op::SegmentSum(a, seg, n_segments), out_shape, start)
    }

    /// Per-segment maximum of a rank-1 tensor. Every segment must receive at
    /// least one element. Subgradient to each segment's argmax.
    pub fn segment_max(&mut self, a: Var, seg: Arc<Vec<usize>>, n_segments: usize) -> Var {
        assert_eq!(self.nodes[a.0].shape.rank(), 1, "segment_max: rank-1 only");
        let (ao, alen) = self.range(a);
        assert_eq!(seg.len(), alen, "segment_max: segment index length");
        let mut best = vec![usize::MAX; n_segments];
        // Track the running maximum alongside the argmax so the scan never
        // re-reads vals[best[s]] (a second random access per element). The
        // comparison sequence is unchanged: bestv[s] mirrors vals[best[s]]
        // exactly, including NaN propagation.
        let mut bestv = vec![f32::NEG_INFINITY; n_segments];
        {
            let vals = &self.buf[ao..ao + alen];
            // Scan runs of equal segment indices with the running
            // (argmax, max) in registers, touching best[s]/bestv[s] once
            // per run. The comparison sequence per segment is exactly the
            // naive per-element loop's, so the result is identical
            // (including NaN handling) for any index order.
            let mut i = 0;
            while i < alen {
                let s = seg[i];
                assert!(s < n_segments, "segment_max: segment {} out of range", s);
                let (mut bi, mut bv) = (best[s], bestv[s]);
                let mut j = i;
                while j < alen && seg[j] == s {
                    if bi == usize::MAX || vals[j] > bv {
                        bi = j;
                        bv = vals[j];
                    }
                    j += 1;
                }
                best[s] = bi;
                bestv[s] = bv;
                i = j;
            }
        }
        let start = self.buf.len();
        self.buf.reserve(n_segments);
        for (s, &b) in best.iter().enumerate() {
            assert!(b != usize::MAX, "segment_max: segment {} is empty", s);
            let x = self.buf[ao + b];
            self.buf.push(x);
        }
        self.push_aux(
            Op::SegmentMax(a, seg, n_segments),
            Shape(vec![n_segments]),
            start,
            best,
            vec![],
        )
    }

    /// Softmax within each segment of a rank-1 tensor (segments need not be
    /// contiguous). This is the per-flow split-ratio normalization.
    pub fn segment_softmax(&mut self, a: Var, seg: Arc<Vec<usize>>, n_segments: usize) -> Var {
        assert_eq!(
            self.nodes[a.0].shape.rank(),
            1,
            "segment_softmax: rank-1 only"
        );
        let (ao, alen) = self.range(a);
        assert_eq!(seg.len(), alen, "segment_softmax: segment index length");
        // All three passes walk runs of equal segment indices, keeping the
        // per-segment state (max, exp-sum, divisor) in registers across a
        // run. Per-segment visit order and arithmetic association are the
        // naive loops', so results are bitwise-identical for any order.
        let mut mx = vec![f32::NEG_INFINITY; n_segments];
        {
            let vals = &self.buf[ao..ao + alen];
            let mut i = 0;
            while i < alen {
                let s = seg[i];
                assert!(s < n_segments, "segment_softmax: segment out of range");
                let mut m = mx[s];
                let mut j = i;
                while j < alen && seg[j] == s {
                    if vals[j] > m {
                        m = vals[j];
                    }
                    j += 1;
                }
                mx[s] = m;
                i = j;
            }
        }
        let mut sums = vec![0.0f32; n_segments];
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        {
            let out = &mut self.buf[start..];
            let mut i = 0;
            while i < alen {
                let s = seg[i];
                let m = mx[s];
                let mut acc = sums[s];
                let mut j = i;
                while j < alen && seg[j] == s {
                    let e = (out[j] - m).exp();
                    acc += e;
                    out[j] = e;
                    j += 1;
                }
                sums[s] = acc;
                i = j;
            }
            let mut i = 0;
            while i < alen {
                let s = seg[i];
                let d = sums[s];
                let mut j = i;
                while j < alen && seg[j] == s {
                    if d > 0.0 {
                        out[j] /= d;
                    }
                    j += 1;
                }
                i = j;
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::SegmentSoftmax(a, seg, n_segments), sh, start)
    }

    // ------------------------------------------------------------------
    // Softmax / normalization
    // ------------------------------------------------------------------

    /// Softmax over the last axis. `mask` (if given) must have length equal
    /// to either the full element count or the last dimension; entries equal
    /// to zero are excluded (probability 0).
    pub fn softmax_last_dim(&mut self, a: Var, mask: Option<Arc<Vec<f32>>>) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        let rows = self.nodes[a.0].shape.leading_rows();
        let (ao, alen) = self.range(a);
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        if let Some(m) = &mask {
            assert!(
                m.len() == w || m.len() == alen,
                "softmax mask: length {} must be {} or {}",
                m.len(),
                w,
                alen
            );
            for r in 0..rows {
                let row = &mut self.buf[start + r * w..start + (r + 1) * w];
                let mrow: &[f32] = if m.len() == w {
                    &m[..]
                } else {
                    &m[r * w..(r + 1) * w]
                };
                kernels::masked_softmax_inplace(row, mrow);
            }
        } else {
            for r in 0..rows {
                kernels::softmax_inplace(&mut self.buf[start + r * w..start + (r + 1) * w]);
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::SoftmaxLastDim(a, mask), sh, start)
    }

    /// Layer normalization over the last axis (no affine transform).
    pub fn layer_norm(&mut self, a: Var, eps: f32) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        let rows = self.nodes[a.0].shape.leading_rows();
        assert!(w > 0, "layer_norm: zero-width rows");
        let (ao, alen) = self.range(a);
        let start = self.buf.len();
        self.buf.extend_from_within(ao..ao + alen);
        let mut inv_stds = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &mut self.buf[start + r * w..start + (r + 1) * w];
            let mean: f32 = row.iter().sum::<f32>() / w as f32;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / w as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) * inv_std;
            }
            inv_stds.push(inv_std);
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push_aux(Op::LayerNorm(a, eps), sh, start, vec![], inv_stds)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from the scalar `loss`, accumulating
    /// parameter gradients into `store` (added to any existing gradients, so
    /// multiple backward passes accumulate like a batch).
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        let grads = self.gradients(loss);
        for (i, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, grads[i].as_ref()) {
                let dst = store.grad_mut(pid);
                for (d, s) in dst.iter_mut().zip(g) {
                    *d += *s;
                }
            }
        }
    }

    /// Like [`Tape::backward`], but accumulate parameter gradients into a
    /// detached [`crate::GradBuffer`] instead of the store itself.
    ///
    /// This is the data-parallel training primitive: workers share a
    /// `&ParamStore` for forward passes while each accumulates into its own
    /// buffer; the buffers are then merged serially in a fixed order
    /// ([`ParamStore::merge_grads`]), so the result is bitwise-reproducible
    /// for a given worker count.
    pub fn backward_into(&self, loss: Var, buf: &mut crate::GradBuffer) {
        let grads = self.gradients(loss);
        for (i, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, grads[i].as_ref()) {
                let dst = &mut buf.bufs[pid.0];
                for (d, s) in dst.iter_mut().zip(g) {
                    *d += *s;
                }
            }
        }
    }

    /// Compute gradients of the scalar `loss` with respect to every node.
    /// Returns one optional buffer per node (None = not on any path to the
    /// loss). Mostly useful for testing; training uses [`Tape::backward`].
    pub fn gradients(&self, loss: Var) -> Vec<Option<Vec<f32>>> {
        assert_eq!(
            self.nodes[loss.0].val.1, 1,
            "backward: loss must be scalar, got shape {:?}",
            self.nodes[loss.0].shape
        );
        BACKWARD_PASSES.add(1);
        let mut grads: Vec<Option<Vec<f32>>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(vec![1.0]);

        let op_timing = harp_obs::op_timing_enabled();
        for i in (0..=loss.0).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            if op_timing {
                let t0 = Instant::now();
                self.backprop_node(i, &g, &mut grads);
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                harp_obs::histogram(&format!("tape.bwd.{}", self.nodes[i].op.kind())).record(ns);
            } else {
                self.backprop_node(i, &g, &mut grads);
            }
            grads[i] = Some(g);
        }
        grads
    }

    fn grad_buf<'a>(&self, grads: &'a mut [Option<Vec<f32>>], v: Var) -> &'a mut Vec<f32> {
        let n = self.nodes[v.0].val.1;
        grads[v.0].get_or_insert_with(|| vec![0.0; n])
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&self, i: usize, dy: &[f32], grads: &mut [Option<Vec<f32>>]) {
        use Op::*;
        let node = &self.nodes[i];
        match &node.op {
            Leaf => {}

            Add(a, b) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
                let gb = self.grad_buf(grads, *b);
                for (g, d) in gb.iter_mut().zip(dy) {
                    *g += d;
                }
            }
            Sub(a, b) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
                let gb = self.grad_buf(grads, *b);
                for (g, d) in gb.iter_mut().zip(dy) {
                    *g -= d;
                }
            }
            Mul(a, b) => {
                let (av, bv) = (self.value(*a), self.value(*b));
                {
                    let ga = self.grad_buf(grads, *a);
                    for ((g, d), x) in ga.iter_mut().zip(dy).zip(bv) {
                        *g += d * x;
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for ((g, d), x) in gb.iter_mut().zip(dy).zip(av) {
                    *g += d * x;
                }
            }
            Div(a, b) => {
                let (av, bv) = (self.value(*a), self.value(*b));
                {
                    let ga = self.grad_buf(grads, *a);
                    for ((g, d), x) in ga.iter_mut().zip(dy).zip(bv) {
                        *g += d / x;
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for (j, (g, d)) in gb.iter_mut().zip(dy).enumerate() {
                    *g -= d * av[j] / (bv[j] * bv[j]);
                }
            }

            Neg(a) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g -= d;
                }
            }
            Exp(a) => {
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    *g += d * y;
                }
            }
            Ln(a) => {
                let xv = self.value(*a);
                let ga = self.grad_buf(grads, *a);
                for ((g, d), x) in ga.iter_mut().zip(dy).zip(xv) {
                    *g += d / x;
                }
            }
            Sqrt(a) => {
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    if *y > 0.0 {
                        *g += d * 0.5 / y;
                    }
                }
            }
            Relu(a) => {
                let xv = self.value(*a);
                let ga = self.grad_buf(grads, *a);
                for ((g, d), x) in ga.iter_mut().zip(dy).zip(xv) {
                    if *x > 0.0 {
                        *g += d;
                    }
                }
            }
            LeakyRelu(a, alpha) => {
                let xv = self.value(*a);
                let ga = self.grad_buf(grads, *a);
                for ((g, d), x) in ga.iter_mut().zip(dy).zip(xv) {
                    *g += d * if *x > 0.0 { 1.0 } else { *alpha };
                }
            }
            Elu(a, alpha) => {
                let xv = self.value(*a);
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for (j, (g, d)) in ga.iter_mut().zip(dy).enumerate() {
                    *g += d * if xv[j] > 0.0 { 1.0 } else { yv[j] + alpha };
                }
            }
            Sigmoid(a) => {
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    *g += d * y * (1.0 - y);
                }
            }
            Tanh(a) => {
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    *g += d * (1.0 - y * y);
                }
            }
            MulScalar(a, c) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d * c;
                }
            }
            AddScalar(a, _) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
            }
            Recip(a, eps) => {
                let xv = self.value(*a);
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for (j, (g, d)) in ga.iter_mut().zip(dy).enumerate() {
                    if xv[j] >= *eps {
                        *g -= d * yv[j] * yv[j];
                    }
                }
            }

            AddBias(a, b) => {
                let w = self.nodes[b.0].val.1;
                let rows = node.val.1 / w;
                {
                    let ga = self.grad_buf(grads, *a);
                    for (g, d) in ga.iter_mut().zip(dy) {
                        *g += d;
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for r in 0..rows {
                    for j in 0..w {
                        gb[j] += dy[r * w + j];
                    }
                }
            }
            MulRow(a, b) => {
                let w = self.nodes[b.0].val.1;
                let rows = node.val.1 / w;
                let av = self.value(*a);
                let bv = self.value(*b);
                {
                    let ga = self.grad_buf(grads, *a);
                    for r in 0..rows {
                        for j in 0..w {
                            ga[r * w + j] += dy[r * w + j] * bv[j];
                        }
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for r in 0..rows {
                    for j in 0..w {
                        gb[j] += dy[r * w + j] * av[r * w + j];
                    }
                }
            }
            BroadcastScalar(a, _) => {
                let ga = self.grad_buf(grads, *a);
                ga[0] += dy.iter().sum::<f32>();
            }

            MatMul(a, b) => {
                let (m, k) = self.nodes[a.0].shape.as_matrix();
                let (_, n) = self.nodes[b.0].shape.as_matrix();
                {
                    // da += dy * b^T
                    let ga = self.grad_buf(grads, *a);
                    kernels::matmul_a_bt(dy, self.value(*b), m, n, k, ga);
                }
                // db += a^T * dy
                let gb = self.grad_buf(grads, *b);
                kernels::matmul_at_b(self.value(*a), dy, m, k, n, gb);
            }
            MatMulBiasRelu(..) | MatMulBiasLeakyRelu(..) => {
                let (a, w, b, alpha) = match &node.op {
                    MatMulBiasRelu(a, w, b) => (*a, *w, *b, None),
                    MatMulBiasLeakyRelu(a, w, b, al) => (*a, *w, *b, Some(*al)),
                    _ => unreachable!(),
                };
                let (m, k) = self.nodes[a.0].shape.as_matrix();
                let (_, n) = self.nodes[w.0].shape.as_matrix();
                // Route dy through the activation using the saved output's
                // sign: alpha > 0 means y > 0 iff the pre-activation > 0.
                let yv = self.value(Var(i));
                let dh: Vec<f32> = match alpha {
                    None => yv
                        .iter()
                        .zip(dy)
                        .map(|(&y, &d)| if y > 0.0 { d } else { 0.0 })
                        .collect(),
                    Some(al) => yv
                        .iter()
                        .zip(dy)
                        .map(|(&y, &d)| if y > 0.0 { d } else { al * d })
                        .collect(),
                };
                {
                    // da += dh * w^T
                    let ga = self.grad_buf(grads, a);
                    kernels::matmul_a_bt(&dh, self.value(w), m, n, k, ga);
                }
                {
                    // dw += a^T * dh
                    let gw = self.grad_buf(grads, w);
                    kernels::matmul_at_b(self.value(a), &dh, m, k, n, gw);
                }
                // db: column sums of dh in row-increasing order — the same
                // order as the unfused AddBias backward.
                let gb = self.grad_buf(grads, b);
                for r in 0..m {
                    for j in 0..n {
                        gb[j] += dh[r * n + j];
                    }
                }
            }
            BatchMatMul(a, b) => {
                let (bt, m, k) = self.nodes[a.0].shape.as_batched();
                let (_, _, n) = self.nodes[b.0].shape.as_batched();
                {
                    let ga = self.grad_buf(grads, *a);
                    let bv = self.value(*b);
                    for t in 0..bt {
                        kernels::matmul_a_bt(
                            &dy[t * m * n..(t + 1) * m * n],
                            &bv[t * k * n..(t + 1) * k * n],
                            m,
                            n,
                            k,
                            &mut ga[t * m * k..(t + 1) * m * k],
                        );
                    }
                }
                let gb = self.grad_buf(grads, *b);
                let av = self.value(*a);
                for t in 0..bt {
                    kernels::matmul_at_b(
                        &av[t * m * k..(t + 1) * m * k],
                        &dy[t * m * n..(t + 1) * m * n],
                        m,
                        k,
                        n,
                        &mut gb[t * k * n..(t + 1) * k * n],
                    );
                }
            }
            TransposeLast2(a) => {
                let sh = &self.nodes[a.0].shape;
                let ga = self.grad_buf(grads, *a);
                match sh.rank() {
                    2 => {
                        let (m, n) = sh.as_matrix();
                        // dy has shape [n, m]; transpose back.
                        for j in 0..n {
                            for i2 in 0..m {
                                ga[i2 * n + j] += dy[j * m + i2];
                            }
                        }
                    }
                    3 => {
                        let (b, m, n) = sh.as_batched();
                        for t in 0..b {
                            for j in 0..n {
                                for i2 in 0..m {
                                    ga[t * m * n + i2 * n + j] += dy[t * m * n + j * m + i2];
                                }
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }

            Reshape(a) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
            }
            ConcatCols(parts) => {
                let rows = node.shape.leading_rows();
                let total_w = node.shape.last_dim();
                let mut offset = 0usize;
                for &p in parts {
                    let w = self.nodes[p.0].shape.last_dim();
                    let gp = self.grad_buf(grads, p);
                    for r in 0..rows {
                        for j in 0..w {
                            gp[r * w + j] += dy[r * total_w + offset + j];
                        }
                    }
                    offset += w;
                }
            }
            ConcatRows(parts) => {
                let mut offset = 0usize;
                for &p in parts {
                    let n = self.nodes[p.0].val.1;
                    let gp = self.grad_buf(grads, p);
                    for j in 0..n {
                        gp[j] += dy[offset + j];
                    }
                    offset += n;
                }
            }
            GatherRows(a, idx) => {
                let w = if self.nodes[a.0].shape.rank() == 2 {
                    self.nodes[a.0].shape.dim(1)
                } else {
                    1
                };
                let ga = self.grad_buf(grads, *a);
                for (o, &src) in idx.iter().enumerate() {
                    for j in 0..w {
                        ga[src * w + j] += dy[o * w + j];
                    }
                }
            }
            SliceCols(a, start, end) => {
                let (rows, cols) = self.nodes[a.0].shape.as_matrix();
                let w = end - start;
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    for j in 0..w {
                        ga[r * cols + start + j] += dy[r * w + j];
                    }
                }
            }

            SumAll(a) => {
                let ga = self.grad_buf(grads, *a);
                for g in ga.iter_mut() {
                    *g += dy[0];
                }
            }
            MeanAll(a) => {
                let n = self.nodes[a.0].val.1.max(1) as f32;
                let ga = self.grad_buf(grads, *a);
                for g in ga.iter_mut() {
                    *g += dy[0] / n;
                }
            }
            MaxAll(a) => {
                let best = node.aux_idx[0];
                let ga = self.grad_buf(grads, *a);
                ga[best] += dy[0];
            }
            SumRows(a) => {
                let (rows, cols) = self.nodes[a.0].shape.as_matrix();
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    for j in 0..cols {
                        ga[r * cols + j] += dy[j];
                    }
                }
            }
            MeanLastDim(a) => {
                let w = self.nodes[a.0].shape.last_dim();
                let rows = self.nodes[a.0].shape.leading_rows();
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    let d = dy[r] / w as f32;
                    for j in 0..w {
                        ga[r * w + j] += d;
                    }
                }
            }

            SegmentSum(a, seg, _) => {
                let sh = &self.nodes[a.0].shape;
                let w = if sh.rank() == 2 { sh.dim(1) } else { 1 };
                let ga = self.grad_buf(grads, *a);
                for (i2, &s) in seg.iter().enumerate() {
                    for j in 0..w {
                        ga[i2 * w + j] += dy[s * w + j];
                    }
                }
            }
            SegmentMax(a, _, _) => {
                let ga = self.grad_buf(grads, *a);
                for (s, &b) in node.aux_idx.iter().enumerate() {
                    ga[b] += dy[s];
                }
            }
            SegmentSoftmax(a, seg, n_segments) => {
                let yv = self.value(Var(i));
                // per-segment dot(y, dy)
                let mut dots = vec![0.0f32; *n_segments];
                for (i2, &s) in seg.iter().enumerate() {
                    dots[s] += yv[i2] * dy[i2];
                }
                let ga = self.grad_buf(grads, *a);
                for (i2, &s) in seg.iter().enumerate() {
                    ga[i2] += yv[i2] * (dy[i2] - dots[s]);
                }
            }

            SoftmaxLastDim(a, _) => {
                let w = node.shape.last_dim();
                let rows = node.shape.leading_rows();
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    kernels::softmax_backward_row(
                        &yv[r * w..(r + 1) * w],
                        &dy[r * w..(r + 1) * w],
                        &mut ga[r * w..(r + 1) * w],
                    );
                }
            }
            LayerNorm(a, _) => {
                let w = node.shape.last_dim();
                let rows = node.shape.leading_rows();
                let yv = self.value(Var(i));
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    let inv_std = node.aux_f[r];
                    let yrow = &yv[r * w..(r + 1) * w];
                    let drow = &dy[r * w..(r + 1) * w];
                    let mean_d: f32 = drow.iter().sum::<f32>() / w as f32;
                    let mean_dy_y: f32 =
                        drow.iter().zip(yrow).map(|(d, y)| d * y).sum::<f32>() / w as f32;
                    for j in 0..w {
                        ga[r * w + j] += inv_std * (drow[j] - mean_d - yrow[j] * mean_dy_y);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_backward() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![3], vec![1.0, 2.0, 3.0]);
        let b = store.register("b", vec![3], vec![4.0, 5.0, 6.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let bv = t.param(&store, b);
        let m = t.mul(av, bv);
        let s = t.sum_all(m);
        assert!((t.scalar_value(s) - 32.0).abs() < 1e-5);
        t.backward(s, &mut store);
        assert_eq!(store.grad(a), &[4.0, 5.0, 6.0]);
        assert_eq!(store.grad(b), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_forward_and_backward() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let mut t = Tape::new();
        let x = t.constant(vec![1, 2], vec![3.0, 7.0]);
        let wv = t.param(&store, w);
        let y = t.matmul(x, wv);
        assert_eq!(t.value(y), &[3.0, 7.0]);
        let loss = t.sum_all(y);
        t.backward(loss, &mut store);
        // dW = x^T * [1,1] = [[3,3],[7,7]]
        assert_eq!(store.grad(w), &[3.0, 3.0, 7.0, 7.0]);
    }

    #[test]
    fn backward_into_matches_backward_bitwise() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2, 2], vec![0.3, -0.7, 1.1, 0.9]);
        let b = store.register("b", vec![2], vec![0.1, -0.2]);
        let build = |store: &ParamStore| {
            let mut t = Tape::new();
            let x = t.constant(vec![3, 2], vec![1.0, 2.0, -0.5, 0.25, 3.0, -1.5]);
            let wv = t.param(store, w);
            let bv = t.param(store, b);
            let h = t.matmul(x, wv);
            let h = t.add_bias(h, bv);
            let h = t.tanh(h);
            let loss = t.sum_all(h);
            (t, loss)
        };
        let (t1, l1) = build(&store);
        t1.backward(l1, &mut store);
        let direct_w = store.grad(w).to_vec();
        let direct_b = store.grad(b).to_vec();

        let mut buf = store.grad_buffer();
        let (t2, l2) = build(&store);
        t2.backward_into(l2, &mut buf);
        assert_eq!(buf.grad(w), &direct_w[..]);
        assert_eq!(buf.grad(b), &direct_b[..]);
    }

    #[test]
    fn max_all_subgradient() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![4], vec![1.0, 9.0, 3.0, 9.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let m = t.max_all(av);
        assert_eq!(t.scalar_value(m), 9.0);
        assert_eq!(t.argmax_of(m), 1); // first max wins
        t.backward(m, &mut store);
        assert_eq!(store.grad(a), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let mut t = Tape::new();
        let x = t.constant(vec![5], vec![1.0, 2.0, 3.0, 0.5, 0.5]);
        let seg = Arc::new(vec![0usize, 0, 1, 1, 1]);
        let y = t.segment_softmax(x, seg, 2);
        let v = t.value(y);
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
        assert!((v[2] + v[3] + v[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_sum_and_max() {
        let mut t = Tape::new();
        let x = t.constant(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let seg = Arc::new(vec![1usize, 0, 1, 0]);
        let s = t.segment_sum(x, seg.clone(), 2);
        assert_eq!(t.value(s), &[6.0, 4.0]);
        let m = t.segment_max(x, seg, 2);
        assert_eq!(t.value(m), &[4.0, 3.0]);
        assert_eq!(t.segment_argmax_of(m), &[3, 2]);
    }

    #[test]
    fn gather_rows_accumulates_grad() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let g = t.gather_rows(av, Arc::new(vec![0, 2, 0]));
        assert_eq!(t.value(g), &[1., 2., 5., 6., 1., 2.]);
        let loss = t.sum_all(g);
        t.backward(loss, &mut store);
        assert_eq!(store.grad(a), &[2., 2., 0., 0., 1., 1.]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let mut t = Tape::new();
        let a = t.constant(vec![2, 2], vec![1., 2., 3., 4.]);
        let b = t.constant(vec![2, 1], vec![9., 8.]);
        let c = t.concat_cols(&[a, b]);
        assert_eq!(t.shape(c).as_matrix(), (2, 3));
        assert_eq!(t.value(c), &[1., 2., 9., 3., 4., 8.]);
        let s = t.slice_cols(c, 2, 3);
        assert_eq!(t.value(s), &[9., 8.]);
    }

    #[test]
    fn softmax_last_dim_rows() {
        let mut t = Tape::new();
        let a = t.constant(vec![2, 2], vec![0.0, 0.0, 1.0, 1.0]);
        let y = t.softmax_last_dim(a, None);
        let v = t.value(y);
        for r in 0..2 {
            assert!((v[r * 2] + v[r * 2 + 1] - 1.0).abs() < 1e-6);
            assert!((v[r * 2] - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut t = Tape::new();
        let a = t.constant(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = t.layer_norm(a, 1e-5);
        let v = t.value(y);
        let mean: f32 = v.iter().sum::<f32>() / 4.0;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn broadcast_scalar_grad_sums() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![1], vec![2.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let b = t.broadcast_scalar(av, 4);
        let s = t.sum_all(b);
        assert_eq!(t.scalar_value(s), 8.0);
        t.backward(s, &mut store);
        assert_eq!(store.grad(a), &[4.0]);
    }

    #[test]
    fn batch_matmul_matches_loop() {
        let mut t = Tape::new();
        let a = t.constant(vec![2, 1, 2], vec![1., 2., 3., 4.]);
        let b = t.constant(vec![2, 2, 1], vec![1., 1., 2., 0.5]);
        let c = t.batch_matmul(a, b);
        assert_eq!(t.shape(c).as_batched(), (2, 1, 1));
        assert_eq!(t.value(c), &[3.0, 8.0]);
    }

    #[test]
    fn transpose_last2_3d() {
        let mut t = Tape::new();
        let a = t.constant(vec![1, 2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tr = t.transpose_last2(a);
        assert_eq!(t.shape(tr).as_batched(), (1, 3, 2));
        assert_eq!(t.value(tr), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn backward_accumulates_across_passes() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![1], vec![3.0]);
        for _ in 0..2 {
            let mut t = Tape::new();
            let av = t.param(&store, a);
            let y = t.mul(av, av);
            t.backward(y, &mut store);
        }
        // d(a^2)/da = 2a = 6, twice = 12
        assert_eq!(store.grad(a), &[12.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar_loss() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![2], vec![1.0, 2.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        t.backward(av, &mut store);
    }
}
