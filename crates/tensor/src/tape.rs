//! The tape: operation recording, forward evaluation, and reverse-mode
//! gradient propagation.
//!
//! Every constructor method both records the op and eagerly computes its
//! forward value, so intermediate values (e.g. link utilizations inside the
//! RAU loop) can be inspected mid-graph with [`Tape::value`] — HARP uses this
//! to pick data-dependent bottleneck indices while keeping gradients exact
//! (subgradient through the argmax).

use std::sync::Arc;
use std::time::Instant;

use harp_obs::Counter;

use crate::kernels;

/// Nodes recorded across all tapes (counts forward-op executions, since
/// every constructor computes its value eagerly).
static NODES_RECORDED: Counter = Counter::new("tape.nodes_recorded");
/// Reverse passes run (`backward` / `backward_into` / `gradients`).
static BACKWARD_PASSES: Counter = Counter::new("tape.backward_passes");
use crate::op::Op;
use crate::param::{ParamId, ParamStore};
use crate::shape::Shape;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[must_use = "a Var is the only handle to the node just recorded; dropping it usually means a lost subgraph"]
pub struct Var(pub(crate) usize);

impl Var {
    /// The node's position on its tape (0-based recording order).
    ///
    /// Stable for the lifetime of the tape: analysis tools can use it to key
    /// per-node side tables.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Read-only view of one recorded tape node, exposed for analysis tools
/// (see the `harp-verify` crate). Borrowed from the tape; indices in
/// [`NodeView::op`] refer to earlier nodes of the same tape.
#[derive(Clone, Copy, Debug)]
pub struct NodeView<'a> {
    /// Handle of this node.
    pub var: Var,
    /// The recorded operation, including input handles.
    pub op: &'a Op,
    /// Shape recorded at construction time.
    pub shape: &'a Shape,
    /// Forward value computed eagerly at construction time.
    pub value: &'a [f32],
    /// Parameter provenance: set iff this leaf was injected with
    /// [`Tape::param`] from a `ParamStore`.
    pub param: Option<ParamId>,
}

struct Node {
    op: Op,
    shape: Shape,
    value: Vec<f32>,
    /// Set when this leaf mirrors a parameter in a `ParamStore`.
    param: Option<ParamId>,
    /// Integer side-channel saved by forward for backward (argmaxes).
    aux_idx: Vec<usize>,
    /// Float side-channel saved by forward for backward (inv-std, etc.).
    aux_f: Vec<f32>,
}

/// A reverse-mode autodiff tape. Create one per forward/backward pass.
pub struct Tape {
    nodes: Vec<Node>,
    /// Instant of the previous node record; `Some` iff per-op forward
    /// timing was on (`harp_obs::op_timing_enabled`) at construction.
    /// Because values are computed eagerly, the delta between consecutive
    /// records ≈ the newer op's forward compute time (plus caller glue),
    /// which is what the `tape.fwd.<OpKind>` histograms accumulate.
    fwd_clock: Option<Instant>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::new(),
            fwd_clock: harp_obs::op_timing_enabled().then(Instant::now),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &[f32] {
        &self.nodes[v.0].value
    }

    /// The shape of `v`.
    pub fn shape(&self, v: Var) -> &Shape {
        &self.nodes[v.0].shape
    }

    /// The scalar value of a 1-element tensor. Panics otherwise.
    pub fn scalar_value(&self, v: Var) -> f32 {
        let n = &self.nodes[v.0];
        assert_eq!(n.value.len(), 1, "scalar_value on shape {:?}", n.shape);
        n.value[0]
    }

    /// For a [`Tape::max_all`] node: the flat index of the maximum found in
    /// the forward pass.
    pub fn argmax_of(&self, v: Var) -> usize {
        let n = &self.nodes[v.0];
        assert!(
            matches!(n.op, Op::MaxAll(_)),
            "argmax_of requires a max_all node"
        );
        n.aux_idx[0]
    }

    /// For a [`Tape::segment_max`] node: per-segment argmax (indices into
    /// the *input* vector) found in the forward pass.
    pub fn segment_argmax_of(&self, v: Var) -> &[usize] {
        let n = &self.nodes[v.0];
        assert!(
            matches!(n.op, Op::SegmentMax(_, _, _)),
            "segment_argmax_of requires a segment_max node"
        );
        &n.aux_idx
    }

    /// Read-only view of the node behind `v`.
    pub fn node(&self, v: Var) -> NodeView<'_> {
        let n = &self.nodes[v.0];
        NodeView {
            var: v,
            op: &n.op,
            shape: &n.shape,
            value: &n.value,
            param: n.param,
        }
    }

    /// Iterate over all recorded nodes in recording (topological) order.
    ///
    /// Every input handle of a yielded node refers to a node yielded
    /// earlier, so single forward passes over this iterator can propagate
    /// per-node facts (shapes, value intervals) and single reverse passes
    /// can propagate reachability — the basis of the `harp-verify` static
    /// analyzer.
    pub fn nodes(&self) -> impl Iterator<Item = NodeView<'_>> {
        self.nodes.iter().enumerate().map(|(i, n)| NodeView {
            var: Var(i),
            op: &n.op,
            shape: &n.shape,
            value: &n.value,
            param: n.param,
        })
    }

    /// Parameter provenance of `v` (set iff it was injected with
    /// [`Tape::param`]).
    pub fn param_of(&self, v: Var) -> Option<ParamId> {
        self.nodes[v.0].param
    }

    /// Overwrite the recorded shape of `v` without touching its value
    /// buffer or recomputing anything downstream.
    ///
    /// This deliberately breaks the tape's invariants: it exists so the
    /// `harp-verify` test suite can simulate a buggy constructor and assert
    /// the analyzer catches the inconsistency. Never call it from model
    /// code.
    #[doc(hidden)]
    pub fn corrupt_shape_for_test(&mut self, v: Var, shape: Vec<usize>) {
        self.nodes[v.0].shape = Shape(shape);
    }

    /// Overwrite the integer aux side-channel (the argmaxes saved by
    /// `max_all` / `segment_max`) of `v` without recomputing anything.
    ///
    /// Like [`Tape::corrupt_shape_for_test`], this deliberately breaks the
    /// tape's invariants: it simulates a forward pass whose accumulation
    /// ran in a non-canonical order (e.g. a parallel max with a different
    /// tie-break), so the `harp-verify` reduction-order audit can be
    /// tested. Never call it from model code.
    #[doc(hidden)]
    pub fn corrupt_aux_for_test(&mut self, v: Var, aux_idx: Vec<usize>) {
        self.nodes[v.0].aux_idx = aux_idx;
    }

    fn push(&mut self, op: Op, shape: Shape, value: Vec<f32>) -> Var {
        self.push_aux(op, shape, value, Vec::new(), Vec::new())
    }

    fn push_aux(
        &mut self,
        op: Op,
        shape: Shape,
        value: Vec<f32>,
        aux_idx: Vec<usize>,
        aux_f: Vec<f32>,
    ) -> Var {
        debug_assert_eq!(shape.numel(), value.len(), "value/shape mismatch");
        NODES_RECORDED.add(1);
        if let Some(last) = &mut self.fwd_clock {
            let now = Instant::now();
            let ns = u64::try_from(now.duration_since(*last).as_nanos()).unwrap_or(u64::MAX);
            harp_obs::histogram(&format!("tape.fwd.{}", op.kind())).record(ns);
            *last = now;
        }
        self.nodes.push(Node {
            op,
            shape,
            value,
            param: None,
            aux_idx,
            aux_f,
        });
        Var(self.nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// A constant tensor (no gradient).
    pub fn constant(&mut self, shape: Vec<usize>, data: Vec<f32>) -> Var {
        let shape = Shape(shape);
        assert_eq!(shape.numel(), data.len(), "constant: shape/data mismatch");
        self.push(Op::Leaf, shape, data)
    }

    /// A constant scalar.
    pub fn scalar(&mut self, v: f32) -> Var {
        self.push(Op::Leaf, Shape::scalar(), vec![v])
    }

    /// A constant tensor of zeros.
    pub fn zeros(&mut self, shape: Vec<usize>) -> Var {
        let shape = Shape(shape);
        let n = shape.numel();
        self.push(Op::Leaf, shape, vec![0.0; n])
    }

    /// Inject a parameter from `store` as a differentiable leaf; gradients
    /// accumulate into the store on [`Tape::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(Op::Leaf, store.shape(id).clone(), store.data(id).to_vec());
        self.nodes[v.0].param = Some(id);
        v
    }

    // ------------------------------------------------------------------
    // Elementwise binary
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, a: Var, b: Var, what: &str) {
        assert_eq!(
            self.nodes[a.0].shape, self.nodes[b.0].shape,
            "{}: shape mismatch {:?} vs {:?}",
            what, self.nodes[a.0].shape, self.nodes[b.0].shape
        );
    }

    /// Elementwise `a + b` (identical shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "add");
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x + y)
            .collect();
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::Add(a, b), sh, v)
    }

    /// Elementwise `a - b` (identical shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "sub");
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x - y)
            .collect();
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::Sub(a, b), sh, v)
    }

    /// Elementwise `a * b` (identical shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "mul");
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x * y)
            .collect();
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::Mul(a, b), sh, v)
    }

    /// Elementwise `a / b` (identical shapes).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        self.assert_same_shape(a, b, "div");
        let v: Vec<f32> = self.nodes[a.0]
            .value
            .iter()
            .zip(&self.nodes[b.0].value)
            .map(|(x, y)| x / y)
            .collect();
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::Div(a, b), sh, v)
    }

    // ------------------------------------------------------------------
    // Elementwise unary
    // ------------------------------------------------------------------

    fn unary(&mut self, a: Var, op: Op, f: impl Fn(f32) -> f32) -> Var {
        let v: Vec<f32> = self.nodes[a.0].value.iter().map(|&x| f(x)).collect();
        let sh = self.nodes[a.0].shape.clone();
        self.push(op, sh, v)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        self.unary(a, Op::Neg(a), |x| -x)
    }

    /// Elementwise `exp`.
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary(a, Op::Exp(a), f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, a: Var) -> Var {
        self.unary(a, Op::Ln(a), f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&mut self, a: Var) -> Var {
        self.unary(a, Op::Sqrt(a), f32::sqrt)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        self.unary(a, Op::LeakyRelu(a, alpha), move |x| {
            if x > 0.0 {
                x
            } else {
                alpha * x
            }
        })
    }

    /// Elementwise ELU with coefficient `alpha`.
    pub fn elu(&mut self, a: Var, alpha: f32) -> Var {
        self.unary(a, Op::Elu(a, alpha), move |x| {
            if x > 0.0 {
                x
            } else {
                alpha * (x.exp() - 1.0)
            }
        })
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, Op::Sigmoid(a), |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, Op::Tanh(a), f32::tanh)
    }

    /// `a * c` for a constant `c`.
    pub fn mul_scalar(&mut self, a: Var, c: f32) -> Var {
        self.unary(a, Op::MulScalar(a, c), move |x| x * c)
    }

    /// `a + c` for a constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        self.unary(a, Op::AddScalar(a, c), move |x| x + c)
    }

    /// Guarded reciprocal `1 / max(a, eps)`.
    pub fn recip(&mut self, a: Var, eps: f32) -> Var {
        assert!(eps > 0.0, "recip: eps must be positive");
        self.unary(a, Op::Recip(a, eps), move |x| 1.0 / x.max(eps))
    }

    // ------------------------------------------------------------------
    // Broadcast helpers
    // ------------------------------------------------------------------

    /// Add a row vector `b` (length = last dim of `a`) to every row of `a`.
    pub fn add_bias(&mut self, a: Var, b: Var) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        assert_eq!(
            self.nodes[b.0].shape.numel(),
            w,
            "add_bias: bias length {} vs last dim {}",
            self.nodes[b.0].shape.numel(),
            w
        );
        let rows = self.nodes[a.0].shape.leading_rows();
        let mut v = self.nodes[a.0].value.clone();
        let bias = &self.nodes[b.0].value;
        for r in 0..rows {
            for j in 0..w {
                v[r * w + j] += bias[j];
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::AddBias(a, b), sh, v)
    }

    /// Multiply every row of `a` elementwise by a row vector `b`.
    pub fn mul_row(&mut self, a: Var, b: Var) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        assert_eq!(
            self.nodes[b.0].shape.numel(),
            w,
            "mul_row: row length mismatch"
        );
        let rows = self.nodes[a.0].shape.leading_rows();
        let mut v = self.nodes[a.0].value.clone();
        let row = &self.nodes[b.0].value;
        for r in 0..rows {
            for j in 0..w {
                v[r * w + j] *= row[j];
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::MulRow(a, b), sh, v)
    }

    /// Replicate a 1-element tensor into a rank-1 vector of length `n`.
    pub fn broadcast_scalar(&mut self, a: Var, n: usize) -> Var {
        assert_eq!(
            self.nodes[a.0].value.len(),
            1,
            "broadcast_scalar: input must have one element"
        );
        let x = self.nodes[a.0].value[0];
        self.push(Op::BroadcastScalar(a, n), Shape(vec![n]), vec![x; n])
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `[m,k] x [k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, k) = self.nodes[a.0].shape.as_matrix();
        let (k2, n) = self.nodes[b.0].shape.as_matrix();
        assert_eq!(k, k2, "matmul: inner dims {} vs {}", k, k2);
        let v = kernels::matmul(&self.nodes[a.0].value, &self.nodes[b.0].value, m, k, n);
        self.push(Op::MatMul(a, b), Shape(vec![m, n]), v)
    }

    /// Batched matrix product `[b,m,k] x [b,k,n]`.
    pub fn batch_matmul(&mut self, a: Var, b: Var) -> Var {
        let (ba, m, k) = self.nodes[a.0].shape.as_batched();
        let (bb, k2, n) = self.nodes[b.0].shape.as_batched();
        assert_eq!(ba, bb, "batch_matmul: batch dims {} vs {}", ba, bb);
        assert_eq!(k, k2, "batch_matmul: inner dims {} vs {}", k, k2);
        let mut v = Vec::with_capacity(ba * m * n);
        for i in 0..ba {
            let av = &self.nodes[a.0].value[i * m * k..(i + 1) * m * k];
            let bv = &self.nodes[b.0].value[i * k * n..(i + 1) * k * n];
            v.extend_from_slice(&kernels::matmul(av, bv, m, k, n));
        }
        self.push(Op::BatchMatMul(a, b), Shape(vec![ba, m, n]), v)
    }

    /// Swap the last two axes of a rank-2 or rank-3 tensor.
    pub fn transpose_last2(&mut self, a: Var) -> Var {
        let sh = &self.nodes[a.0].shape;
        match sh.rank() {
            2 => {
                let (m, n) = sh.as_matrix();
                let v = kernels::transpose(&self.nodes[a.0].value, m, n);
                self.push(Op::TransposeLast2(a), Shape(vec![n, m]), v)
            }
            3 => {
                let (b, m, n) = sh.as_batched();
                let mut v = Vec::with_capacity(b * m * n);
                for i in 0..b {
                    let src = &self.nodes[a.0].value[i * m * n..(i + 1) * m * n];
                    v.extend_from_slice(&kernels::transpose(src, m, n));
                }
                self.push(Op::TransposeLast2(a), Shape(vec![b, n, m]), v)
            }
            // lint: allow(panic) — documented API contract (rank 2 or 3)
            r => panic!("transpose_last2: rank must be 2 or 3, got {}", r),
        }
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterpret `a` with a new shape of equal element count.
    pub fn reshape(&mut self, a: Var, shape: Vec<usize>) -> Var {
        let shape = Shape(shape);
        assert_eq!(
            shape.numel(),
            self.nodes[a.0].value.len(),
            "reshape: {:?} -> {:?} changes element count",
            self.nodes[a.0].shape,
            shape
        );
        let v = self.nodes[a.0].value.clone();
        self.push(Op::Reshape(a), shape, v)
    }

    /// Concatenate rank-2 tensors along the last axis.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = self.nodes[parts[0].0].shape.leading_rows();
        let mut widths = Vec::with_capacity(parts.len());
        for &p in parts {
            assert_eq!(
                self.nodes[p.0].shape.leading_rows(),
                rows,
                "concat_cols: row counts differ"
            );
            widths.push(self.nodes[p.0].shape.last_dim());
        }
        let total_w: usize = widths.iter().sum();
        let mut v = Vec::with_capacity(rows * total_w);
        for r in 0..rows {
            for (&p, &w) in parts.iter().zip(&widths) {
                let src = &self.nodes[p.0].value[r * w..(r + 1) * w];
                v.extend_from_slice(src);
            }
        }
        self.push(
            Op::ConcatCols(parts.to_vec()),
            Shape(vec![rows, total_w]),
            v,
        )
    }

    /// Concatenate tensors along axis 0 (rank-1: lengths add; rank-2: rows
    /// add, equal column counts).
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let rank1 = self.nodes[parts[0].0].shape.rank() <= 1;
        if rank1 {
            let mut v = Vec::new();
            for &p in parts {
                assert!(
                    self.nodes[p.0].shape.rank() <= 1,
                    "concat_rows: mixed ranks"
                );
                v.extend_from_slice(&self.nodes[p.0].value);
            }
            let n = v.len();
            self.push(Op::ConcatRows(parts.to_vec()), Shape(vec![n]), v)
        } else {
            let cols = self.nodes[parts[0].0].shape.last_dim();
            let mut rows = 0;
            let mut v = Vec::new();
            for &p in parts {
                assert_eq!(
                    self.nodes[p.0].shape.last_dim(),
                    cols,
                    "concat_rows: column counts differ"
                );
                rows += self.nodes[p.0].shape.leading_rows();
                v.extend_from_slice(&self.nodes[p.0].value);
            }
            self.push(Op::ConcatRows(parts.to_vec()), Shape(vec![rows, cols]), v)
        }
    }

    /// Select rows of a rank-2 tensor (or elements of a rank-1 tensor) by
    /// index, with repetition allowed.
    pub fn gather_rows(&mut self, a: Var, idx: Arc<Vec<usize>>) -> Var {
        let sh = &self.nodes[a.0].shape;
        let (rows, w, out_shape) = match sh.rank() {
            1 => (sh.dim(0), 1usize, Shape(vec![idx.len()])),
            2 => (sh.dim(0), sh.dim(1), Shape(vec![idx.len(), sh.dim(1)])),
            // lint: allow(panic) — documented API contract (rank 1 or 2)
            r => panic!("gather_rows: rank must be 1 or 2, got {}", r),
        };
        let mut v = Vec::with_capacity(idx.len() * w);
        for &i in idx.iter() {
            assert!(i < rows, "gather_rows: index {} out of {} rows", i, rows);
            v.extend_from_slice(&self.nodes[a.0].value[i * w..(i + 1) * w]);
        }
        self.push(Op::GatherRows(a, idx), out_shape, v)
    }

    /// Columns `[start, end)` of a rank-2 tensor.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let (rows, cols) = self.nodes[a.0].shape.as_matrix();
        assert!(
            start < end && end <= cols,
            "slice_cols: [{start}, {end}) out of {cols} cols"
        );
        let w = end - start;
        let mut v = Vec::with_capacity(rows * w);
        for r in 0..rows {
            v.extend_from_slice(&self.nodes[a.0].value[r * cols + start..r * cols + end]);
        }
        self.push(Op::SliceCols(a, start, end), Shape(vec![rows, w]), v)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let s: f32 = self.nodes[a.0].value.iter().sum();
        self.push(Op::SumAll(a), Shape::scalar(), vec![s])
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.nodes[a.0].value.len().max(1);
        let s: f32 = self.nodes[a.0].value.iter().sum::<f32>() / n as f32;
        self.push(Op::MeanAll(a), Shape::scalar(), vec![s])
    }

    /// Maximum element (scalar output; subgradient to the first argmax).
    pub fn max_all(&mut self, a: Var) -> Var {
        let vals = &self.nodes[a.0].value;
        assert!(!vals.is_empty(), "max_all: empty tensor");
        let mut best = 0usize;
        for (i, &x) in vals.iter().enumerate() {
            if x > vals[best] {
                best = i;
            }
        }
        let m = vals[best];
        self.push_aux(Op::MaxAll(a), Shape::scalar(), vec![m], vec![best], vec![])
    }

    /// Sum over axis 0 of a rank-2 tensor, producing a row vector `[cols]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let (rows, cols) = self.nodes[a.0].shape.as_matrix();
        let mut v = vec![0.0f32; cols];
        for r in 0..rows {
            for j in 0..cols {
                v[j] += self.nodes[a.0].value[r * cols + j];
            }
        }
        self.push(Op::SumRows(a), Shape(vec![cols]), v)
    }

    /// Per-row mean over the last axis, producing `[rows, 1]`.
    pub fn mean_last_dim(&mut self, a: Var) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        let rows = self.nodes[a.0].shape.leading_rows();
        assert!(w > 0, "mean_last_dim: zero-width rows");
        let mut v = Vec::with_capacity(rows);
        for r in 0..rows {
            let s: f32 = self.nodes[a.0].value[r * w..(r + 1) * w].iter().sum();
            v.push(s / w as f32);
        }
        self.push(Op::MeanLastDim(a), Shape(vec![rows, 1]), v)
    }

    // ------------------------------------------------------------------
    // Segment ops
    // ------------------------------------------------------------------

    /// Scatter-add rows (or scalars for rank-1 input) into `n_segments`
    /// buckets: `out[seg[i]] += in[i]`.
    pub fn segment_sum(&mut self, a: Var, seg: Arc<Vec<usize>>, n_segments: usize) -> Var {
        let sh = &self.nodes[a.0].shape;
        let (rows, w, out_shape) = match sh.rank() {
            1 => (sh.dim(0), 1usize, Shape(vec![n_segments])),
            2 => (sh.dim(0), sh.dim(1), Shape(vec![n_segments, sh.dim(1)])),
            // lint: allow(panic) — documented API contract (rank 1 or 2)
            r => panic!("segment_sum: rank must be 1 or 2, got {}", r),
        };
        assert_eq!(seg.len(), rows, "segment_sum: segment index length");
        let mut v = vec![0.0f32; n_segments * w];
        for (i, &s) in seg.iter().enumerate() {
            assert!(s < n_segments, "segment_sum: segment {} out of range", s);
            for j in 0..w {
                v[s * w + j] += self.nodes[a.0].value[i * w + j];
            }
        }
        self.push(Op::SegmentSum(a, seg, n_segments), out_shape, v)
    }

    /// Per-segment maximum of a rank-1 tensor. Every segment must receive at
    /// least one element. Subgradient to each segment's argmax.
    pub fn segment_max(&mut self, a: Var, seg: Arc<Vec<usize>>, n_segments: usize) -> Var {
        assert_eq!(self.nodes[a.0].shape.rank(), 1, "segment_max: rank-1 only");
        assert_eq!(
            seg.len(),
            self.nodes[a.0].value.len(),
            "segment_max: segment index length"
        );
        let vals = &self.nodes[a.0].value;
        let mut best = vec![usize::MAX; n_segments];
        for (i, &s) in seg.iter().enumerate() {
            assert!(s < n_segments, "segment_max: segment {} out of range", s);
            if best[s] == usize::MAX || vals[i] > vals[best[s]] {
                best[s] = i;
            }
        }
        let mut v = Vec::with_capacity(n_segments);
        for (s, &b) in best.iter().enumerate() {
            assert!(b != usize::MAX, "segment_max: segment {} is empty", s);
            v.push(vals[b]);
        }
        self.push_aux(
            Op::SegmentMax(a, seg, n_segments),
            Shape(vec![n_segments]),
            v,
            best,
            vec![],
        )
    }

    /// Softmax within each segment of a rank-1 tensor (segments need not be
    /// contiguous). This is the per-flow split-ratio normalization.
    pub fn segment_softmax(&mut self, a: Var, seg: Arc<Vec<usize>>, n_segments: usize) -> Var {
        assert_eq!(
            self.nodes[a.0].shape.rank(),
            1,
            "segment_softmax: rank-1 only"
        );
        assert_eq!(
            seg.len(),
            self.nodes[a.0].value.len(),
            "segment_softmax: segment index length"
        );
        let vals = &self.nodes[a.0].value;
        let mut mx = vec![f32::NEG_INFINITY; n_segments];
        for (i, &s) in seg.iter().enumerate() {
            assert!(s < n_segments, "segment_softmax: segment out of range");
            if vals[i] > mx[s] {
                mx[s] = vals[i];
            }
        }
        let mut sums = vec![0.0f32; n_segments];
        let mut v = Vec::with_capacity(vals.len());
        for (i, &s) in seg.iter().enumerate() {
            let e = (vals[i] - mx[s]).exp();
            sums[s] += e;
            v.push(e);
        }
        for (i, &s) in seg.iter().enumerate() {
            if sums[s] > 0.0 {
                v[i] /= sums[s];
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::SegmentSoftmax(a, seg, n_segments), sh, v)
    }

    // ------------------------------------------------------------------
    // Softmax / normalization
    // ------------------------------------------------------------------

    /// Softmax over the last axis. `mask` (if given) must have length equal
    /// to either the full element count or the last dimension; entries equal
    /// to zero are excluded (probability 0).
    pub fn softmax_last_dim(&mut self, a: Var, mask: Option<Arc<Vec<f32>>>) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        let rows = self.nodes[a.0].shape.leading_rows();
        let mut v = self.nodes[a.0].value.clone();
        if let Some(m) = &mask {
            assert!(
                m.len() == w || m.len() == v.len(),
                "softmax mask: length {} must be {} or {}",
                m.len(),
                w,
                v.len()
            );
            for r in 0..rows {
                let row = &mut v[r * w..(r + 1) * w];
                let mrow: &[f32] = if m.len() == w {
                    &m[..]
                } else {
                    &m[r * w..(r + 1) * w]
                };
                kernels::masked_softmax_inplace(row, mrow);
            }
        } else {
            for r in 0..rows {
                kernels::softmax_inplace(&mut v[r * w..(r + 1) * w]);
            }
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push(Op::SoftmaxLastDim(a, mask), sh, v)
    }

    /// Layer normalization over the last axis (no affine transform).
    pub fn layer_norm(&mut self, a: Var, eps: f32) -> Var {
        let w = self.nodes[a.0].shape.last_dim();
        let rows = self.nodes[a.0].shape.leading_rows();
        assert!(w > 0, "layer_norm: zero-width rows");
        let mut v = self.nodes[a.0].value.clone();
        let mut inv_stds = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &mut v[r * w..(r + 1) * w];
            let mean: f32 = row.iter().sum::<f32>() / w as f32;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / w as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) * inv_std;
            }
            inv_stds.push(inv_std);
        }
        let sh = self.nodes[a.0].shape.clone();
        self.push_aux(Op::LayerNorm(a, eps), sh, v, vec![], inv_stds)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from the scalar `loss`, accumulating
    /// parameter gradients into `store` (added to any existing gradients, so
    /// multiple backward passes accumulate like a batch).
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        let grads = self.gradients(loss);
        for (i, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, grads[i].as_ref()) {
                let dst = store.grad_mut(pid);
                for (d, s) in dst.iter_mut().zip(g) {
                    *d += *s;
                }
            }
        }
    }

    /// Like [`Tape::backward`], but accumulate parameter gradients into a
    /// detached [`crate::GradBuffer`] instead of the store itself.
    ///
    /// This is the data-parallel training primitive: workers share a
    /// `&ParamStore` for forward passes while each accumulates into its own
    /// buffer; the buffers are then merged serially in a fixed order
    /// ([`ParamStore::merge_grads`]), so the result is bitwise-reproducible
    /// for a given worker count.
    pub fn backward_into(&self, loss: Var, buf: &mut crate::GradBuffer) {
        let grads = self.gradients(loss);
        for (i, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, grads[i].as_ref()) {
                let dst = &mut buf.bufs[pid.0];
                for (d, s) in dst.iter_mut().zip(g) {
                    *d += *s;
                }
            }
        }
    }

    /// Compute gradients of the scalar `loss` with respect to every node.
    /// Returns one optional buffer per node (None = not on any path to the
    /// loss). Mostly useful for testing; training uses [`Tape::backward`].
    pub fn gradients(&self, loss: Var) -> Vec<Option<Vec<f32>>> {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward: loss must be scalar, got shape {:?}",
            self.nodes[loss.0].shape
        );
        BACKWARD_PASSES.add(1);
        let mut grads: Vec<Option<Vec<f32>>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(vec![1.0]);

        let op_timing = harp_obs::op_timing_enabled();
        for i in (0..=loss.0).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            if op_timing {
                let t0 = Instant::now();
                self.backprop_node(i, &g, &mut grads);
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                harp_obs::histogram(&format!("tape.bwd.{}", self.nodes[i].op.kind())).record(ns);
            } else {
                self.backprop_node(i, &g, &mut grads);
            }
            grads[i] = Some(g);
        }
        grads
    }

    fn grad_buf<'a>(&self, grads: &'a mut [Option<Vec<f32>>], v: Var) -> &'a mut Vec<f32> {
        let n = self.nodes[v.0].value.len();
        grads[v.0].get_or_insert_with(|| vec![0.0; n])
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&self, i: usize, dy: &[f32], grads: &mut [Option<Vec<f32>>]) {
        use Op::*;
        let node = &self.nodes[i];
        match &node.op {
            Leaf => {}

            Add(a, b) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
                let gb = self.grad_buf(grads, *b);
                for (g, d) in gb.iter_mut().zip(dy) {
                    *g += d;
                }
            }
            Sub(a, b) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
                let gb = self.grad_buf(grads, *b);
                for (g, d) in gb.iter_mut().zip(dy) {
                    *g -= d;
                }
            }
            Mul(a, b) => {
                let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                {
                    let ga = self.grad_buf(grads, *a);
                    for ((g, d), x) in ga.iter_mut().zip(dy).zip(bv) {
                        *g += d * x;
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for ((g, d), x) in gb.iter_mut().zip(dy).zip(av) {
                    *g += d * x;
                }
            }
            Div(a, b) => {
                let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
                {
                    let ga = self.grad_buf(grads, *a);
                    for ((g, d), x) in ga.iter_mut().zip(dy).zip(bv) {
                        *g += d / x;
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for (j, (g, d)) in gb.iter_mut().zip(dy).enumerate() {
                    *g -= d * av[j] / (bv[j] * bv[j]);
                }
            }

            Neg(a) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g -= d;
                }
            }
            Exp(a) => {
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    *g += d * y;
                }
            }
            Ln(a) => {
                let xv = &self.nodes[a.0].value;
                let ga = self.grad_buf(grads, *a);
                for ((g, d), x) in ga.iter_mut().zip(dy).zip(xv) {
                    *g += d / x;
                }
            }
            Sqrt(a) => {
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    if *y > 0.0 {
                        *g += d * 0.5 / y;
                    }
                }
            }
            Relu(a) => {
                let xv = &self.nodes[a.0].value;
                let ga = self.grad_buf(grads, *a);
                for ((g, d), x) in ga.iter_mut().zip(dy).zip(xv) {
                    if *x > 0.0 {
                        *g += d;
                    }
                }
            }
            LeakyRelu(a, alpha) => {
                let xv = &self.nodes[a.0].value;
                let ga = self.grad_buf(grads, *a);
                for ((g, d), x) in ga.iter_mut().zip(dy).zip(xv) {
                    *g += d * if *x > 0.0 { 1.0 } else { *alpha };
                }
            }
            Elu(a, alpha) => {
                let xv = &self.nodes[a.0].value;
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for (j, (g, d)) in ga.iter_mut().zip(dy).enumerate() {
                    *g += d * if xv[j] > 0.0 { 1.0 } else { yv[j] + alpha };
                }
            }
            Sigmoid(a) => {
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    *g += d * y * (1.0 - y);
                }
            }
            Tanh(a) => {
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for ((g, d), y) in ga.iter_mut().zip(dy).zip(yv) {
                    *g += d * (1.0 - y * y);
                }
            }
            MulScalar(a, c) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d * c;
                }
            }
            AddScalar(a, _) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
            }
            Recip(a, eps) => {
                let xv = &self.nodes[a.0].value;
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for (j, (g, d)) in ga.iter_mut().zip(dy).enumerate() {
                    if xv[j] >= *eps {
                        *g -= d * yv[j] * yv[j];
                    }
                }
            }

            AddBias(a, b) => {
                let w = self.nodes[b.0].value.len();
                let rows = node.value.len() / w;
                {
                    let ga = self.grad_buf(grads, *a);
                    for (g, d) in ga.iter_mut().zip(dy) {
                        *g += d;
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for r in 0..rows {
                    for j in 0..w {
                        gb[j] += dy[r * w + j];
                    }
                }
            }
            MulRow(a, b) => {
                let w = self.nodes[b.0].value.len();
                let rows = node.value.len() / w;
                let av = &self.nodes[a.0].value;
                let bv = &self.nodes[b.0].value;
                {
                    let ga = self.grad_buf(grads, *a);
                    for r in 0..rows {
                        for j in 0..w {
                            ga[r * w + j] += dy[r * w + j] * bv[j];
                        }
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for r in 0..rows {
                    for j in 0..w {
                        gb[j] += dy[r * w + j] * av[r * w + j];
                    }
                }
            }
            BroadcastScalar(a, _) => {
                let ga = self.grad_buf(grads, *a);
                ga[0] += dy.iter().sum::<f32>();
            }

            MatMul(a, b) => {
                let (m, k) = self.nodes[a.0].shape.as_matrix();
                let (_, n) = self.nodes[b.0].shape.as_matrix();
                let av = self.nodes[a.0].value.clone();
                let bv = self.nodes[b.0].value.clone();
                {
                    // da += dy * b^T
                    let ga = self.grad_buf(grads, *a);
                    kernels::matmul_a_bt(dy, &bv, m, n, k, ga);
                }
                // db += a^T * dy
                let gb = self.grad_buf(grads, *b);
                kernels::matmul_at_b(&av, dy, m, k, n, gb);
            }
            BatchMatMul(a, b) => {
                let (bt, m, k) = self.nodes[a.0].shape.as_batched();
                let (_, _, n) = self.nodes[b.0].shape.as_batched();
                let av = self.nodes[a.0].value.clone();
                let bv = self.nodes[b.0].value.clone();
                {
                    let ga = self.grad_buf(grads, *a);
                    for t in 0..bt {
                        kernels::matmul_a_bt(
                            &dy[t * m * n..(t + 1) * m * n],
                            &bv[t * k * n..(t + 1) * k * n],
                            m,
                            n,
                            k,
                            &mut ga[t * m * k..(t + 1) * m * k],
                        );
                    }
                }
                let gb = self.grad_buf(grads, *b);
                for t in 0..bt {
                    kernels::matmul_at_b(
                        &av[t * m * k..(t + 1) * m * k],
                        &dy[t * m * n..(t + 1) * m * n],
                        m,
                        k,
                        n,
                        &mut gb[t * k * n..(t + 1) * k * n],
                    );
                }
            }
            TransposeLast2(a) => {
                let sh = &self.nodes[a.0].shape;
                let ga = self.grad_buf(grads, *a);
                match sh.rank() {
                    2 => {
                        let (m, n) = sh.as_matrix();
                        // dy has shape [n, m]; transpose back.
                        for j in 0..n {
                            for i2 in 0..m {
                                ga[i2 * n + j] += dy[j * m + i2];
                            }
                        }
                    }
                    3 => {
                        let (b, m, n) = sh.as_batched();
                        for t in 0..b {
                            for j in 0..n {
                                for i2 in 0..m {
                                    ga[t * m * n + i2 * n + j] += dy[t * m * n + j * m + i2];
                                }
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }

            Reshape(a) => {
                let ga = self.grad_buf(grads, *a);
                for (g, d) in ga.iter_mut().zip(dy) {
                    *g += d;
                }
            }
            ConcatCols(parts) => {
                let rows = node.shape.leading_rows();
                let total_w = node.shape.last_dim();
                let mut offset = 0usize;
                for &p in parts {
                    let w = self.nodes[p.0].shape.last_dim();
                    let gp = self.grad_buf(grads, p);
                    for r in 0..rows {
                        for j in 0..w {
                            gp[r * w + j] += dy[r * total_w + offset + j];
                        }
                    }
                    offset += w;
                }
            }
            ConcatRows(parts) => {
                let mut offset = 0usize;
                for &p in parts {
                    let n = self.nodes[p.0].value.len();
                    let gp = self.grad_buf(grads, p);
                    for j in 0..n {
                        gp[j] += dy[offset + j];
                    }
                    offset += n;
                }
            }
            GatherRows(a, idx) => {
                let w = if self.nodes[a.0].shape.rank() == 2 {
                    self.nodes[a.0].shape.dim(1)
                } else {
                    1
                };
                let ga = self.grad_buf(grads, *a);
                for (o, &src) in idx.iter().enumerate() {
                    for j in 0..w {
                        ga[src * w + j] += dy[o * w + j];
                    }
                }
            }
            SliceCols(a, start, end) => {
                let (rows, cols) = self.nodes[a.0].shape.as_matrix();
                let w = end - start;
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    for j in 0..w {
                        ga[r * cols + start + j] += dy[r * w + j];
                    }
                }
            }

            SumAll(a) => {
                let ga = self.grad_buf(grads, *a);
                for g in ga.iter_mut() {
                    *g += dy[0];
                }
            }
            MeanAll(a) => {
                let n = self.nodes[a.0].value.len().max(1) as f32;
                let ga = self.grad_buf(grads, *a);
                for g in ga.iter_mut() {
                    *g += dy[0] / n;
                }
            }
            MaxAll(a) => {
                let best = node.aux_idx[0];
                let ga = self.grad_buf(grads, *a);
                ga[best] += dy[0];
            }
            SumRows(a) => {
                let (rows, cols) = self.nodes[a.0].shape.as_matrix();
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    for j in 0..cols {
                        ga[r * cols + j] += dy[j];
                    }
                }
            }
            MeanLastDim(a) => {
                let w = self.nodes[a.0].shape.last_dim();
                let rows = self.nodes[a.0].shape.leading_rows();
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    let d = dy[r] / w as f32;
                    for j in 0..w {
                        ga[r * w + j] += d;
                    }
                }
            }

            SegmentSum(a, seg, _) => {
                let sh = &self.nodes[a.0].shape;
                let w = if sh.rank() == 2 { sh.dim(1) } else { 1 };
                let ga = self.grad_buf(grads, *a);
                for (i2, &s) in seg.iter().enumerate() {
                    for j in 0..w {
                        ga[i2 * w + j] += dy[s * w + j];
                    }
                }
            }
            SegmentMax(a, _, _) => {
                let ga = self.grad_buf(grads, *a);
                for (s, &b) in node.aux_idx.iter().enumerate() {
                    ga[b] += dy[s];
                }
            }
            SegmentSoftmax(a, seg, n_segments) => {
                let yv = &node.value;
                // per-segment dot(y, dy)
                let mut dots = vec![0.0f32; *n_segments];
                for (i2, &s) in seg.iter().enumerate() {
                    dots[s] += yv[i2] * dy[i2];
                }
                let ga = self.grad_buf(grads, *a);
                for (i2, &s) in seg.iter().enumerate() {
                    ga[i2] += yv[i2] * (dy[i2] - dots[s]);
                }
            }

            SoftmaxLastDim(a, _) => {
                let w = node.shape.last_dim();
                let rows = node.shape.leading_rows();
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    kernels::softmax_backward_row(
                        &yv[r * w..(r + 1) * w],
                        &dy[r * w..(r + 1) * w],
                        &mut ga[r * w..(r + 1) * w],
                    );
                }
            }
            LayerNorm(a, _) => {
                let w = node.shape.last_dim();
                let rows = node.shape.leading_rows();
                let yv = &node.value;
                let ga = self.grad_buf(grads, *a);
                for r in 0..rows {
                    let inv_std = node.aux_f[r];
                    let yrow = &yv[r * w..(r + 1) * w];
                    let drow = &dy[r * w..(r + 1) * w];
                    let mean_d: f32 = drow.iter().sum::<f32>() / w as f32;
                    let mean_dy_y: f32 =
                        drow.iter().zip(yrow).map(|(d, y)| d * y).sum::<f32>() / w as f32;
                    for j in 0..w {
                        ga[r * w + j] += inv_std * (drow[j] - mean_d - yrow[j] * mean_dy_y);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_backward() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![3], vec![1.0, 2.0, 3.0]);
        let b = store.register("b", vec![3], vec![4.0, 5.0, 6.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let bv = t.param(&store, b);
        let m = t.mul(av, bv);
        let s = t.sum_all(m);
        assert!((t.scalar_value(s) - 32.0).abs() < 1e-5);
        t.backward(s, &mut store);
        assert_eq!(store.grad(a), &[4.0, 5.0, 6.0]);
        assert_eq!(store.grad(b), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_forward_and_backward() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let mut t = Tape::new();
        let x = t.constant(vec![1, 2], vec![3.0, 7.0]);
        let wv = t.param(&store, w);
        let y = t.matmul(x, wv);
        assert_eq!(t.value(y), &[3.0, 7.0]);
        let loss = t.sum_all(y);
        t.backward(loss, &mut store);
        // dW = x^T * [1,1] = [[3,3],[7,7]]
        assert_eq!(store.grad(w), &[3.0, 3.0, 7.0, 7.0]);
    }

    #[test]
    fn backward_into_matches_backward_bitwise() {
        let mut store = ParamStore::new();
        let w = store.register("w", vec![2, 2], vec![0.3, -0.7, 1.1, 0.9]);
        let b = store.register("b", vec![2], vec![0.1, -0.2]);
        let build = |store: &ParamStore| {
            let mut t = Tape::new();
            let x = t.constant(vec![3, 2], vec![1.0, 2.0, -0.5, 0.25, 3.0, -1.5]);
            let wv = t.param(store, w);
            let bv = t.param(store, b);
            let h = t.matmul(x, wv);
            let h = t.add_bias(h, bv);
            let h = t.tanh(h);
            let loss = t.sum_all(h);
            (t, loss)
        };
        let (t1, l1) = build(&store);
        t1.backward(l1, &mut store);
        let direct_w = store.grad(w).to_vec();
        let direct_b = store.grad(b).to_vec();

        let mut buf = store.grad_buffer();
        let (t2, l2) = build(&store);
        t2.backward_into(l2, &mut buf);
        assert_eq!(buf.grad(w), &direct_w[..]);
        assert_eq!(buf.grad(b), &direct_b[..]);
    }

    #[test]
    fn max_all_subgradient() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![4], vec![1.0, 9.0, 3.0, 9.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let m = t.max_all(av);
        assert_eq!(t.scalar_value(m), 9.0);
        assert_eq!(t.argmax_of(m), 1); // first max wins
        t.backward(m, &mut store);
        assert_eq!(store.grad(a), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let mut t = Tape::new();
        let x = t.constant(vec![5], vec![1.0, 2.0, 3.0, 0.5, 0.5]);
        let seg = Arc::new(vec![0usize, 0, 1, 1, 1]);
        let y = t.segment_softmax(x, seg, 2);
        let v = t.value(y);
        assert!((v[0] + v[1] - 1.0).abs() < 1e-6);
        assert!((v[2] + v[3] + v[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn segment_sum_and_max() {
        let mut t = Tape::new();
        let x = t.constant(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        let seg = Arc::new(vec![1usize, 0, 1, 0]);
        let s = t.segment_sum(x, seg.clone(), 2);
        assert_eq!(t.value(s), &[6.0, 4.0]);
        let m = t.segment_max(x, seg, 2);
        assert_eq!(t.value(m), &[4.0, 3.0]);
        assert_eq!(t.segment_argmax_of(m), &[3, 2]);
    }

    #[test]
    fn gather_rows_accumulates_grad() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let g = t.gather_rows(av, Arc::new(vec![0, 2, 0]));
        assert_eq!(t.value(g), &[1., 2., 5., 6., 1., 2.]);
        let loss = t.sum_all(g);
        t.backward(loss, &mut store);
        assert_eq!(store.grad(a), &[2., 2., 0., 0., 1., 1.]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let mut t = Tape::new();
        let a = t.constant(vec![2, 2], vec![1., 2., 3., 4.]);
        let b = t.constant(vec![2, 1], vec![9., 8.]);
        let c = t.concat_cols(&[a, b]);
        assert_eq!(t.shape(c).as_matrix(), (2, 3));
        assert_eq!(t.value(c), &[1., 2., 9., 3., 4., 8.]);
        let s = t.slice_cols(c, 2, 3);
        assert_eq!(t.value(s), &[9., 8.]);
    }

    #[test]
    fn softmax_last_dim_rows() {
        let mut t = Tape::new();
        let a = t.constant(vec![2, 2], vec![0.0, 0.0, 1.0, 1.0]);
        let y = t.softmax_last_dim(a, None);
        let v = t.value(y);
        for r in 0..2 {
            assert!((v[r * 2] + v[r * 2 + 1] - 1.0).abs() < 1e-6);
            assert!((v[r * 2] - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut t = Tape::new();
        let a = t.constant(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = t.layer_norm(a, 1e-5);
        let v = t.value(y);
        let mean: f32 = v.iter().sum::<f32>() / 4.0;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn broadcast_scalar_grad_sums() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![1], vec![2.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        let b = t.broadcast_scalar(av, 4);
        let s = t.sum_all(b);
        assert_eq!(t.scalar_value(s), 8.0);
        t.backward(s, &mut store);
        assert_eq!(store.grad(a), &[4.0]);
    }

    #[test]
    fn batch_matmul_matches_loop() {
        let mut t = Tape::new();
        let a = t.constant(vec![2, 1, 2], vec![1., 2., 3., 4.]);
        let b = t.constant(vec![2, 2, 1], vec![1., 1., 2., 0.5]);
        let c = t.batch_matmul(a, b);
        assert_eq!(t.shape(c).as_batched(), (2, 1, 1));
        assert_eq!(t.value(c), &[3.0, 8.0]);
    }

    #[test]
    fn transpose_last2_3d() {
        let mut t = Tape::new();
        let a = t.constant(vec![1, 2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tr = t.transpose_last2(a);
        assert_eq!(t.shape(tr).as_batched(), (1, 3, 2));
        assert_eq!(t.value(tr), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn backward_accumulates_across_passes() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![1], vec![3.0]);
        for _ in 0..2 {
            let mut t = Tape::new();
            let av = t.param(&store, a);
            let y = t.mul(av, av);
            t.backward(y, &mut store);
        }
        // d(a^2)/da = 2a = 6, twice = 12
        assert_eq!(store.grad(a), &[12.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar_loss() {
        let mut store = ParamStore::new();
        let a = store.register("a", vec![2], vec![1.0, 2.0]);
        let mut t = Tape::new();
        let av = t.param(&store, a);
        t.backward(av, &mut store);
    }
}
