//! # harp-tensor
//!
//! A from-scratch, tape-based reverse-mode automatic-differentiation engine
//! over row-major `f32` arrays. This is the numerical substrate for the HARP
//! reproduction: every neural module (GCN, set transformer, MLPs, the
//! recurrent adjustment unit) and the differentiable MLU objective are built
//! from the operations defined here.
//!
//! ## Model
//!
//! * A [`Tape`] records a DAG of operations. Node values live in a bump
//!   arena owned by the tape ([`TapeArena`], pooled across tapes so
//!   steady-state forward passes allocate nothing); [`Tape::backward`]
//!   walks the tape in reverse and accumulates gradients.
//! * [`Var`] is a lightweight handle (an index) into a tape.
//! * Persistent trainable state lives in a [`ParamStore`]; each training
//!   step injects parameters into a fresh tape as leaves and, after
//!   `backward`, gradients are written back to the store where an optimizer
//!   (see `harp-nn`) consumes them.
//!
//! ## Semantics worth knowing
//!
//! * `max`-style reductions ([`Tape::max_all`], [`Tape::segment_max`]) use
//!   subgradients: the full gradient flows to the (first) argmax element.
//!   This is exactly what makes the MLU objective and bottleneck-link
//!   selection trainable.
//! * Shape errors are programming errors and panic with a descriptive
//!   message, mirroring the convention of mainstream array libraries.
//! * Index arrays (gather/segment indices, masks) are shared via `Arc` so
//!   instances can be compiled once and reused across many tape builds.
//!
//! ## Introspection
//!
//! A recorded tape can be walked without executing or differentiating it:
//!
//! * [`Tape::nodes`] iterates [`NodeView`]s in recording order — which is
//!   topological order, since an op can only reference already-recorded
//!   inputs. Each view exposes the node's [`Op`] (and through
//!   [`Op::inputs`] its input [`Var`]s), its recorded [`Shape`], the
//!   forward value buffer, and the [`ParamId`] provenance for
//!   parameter leaves.
//! * [`Tape::node`] looks up one node; [`Tape::param_of`] maps a `Var`
//!   back to the parameter it was injected from, if any.
//!
//! This API is the foundation of the `harp-verify` static analyzer (shape
//! re-inference, gradient-reachability, numerical-hazard lints), which runs
//! as a debug-build pre-flight in `harp-core::train` — see DESIGN.md
//! §"Verification layer".
//!
//! ## Example
//!
//! ```
//! use harp_tensor::{Tape, ParamStore};
//!
//! let mut store = ParamStore::new();
//! let w = store.register("w", vec![2, 1], vec![0.5, -0.25]);
//!
//! let mut tape = Tape::new();
//! let x = tape.constant(vec![1, 2], vec![3.0, 4.0]);
//! let wv = tape.param(&store, w);
//! let y = tape.matmul(x, wv); // [1,1]
//! let loss = tape.sum_all(y);
//! tape.backward(loss, &mut store);
//! assert_eq!(store.grad(w), &[3.0, 4.0]);
//! ```

mod op;
mod param;
mod shape;
mod tape;

pub mod gradcheck;
pub mod kernels;

pub use op::Op;
pub use param::{GradBuffer, ParamId, ParamStore};
pub use shape::Shape;
pub use tape::{NodeView, Tape, TapeArena, Var};
