//! Property tests for the fused matmul ops (`MatMulBiasRelu` /
//! `MatMulBiasLeakyRelu`): the fused tape op must be bitwise-equal to the
//! unfused `matmul → add_bias → (leaky_)relu` chain in both forward values
//! and backward gradients, the fused kernel must be bitwise-equal across
//! worker counts (the determinism contract: parallel == serial), and both
//! fused ops must pass finite-difference gradient checking.

use harp_runtime::Runtime;
use harp_tensor::gradcheck::gradcheck;
use harp_tensor::{kernels, ParamId, ParamStore, Tape, Var};
use proptest::prelude::*;

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Deterministic pseudo-random fill (xorshift), distinct per seed.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Build the unfused reference chain on a fresh tape.
fn unfused(t: &mut Tape, a: Var, w: Var, b: Var, alpha: Option<f32>) -> Var {
    let mm = t.matmul(a, w);
    let h = t.add_bias(mm, b);
    match alpha {
        None => t.relu(h),
        Some(al) => t.leaky_relu(h, al),
    }
}

fn fused(t: &mut Tape, a: Var, w: Var, b: Var, alpha: Option<f32>) -> Var {
    match alpha {
        None => t.matmul_bias_relu(a, w, b),
        Some(al) => t.matmul_bias_leaky_relu(a, w, b, al),
    }
}

/// Forward + backward for `sum(act(a @ w + bias))` on a fresh store; returns
/// (output bits source, grad_a, grad_w, grad_b).
fn run_chain(
    m: usize,
    k: usize,
    n: usize,
    alpha: Option<f32>,
    use_fused: bool,
) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut store = ParamStore::new();
    let ia = store.register("a", vec![m, k], fill(m * k, 1));
    let iw = store.register("w", vec![k, n], fill(k * n, 2));
    let ib = store.register("b", vec![n], fill(n, 3));
    let mut t = Tape::new();
    let a = t.param(&store, ia);
    let w = t.param(&store, iw);
    let b = t.param(&store, ib);
    let y = if use_fused {
        fused(&mut t, a, w, b, alpha)
    } else {
        unfused(&mut t, a, w, b, alpha)
    };
    let out = t.value(y).to_vec();
    let l = t.sum_all(y);
    t.backward(l, &mut store);
    (
        out,
        store.grad(ia).to_vec(),
        store.grad(iw).to_vec(),
        store.grad(ib).to_vec(),
    )
}

/// The recorded HARP/DOTE/TEAL hot shapes plus lane-boundary widths
/// (LANES = 8: one lane, lane+1 remainder, two lanes, panel edge).
const EDGE_SHAPES: [(usize, usize, usize); 8] = [
    (1, 1, 1),
    (3, 5, 8),
    (13, 7, 9),
    (17, 16, 16),
    (29, 4, 17),
    (33, 20, 32),
    (9, 97, 48),
    (41, 3, 1),
];

#[test]
fn fused_matches_unfused_bitwise_on_edge_shapes() {
    for &(m, k, n) in &EDGE_SHAPES {
        for alpha in [None, Some(0.01), Some(0.3)] {
            let (yu, gau, gwu, gbu) = run_chain(m, k, n, alpha, false);
            let (yf, gaf, gwf, gbf) = run_chain(m, k, n, alpha, true);
            assert!(bits_eq(&yu, &yf), "forward {m}x{k}x{n} alpha={alpha:?}");
            assert!(bits_eq(&gau, &gaf), "grad a {m}x{k}x{n} alpha={alpha:?}");
            assert!(bits_eq(&gwu, &gwf), "grad w {m}x{k}x{n} alpha={alpha:?}");
            assert!(bits_eq(&gbu, &gbf), "grad b {m}x{k}x{n} alpha={alpha:?}");
        }
    }
}

#[test]
fn fused_kernel_parallel_matches_serial_bitwise() {
    for &(m, k, n) in &EDGE_SHAPES {
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let bias = fill(n, 13);
        for alpha in [None, Some(0.01)] {
            let mut serial = vec![0.0f32; m * n];
            kernels::matmul_bias_act_into_with(
                Runtime::serial(),
                &a,
                &b,
                &bias,
                alpha,
                m,
                k,
                n,
                &mut serial,
            );
            for workers in [2usize, 3, 4, 7] {
                let mut par = vec![0.0f32; m * n];
                kernels::matmul_bias_act_into_with(
                    Runtime::new(workers),
                    &a,
                    &b,
                    &bias,
                    alpha,
                    m,
                    k,
                    n,
                    &mut par,
                );
                assert!(
                    bits_eq(&serial, &par),
                    "fused {m}x{k}x{n} alpha={alpha:?} workers={workers}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_matches_unfused_bitwise_random_shapes(
        m in 1usize..34,
        k in 1usize..20,
        n in 1usize..50,
        leaky in proptest::bool::ANY,
    ) {
        let alpha = if leaky { Some(0.1) } else { None };
        let (yu, gau, gwu, gbu) = run_chain(m, k, n, alpha, false);
        let (yf, gaf, gwf, gbf) = run_chain(m, k, n, alpha, true);
        prop_assert!(bits_eq(&yu, &yf), "forward {m}x{k}x{n}");
        prop_assert!(bits_eq(&gau, &gaf), "grad a {m}x{k}x{n}");
        prop_assert!(bits_eq(&gwu, &gwf), "grad w {m}x{k}x{n}");
        prop_assert!(bits_eq(&gbu, &gbf), "grad b {m}x{k}x{n}");
    }

    #[test]
    fn fused_matmul_kernel_parallel_matches_serial_random(
        m in 1usize..48,
        k in 1usize..24,
        n in 1usize..50,
        workers in 2usize..8,
    ) {
        let a = fill(m * k, 21);
        let b = fill(k * n, 22);
        let bias = fill(n, 23);
        let mut serial = vec![0.0f32; m * n];
        kernels::matmul_bias_act_into_with(
            Runtime::serial(), &a, &b, &bias, None, m, k, n, &mut serial,
        );
        let mut par = vec![0.0f32; m * n];
        kernels::matmul_bias_act_into_with(
            Runtime::new(workers), &a, &b, &bias, None, m, k, n, &mut par,
        );
        prop_assert!(bits_eq(&serial, &par), "{m}x{k}x{n} workers={workers}");
    }

    #[test]
    fn fused_relu_gradcheck(
        a in proptest::collection::vec(-1.0f32..1.0, 12),
        w in proptest::collection::vec(-1.0f32..1.0, 8),
        b in proptest::collection::vec(-1.0f32..1.0, 2),
    ) {
        // Finite differences misbehave within eps of the ReLU kink; skip
        // draws where any pre-activation sits near zero.
        let mut safe = true;
        for r in 0..3 {
            for j in 0..2 {
                let mut h = b[j];
                for c in 0..4 {
                    h += a[r * 4 + c] * w[c * 2 + j];
                }
                safe &= h.abs() > 0.05;
            }
        }
        prop_assume!(safe);
        for alpha in [None, Some(0.1f32)] {
            let mut store = ParamStore::new();
            let ia = store.register("a", vec![3, 4], a.clone());
            let iw = store.register("w", vec![4, 2], w.clone());
            let ib = store.register("b", vec![2], b.clone());
            let res = gradcheck(&mut store, &[ia, iw, ib], 1e-2, 3e-2, move |s| {
                let mut t = Tape::new();
                let av = t.param(s, param_id(0));
                let wv = t.param(s, param_id(1));
                let bv = t.param(s, param_id(2));
                let y = match alpha {
                    None => t.matmul_bias_relu(av, wv, bv),
                    Some(al) => t.matmul_bias_leaky_relu(av, wv, bv, al),
                };
                let l = t.sum_all(y);
                (t, l)
            });
            prop_assert!(res.is_ok(), "alpha={alpha:?}: {res:?}");
        }
    }
}

/// `ParamId`'s constructor is private; the store hands ids out in
/// registration order, so index-based reconstruction is safe in tests.
fn param_id(i: usize) -> ParamId {
    let mut s = ParamStore::new();
    for k in 0..=i {
        let _ = s.register(&format!("p{k}"), vec![1], vec![0.0]);
    }
    s.ids().nth(i).unwrap()
}
