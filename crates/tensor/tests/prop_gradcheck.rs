//! Property-based gradient checking: random op chains over random shapes
//! must always match central finite differences, and structural identities
//! (softmax rows sum to 1, layer-norm rows have zero mean, reductions
//! match manual computation) must hold for arbitrary inputs.

use std::sync::Arc;

use harp_tensor::gradcheck::gradcheck;
use harp_tensor::{ParamId, ParamStore, Tape};
use proptest::prelude::*;

/// Smooth unary ops safe at any input.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Tanh,
    Sigmoid,
    LeakyRelu,
    Elu,
    MulScalar,
    AddScalar,
}

fn apply_unary(t: &mut Tape, op: UnaryOp, x: harp_tensor::Var) -> harp_tensor::Var {
    match op {
        UnaryOp::Tanh => t.tanh(x),
        UnaryOp::Sigmoid => t.sigmoid(x),
        UnaryOp::LeakyRelu => t.leaky_relu(x, 0.1),
        UnaryOp::Elu => t.elu(x, 1.0),
        UnaryOp::MulScalar => t.mul_scalar(x, 0.7),
        UnaryOp::AddScalar => t.add_scalar(x, 0.3),
    }
}

fn arb_unary() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Tanh),
        Just(UnaryOp::Sigmoid),
        Just(UnaryOp::LeakyRelu),
        Just(UnaryOp::Elu),
        Just(UnaryOp::MulScalar),
        Just(UnaryOp::AddScalar),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_unary_chains_gradcheck(
        data in proptest::collection::vec(-1.5f32..1.5, 6),
        ops in proptest::collection::vec(arb_unary(), 1..5),
    ) {
        let mut store = ParamStore::new();
        let id = store.register("x", vec![6], data);
        let ops2 = ops.clone();
        let res = gradcheck(&mut store, &[id], 1e-2, 3e-2, move |s| {
            let mut t = Tape::new();
            let mut x = t.param(s, ParamId_shim(0));
            for &op in &ops2 {
                x = apply_unary(&mut t, op, x);
            }
            let l = t.mean_all(x);
            (t, l)
        });
        prop_assert!(res.is_ok(), "{:?} ops {:?}", res, ops);
    }

    #[test]
    fn matmul_then_softmax_gradcheck(
        a in proptest::collection::vec(-1.0f32..1.0, 12),
        b in proptest::collection::vec(-1.0f32..1.0, 8),
    ) {
        let mut store = ParamStore::new();
        let ia = store.register("a", vec![3, 4], a);
        let _ib = store.register("b", vec![4, 2], b);
        let res = gradcheck(&mut store, &[ia, _ib], 1e-2, 3e-2, |s| {
            let mut t = Tape::new();
            let av = t.param(s, ParamId_shim(0));
            let bv = t.param(s, ParamId_shim(1));
            let y = t.matmul(av, bv);
            let sm = t.softmax_last_dim(y, None);
            let c = t.constant(vec![3, 2], vec![0.2, 0.9, 0.1, 0.5, 0.7, 0.3]);
            let p = t.mul(sm, c);
            let l = t.sum_all(p);
            (t, l)
        });
        prop_assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn segment_pipeline_gradcheck(
        data in proptest::collection::vec(-1.0f32..1.0, 8),
        segs in proptest::collection::vec(0usize..3, 8),
    ) {
        // every segment must be nonempty for segment_softmax denominators
        let mut segs = segs;
        segs[0] = 0; segs[1] = 1; segs[2] = 2;
        let seg = Arc::new(segs);
        let mut store = ParamStore::new();
        let id = store.register("x", vec![8], data);
        let seg2 = seg.clone();
        let res = gradcheck(&mut store, &[id], 1e-2, 3e-2, move |s| {
            let mut t = Tape::new();
            let x = t.param(s, ParamId_shim(0));
            let sm = t.segment_softmax(x, seg2.clone(), 3);
            let c = t.constant(vec![8], (0..8).map(|i| 0.1 * i as f32 + 0.1).collect());
            let w = t.mul(sm, c);
            let sums = t.segment_sum(w, seg2.clone(), 3);
            let l = t.sum_all(sums);
            (t, l)
        });
        prop_assert!(res.is_ok(), "{:?}", res);
    }

    #[test]
    fn softmax_rows_always_sum_to_one(
        data in proptest::collection::vec(-30.0f32..30.0, 12),
    ) {
        let mut t = Tape::new();
        let x = t.constant(vec![3, 4], data);
        let y = t.softmax_last_dim(x, None);
        for r in 0..3 {
            let s: f32 = t.value(y)[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5, "row {} sums to {}", r, s);
        }
    }

    #[test]
    fn layer_norm_rows_are_normalized(
        data in proptest::collection::vec(-10.0f32..10.0, 12),
    ) {
        // skip degenerate constant rows (variance ~ 0)
        let distinct = data.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-3);
        prop_assume!(distinct);
        let mut t = Tape::new();
        let x = t.constant(vec![2, 6], data);
        let y = t.layer_norm(x, 1e-5);
        for r in 0..2 {
            let row = &t.value(y)[r * 6..(r + 1) * 6];
            let mean: f32 = row.iter().sum::<f32>() / 6.0;
            prop_assert!(mean.abs() < 1e-3);
        }
    }

    #[test]
    fn reductions_match_manual(
        data in proptest::collection::vec(-5.0f32..5.0, 10),
    ) {
        let mut t = Tape::new();
        let x = t.constant(vec![10], data.clone());
        let s = t.sum_all(x);
        let m = t.mean_all(x);
        let mx = t.max_all(x);
        let manual_sum: f32 = data.iter().sum();
        let manual_max = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!((t.scalar_value(s) - manual_sum).abs() < 1e-3);
        prop_assert!((t.scalar_value(m) - manual_sum / 10.0).abs() < 1e-4);
        prop_assert!((t.scalar_value(mx) - manual_max).abs() < 1e-6);
    }
}

/// `ParamId`'s constructor is private; the store hands ids out in
/// registration order, so index-based reconstruction is safe in tests.
#[allow(non_snake_case)]
fn ParamId_shim(i: usize) -> ParamId {
    // ParamStore::ids() yields ids in registration order
    let mut s = ParamStore::new();
    for k in 0..=i {
        let _ = s.register(&format!("p{k}"), vec![1], vec![0.0]);
    }
    s.ids().nth(i).unwrap()
}
