//! The lifecycle engine's reproducibility bar: two runs with the same
//! seed must produce bitwise-identical event logs and metric values
//! (modulo wall-clock fields), even with chaos enabled — the faults are
//! part of the scenario, not noise.

use std::sync::Arc;

use harp_chaos::FaultPlan;
use harp_lifecycle::{run_lifecycle, LifecycleConfig, Scenario};

fn tiny_config(seed: u64, tag: &str) -> LifecycleConfig {
    let mut sc = Scenario::quick(seed);
    sc.max_ticks = 12;
    sc.bootstrap_ticks = 3;
    sc.bootstrap_epochs = 2;
    sc.storms[0].at_tick = 5;
    sc.flash_crowds[0].at_tick = 9;
    sc.flash_crowds[0].duration = 2;
    sc.retrain.rolling_window = 2;
    sc.retrain.min_interval = 3;
    sc.retrain.epochs = 2;
    sc.retrain.ship_delay = 1;
    // trigger aggressively so the drill exercises a retrain + ship cycle
    sc.retrain.normmlu_trigger = 1.0005;
    let mut cfg = LifecycleConfig::new(sc);
    cfg.work_dir = std::env::temp_dir().join(format!("harp_lifecycle_det_{tag}_{seed}"));
    cfg.chaos_serve = Some(Arc::new(
        FaultPlan::parse("drop-conn@nth=4").expect("valid plan"),
    ));
    cfg.chaos_ship = Some(Arc::new(
        FaultPlan::parse("corrupt-checkpoint@write=1,mode=flip").expect("valid plan"),
    ));
    cfg
}

#[test]
fn same_seed_is_bitwise_reproducible_under_chaos() {
    let a = run_lifecycle(&tiny_config(33, "a")).expect("run a");
    let b = run_lifecycle(&tiny_config(33, "b")).expect("run b");

    assert_eq!(a.events, b.events, "event logs diverged");
    assert_eq!(
        a.deterministic_json().to_string(),
        b.deterministic_json().to_string(),
        "deterministic report projections diverged"
    );

    // the drill must actually exercise the interesting paths
    assert!(!a.ticks.is_empty(), "no ticks scored");
    assert_eq!(a.protocol_errors, 0, "well-formed traffic only");
    assert!(
        a.ticks.iter().all(|t| t.norm_mlu >= 1.0),
        "NormMLU is floored at 1"
    );
}
