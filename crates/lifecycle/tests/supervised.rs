//! Crash-isolated retraining, end to end against the real exec'd
//! `harp-trainerd` binary: a SIGKILL sweep over every trainer phase
//! (forward, checkpoint write, ship rendezvous) must recover through the
//! escalation ladder and ship **bitwise-identical** parameters to an
//! unkilled run; garbled IPC must surface as typed protocol errors and
//! restart cleanly; and a full lifecycle run in `trainer=process` mode
//! must stay bitwise-reproducible per seed.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use harp_chaos::FaultPlan;
use harp_core::{train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig, SNAPSHOT_FILE};
use harp_lifecycle::{
    run_lifecycle, run_supervised, JobInstance, LifecycleConfig, Scenario, TrainJob, TrainerMode,
};
use harp_paths::TunnelSet;
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use rand::{rngs::StdRng, SeedableRng};

/// The dedicated child binary, built by cargo for this test run.
const TRAINERD: &str = env!("CARGO_BIN_EXE_harp-trainerd");

fn tiny_model() -> HarpConfig {
    HarpConfig {
        gnn_layers: 1,
        gnn_hidden: 4,
        d_model: 8,
        settrans_layers: 1,
        heads: 1,
        d_ff: 8,
        mlp_hidden: 8,
        rau_iters: 1,
    }
}

fn square() -> (Topology, TunnelSet) {
    let mut topo = Topology::new(4);
    topo.add_link(0, 1, 10.0).unwrap();
    topo.add_link(1, 2, 10.0).unwrap();
    topo.add_link(2, 3, 10.0).unwrap();
    topo.add_link(3, 0, 10.0).unwrap();
    topo.add_link(0, 2, 5.0).unwrap();
    let tunnels = TunnelSet::k_shortest(&topo, &[0, 1, 2, 3], 3, 0.0);
    (topo, tunnels)
}

fn demands(n: usize, scale: f64) -> TrafficMatrix {
    let mut d = vec![0.0; n * n];
    for s in 0..n {
        for t in 0..n {
            if s != t {
                d[s * n + t] = scale * (((s * n + t) % 3) as f64 + 0.5);
            }
        }
    }
    TrafficMatrix::from_dense(n, d)
}

fn window() -> Vec<JobInstance> {
    let (topo, tunnels) = square();
    (0..2)
        .map(|i| {
            let tm = demands(4, 1.0 + f64::from(i) * 0.25);
            JobInstance::from_parts(&topo, &tunnels, &tm, 1.0)
        })
        .collect()
}

/// Train one epoch directly to mint a warm-start snapshot for the jobs.
fn donor_snapshot(dir: &Path) -> PathBuf {
    let (topo, tunnels) = square();
    let tm = demands(4, 1.0);
    let inst = Instance::compile(&topo, &tunnels, &tm);
    let refs = vec![(&inst, 1.0)];
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(11);
    let harp = Harp::new(&mut store, &mut rng, tiny_model());
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 4,
        patience: 0,
        workers: 1,
        checkpoint_dir: Some(dir.to_path_buf()),
        checkpoint_every: 1,
        seed: 11,
        ..TrainConfig::default()
    };
    train_model(&harp, &mut store, &refs, &refs, tc, EvalOptions::default()).expect("donor train");
    dir.join(SNAPSHOT_FILE)
}

/// A fresh work dir + job; `chaos` is the per-attempt escalation script.
fn job_in(tag: &str, chaos: Vec<String>) -> (TrainJob, PathBuf) {
    let work = std::env::temp_dir().join(format!("harp_supervised_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&work);
    fs::create_dir_all(&work).expect("mkdir work");
    let warm_path = donor_snapshot(&work.join("donor"));
    let job = TrainJob {
        model: tiny_model(),
        window: window(),
        warm_path,
        checkpoint_dir: work.join("ckpt"),
        params_out: work.join("trained.json"),
        generation: 1,
        workers: 1,
        epochs: 2,
        lr: 1e-3,
        seed: 77,
        chaos,
    };
    (job, work)
}

#[test]
fn clean_supervised_run_ships_without_restarts() {
    let (job, work) = job_in("clean", Vec::new());
    let out = run_supervised(&job, Path::new(TRAINERD), 5);
    assert!(!out.dead, "clean run must ship: {:?}", out.log);
    assert_eq!(out.restarts, 0, "log: {:?}", out.log);
    assert_eq!(out.ipc_errors, 0, "log: {:?}", out.log);
    assert_eq!(out.heartbeat_misses, 0, "log: {:?}", out.log);
    let p = out.params_path.expect("params path");
    assert!(p.exists(), "shipped file must exist");
    let _ = fs::remove_dir_all(&work);
}

/// Satellite drill: real SIGKILL at each trainer phase. Every killed run
/// must recover in exactly one restart and ship the same bits as the
/// unkilled baseline — crash recovery is invisible in the artifact.
#[test]
fn sigkill_at_every_phase_recovers_and_ships_identical_bits() {
    let (base_job, base_work) = job_in("sweep_base", Vec::new());
    let base = run_supervised(&base_job, Path::new(TRAINERD), 5);
    assert!(!base.dead, "baseline must ship: {:?}", base.log);
    let base_bytes = fs::read(base.params_path.expect("baseline path")).expect("baseline bytes");
    let _ = fs::remove_dir_all(&base_work);

    let phases = [
        "kill-trainer@epoch=1,phase=forward",
        "kill-trainer@epoch=0,phase=checkpoint",
        "kill-trainer@phase=ship",
    ];
    for (i, spec) in phases.iter().enumerate() {
        let (job, work) = job_in(&format!("sweep_{i}"), vec![(*spec).to_string()]);
        let out = run_supervised(&job, Path::new(TRAINERD), 9 + i as u64);
        assert!(!out.dead, "{spec}: must recover, log {:?}", out.log);
        assert_eq!(out.restarts, 1, "{spec}: one restart, log {:?}", out.log);
        let p = out.params_path.expect("recovered run ships");
        let bytes = fs::read(&p).expect("shipped bytes");
        assert_eq!(
            bytes, base_bytes,
            "{spec}: recovered ship must be bitwise-identical to the unkilled run"
        );
        let _ = fs::remove_dir_all(&work);
    }
}

/// A child that garbles a frame mid-protocol is a typed IPC error; the
/// supervisor restarts it and the retry ships the same bits.
#[test]
fn garbled_ipc_restarts_and_still_ships_identical_bits() {
    let (base_job, base_work) = job_in("garble_base", Vec::new());
    let base = run_supervised(&base_job, Path::new(TRAINERD), 5);
    let base_bytes = fs::read(base.params_path.expect("baseline path")).expect("baseline bytes");
    let _ = fs::remove_dir_all(&base_work);

    // frame 2 is the first heartbeat (frame 1 is hello)
    let (job, work) = job_in("garble", vec!["garble-ipc@frame=2".to_string()]);
    let out = run_supervised(&job, Path::new(TRAINERD), 21);
    assert!(!out.dead, "garble must recover: {:?}", out.log);
    assert_eq!(out.restarts, 1, "log: {:?}", out.log);
    assert!(
        out.ipc_errors >= 1,
        "garbled frame must count as a protocol error: {:?}",
        out.log
    );
    let bytes = fs::read(out.params_path.expect("ships after garble")).expect("bytes");
    assert_eq!(
        bytes, base_bytes,
        "garble recovery must not change the artifact"
    );
    let _ = fs::remove_dir_all(&work);
}

/// An escalation script that kills every attempt exhausts the restart
/// budget and reports a dead trainer — the caller keeps last-good params.
#[test]
fn kill_every_attempt_exhausts_the_ladder() {
    let spec = "kill-trainer@epoch=0,phase=forward".to_string();
    let (job, work) = job_in("dead", vec![spec.clone(); 8]);
    let out = run_supervised(&job, Path::new(TRAINERD), 3);
    assert!(out.dead, "an always-killed trainer must die: {:?}", out.log);
    assert!(out.params_path.is_none());
    assert!(out.restarts >= 1);
    assert!(
        out.log.iter().any(|l| l.contains("params-only")),
        "the ladder must reach the params-only rung: {:?}",
        out.log
    );
    let _ = fs::remove_dir_all(&work);
}

// ---------------------------------------------------------------------
// Lifecycle engine in trainer=process mode
// ---------------------------------------------------------------------

fn process_config(seed: u64, tag: &str, chaos_proc: Vec<String>) -> LifecycleConfig {
    let mut sc = Scenario::quick(seed);
    sc.max_ticks = 12;
    sc.bootstrap_ticks = 3;
    sc.bootstrap_epochs = 2;
    sc.storms[0].at_tick = 5;
    sc.flash_crowds[0].at_tick = 9;
    sc.flash_crowds[0].duration = 2;
    sc.retrain.rolling_window = 2;
    sc.retrain.min_interval = 3;
    sc.retrain.epochs = 2;
    sc.retrain.ship_delay = 1;
    sc.retrain.normmlu_trigger = 1.0005;
    let mut cfg = LifecycleConfig::new(sc);
    cfg.work_dir = std::env::temp_dir().join(format!("harp_lifecycle_proc_{tag}_{seed}"));
    cfg.trainer = TrainerMode::Process;
    cfg.trainer_exe = Some(PathBuf::from(TRAINERD));
    cfg.chaos_proc = chaos_proc;
    cfg.chaos_serve = Some(Arc::new(
        FaultPlan::parse("drop-conn@nth=4").expect("valid plan"),
    ));
    cfg
}

#[test]
fn process_mode_lifecycle_is_bitwise_reproducible() {
    let a = run_lifecycle(&process_config(33, "a", Vec::new())).expect("run a");
    let b = run_lifecycle(&process_config(33, "b", Vec::new())).expect("run b");

    assert_eq!(a.events, b.events, "event logs diverged");
    assert_eq!(
        a.deterministic_json().to_string(),
        b.deterministic_json().to_string(),
        "deterministic report projections diverged"
    );

    assert!(
        a.events.iter().any(|e| e.contains("retrain_trigger")),
        "the drill must actually retrain: {:?}",
        a.events
    );
    assert!(
        a.events.iter().any(|e| e.contains(" super ")),
        "supervisor log lines must fold into the event stream: {:?}",
        a.events
    );
    assert_eq!(a.trainer_deaths, 0, "clean children must never die");
    assert_eq!(a.trainer_ipc_errors, 0);
}

#[test]
fn process_mode_recovers_from_scripted_kills_deterministically() {
    // every retrain's first attempt is SIGKILLed mid-forward; the ladder
    // recovers each one, and the run is still bitwise-reproducible
    let chaos = vec!["kill-trainer@epoch=0,phase=forward".to_string()];
    let a = run_lifecycle(&process_config(41, "ka", chaos.clone())).expect("run a");
    let b = run_lifecycle(&process_config(41, "kb", chaos)).expect("run b");

    assert_eq!(a.events, b.events, "event logs diverged under kills");
    assert_eq!(
        a.deterministic_json().to_string(),
        b.deterministic_json().to_string(),
        "deterministic report projections diverged under kills"
    );
    assert_eq!(
        a.trainer_deaths, 0,
        "one kill per job must not exhaust the ladder"
    );
    if a.events.iter().any(|e| e.contains("retrain_trigger")) {
        assert!(
            a.trainer_restarts >= 1,
            "each retrain eats exactly one scripted kill: {:?}",
            a.events
        );
    }
}
