//! The supervisor half of process-mode retraining: run one [`TrainJob`]
//! in an exec'd `harp-trainerd` child under `harp-super` supervision and
//! reduce the outcome to what the lifecycle engine folds into its
//! deterministic event log.
//!
//! Wall-clock effects (backoff sleeps, watchdog waits, kill grace) stay
//! inside `harp_super::supervise`; everything returned here is a pure
//! function of the child's behavior, so a lifecycle run in
//! `trainer=process` mode stays bitwise-reproducible per seed.

use std::fs;
use std::path::{Path, PathBuf};

use harp_super::{supervise, Rung, SupervisorConfig};

use crate::trainerd::{job_to_json, TrainJob};

/// What one supervised retrain ended as, in engine terms.
#[derive(Debug)]
pub struct SupervisedResult {
    /// Trained parameter file, when the trainer shipped before its
    /// restart budget ran out.
    pub params_path: Option<PathBuf>,
    /// Restarts consumed across the escalation ladder.
    pub restarts: u64,
    /// IPC protocol violations the supervisor surfaced (garbled frames,
    /// bad schema, truncation).
    pub ipc_errors: u64,
    /// Watchdog deadline misses (hung or silent child).
    pub heartbeat_misses: u64,
    /// True when the restart budget ran out without a ship.
    pub dead: bool,
    /// Final failure reason when `dead` (empty otherwise).
    pub detail: String,
    /// Deterministic logical log (attempts, rungs, reasons — no pids, no
    /// timings) for the engine's event stream.
    pub log: Vec<String>,
}

/// Run `job` to completion under supervision. `exe` must speak the child
/// protocol when spawned with `HARP_TRAINERD_CHILD=1` — either the
/// dedicated `harp-trainerd` binary or any binary calling
/// `maybe_run_child` first thing in `main`. `seed` drives the backoff
/// jitter only. `HARP_SUPER_*` env knobs apply on top of the defaults.
///
/// On the params-only rung the restart hook wipes the job's checkpoint
/// dir, so a child that keeps dying on resume (poisoned snapshot) falls
/// back to re-fine-tuning from the warm-start parameters alone.
pub fn run_supervised(job: &TrainJob, exe: &Path, seed: u64) -> SupervisedResult {
    let mut cfg = SupervisorConfig::new(exe.to_path_buf(), job_to_json(job));
    cfg.envs
        .push(("HARP_TRAINERD_CHILD".to_string(), "1".to_string()));
    cfg.seed = seed;
    let cfg = cfg.apply_env();

    let ckpt = job.checkpoint_dir.clone();
    let mut on_restart = |_attempt: u64, rung: Rung| {
        if rung == Rung::ParamsOnly {
            // resume is poisoned or useless past this rung: drop the
            // snapshots and let the child warm-start from params
            let _ = fs::remove_dir_all(&ckpt);
        }
    };
    let out = supervise(&cfg, &mut on_restart);

    let mut log = out.log;
    let params_path = match out.shipped {
        Some((generation, path)) if generation == job.generation => Some(PathBuf::from(path)),
        Some((generation, _)) => {
            // a ship for the wrong generation is a protocol violation —
            // treat it like a dead trainer rather than shipping bad bits
            log.push(format!(
                "ship generation skew: child shipped {generation}, job wants {}",
                job.generation
            ));
            None
        }
        None => None,
    };
    let generation_skew = params_path.is_none() && !out.dead;
    SupervisedResult {
        params_path,
        restarts: out.restarts,
        ipc_errors: out.ipc_errors + u64::from(generation_skew),
        heartbeat_misses: out.heartbeat_misses,
        dead: out.dead || generation_skew,
        detail: if generation_skew {
            "ship generation skew".to_string()
        } else {
            out.detail
        },
        log,
    }
}
