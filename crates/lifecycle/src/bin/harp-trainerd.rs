//! `harp-trainerd` — the out-of-process trainer child.
//!
//! Spawned by a `harp-super` supervisor (never run by hand): speaks the
//! length-prefixed NDJSON child protocol on stdin/stdout, fine-tunes the
//! job from the config frame epoch-at-a-time with per-epoch snapshots,
//! and ships a trained parameter file. Exit code 0 = shipped, nonzero =
//! structured failure (a `failed` frame precedes it when the pipe is
//! still writable).

fn main() {
    std::process::exit(harp_lifecycle::trainerd_main());
}
