//! The trainer daemon: the child half of the supervision protocol.
//!
//! `harp-trainerd` (or any binary that calls [`maybe_run_child`] early in
//! `main`) runs one fine-tune job handed to it by a `harp-super`
//! supervisor over length-prefixed NDJSON frames on stdin/stdout:
//!
//! 1. send `hello {pid, proto}`;
//! 2. read `config {attempt, job}` — the job is a self-contained
//!    [`TrainJob`] document (architecture, instance window, warm-start
//!    path, checkpoint dir, seeds);
//! 3. train **epoch at a time**: each epoch is one `train_model` call
//!    that resumes bitwise-exactly from the job's checkpoint dir, so a
//!    crash at any point loses at most one epoch and a restarted child
//!    replays to identical bits;
//! 4. write the trained parameter file, send `ship {generation, path}`,
//!    then `done`.
//!
//! Chaos is an **escalation script**: `TrainJob::chaos` holds one
//! `HARP_FAULT` spec per attempt and the child arms only the spec at its
//! own attempt index. Restart n therefore faces fault n — a kill-loop is
//! impossible by construction, and one supervised run can walk through
//! several distinct faults (kill, garble, hang) before converging.
//!
//! Every failure is structured: bad frames, bad jobs, and training errors
//! produce a `failed {detail}` frame and a nonzero exit, never a panic.

use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use harp_chaos::{FaultPlan, IpcFault, TrainerPhase};
use harp_core::{train_model, EvalOptions, Harp, HarpConfig, Instance, TrainConfig};
use harp_nn::save_params;
use harp_paths::{Path as TunnelPath, TunnelSet};
use harp_super::{encode_frame, ChildMsg, FrameReader, SuperMsg, PROTO_VERSION};
use harp_tensor::ParamStore;
use harp_topology::Topology;
use harp_traffic::TrafficMatrix;
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;

/// One training instance in wire form: enough raw structure to rebuild
/// the exact compiled [`Instance`] (same edge ids, same tunnel order,
/// same floats — the vendored JSON encoder prints shortest-exact
/// doubles, so capacities and demands round-trip bitwise).
#[derive(Clone, Debug)]
pub struct JobInstance {
    /// Node count of the (universe) topology.
    pub nodes: usize,
    /// Directed edges in edge-id order: `(src, dst, capacity)`.
    pub edges: Vec<(usize, usize, f64)>,
    /// Ordered flow endpoints.
    pub flows: Vec<(usize, usize)>,
    /// Per-flow tunnels as edge-id paths, aligned with `flows`.
    pub tunnels: Vec<Vec<Vec<usize>>>,
    /// Dense `nodes * nodes` demand matrix.
    pub demands: Vec<f64>,
    /// LP-oracle optimal MLU for loss normalization.
    pub opt: f64,
}

impl JobInstance {
    /// Snapshot the raw parts of one scored tick.
    pub fn from_parts(topo: &Topology, tunnels: &TunnelSet, tm: &TrafficMatrix, opt: f64) -> Self {
        JobInstance {
            nodes: topo.num_nodes(),
            edges: topo
                .edges()
                .iter()
                .map(|e| (e.src, e.dst, e.capacity))
                .collect(),
            flows: tunnels.flows().to_vec(),
            tunnels: (0..tunnels.num_flows())
                .map(|f| tunnels.tunnels_of(f).iter().map(|p| p.0.clone()).collect())
                .collect(),
            demands: tm.as_slice().to_vec(),
            opt,
        }
    }

    /// Rebuild the compiled instance. Edge insertion order reproduces the
    /// original edge ids, so tunnel paths stay valid.
    fn compile(&self) -> Result<(Instance, f64), String> {
        if self.flows.len() != self.tunnels.len() {
            return Err(format!(
                "job instance: {} flows but {} tunnel groups",
                self.flows.len(),
                self.tunnels.len()
            ));
        }
        if self.tunnels.iter().any(Vec::is_empty) {
            return Err("job instance: a flow has no tunnels".to_string());
        }
        if self.demands.len() != self.nodes * self.nodes {
            return Err(format!(
                "job instance: demand matrix has {} entries for {} nodes",
                self.demands.len(),
                self.nodes
            ));
        }
        let mut topo = Topology::new(self.nodes);
        for &(s, d, c) in &self.edges {
            topo.add_edge(s, d, c)
                .map_err(|e| format!("job instance: bad edge ({s},{d}): {e}"))?;
        }
        let num_edges = topo.num_edges();
        if self
            .tunnels
            .iter()
            .flatten()
            .flatten()
            .any(|&eid| eid >= num_edges)
        {
            return Err("job instance: tunnel references an unknown edge".to_string());
        }
        let tunnels = TunnelSet::from_parts(
            self.flows.clone(),
            self.tunnels
                .iter()
                .map(|f| f.iter().map(|p| TunnelPath(p.clone())).collect())
                .collect(),
        );
        let tm = TrafficMatrix::from_dense(self.nodes, self.demands.clone());
        Ok((Instance::compile(&topo, &tunnels, &tm), self.opt))
    }
}

/// A self-contained fine-tune job, shipped to the child inside the
/// supervisor's config frame.
#[derive(Clone, Debug)]
pub struct TrainJob {
    /// Model architecture (must match the serving fleet's).
    pub model: HarpConfig,
    /// Recent-instance training window.
    pub window: Vec<JobInstance>,
    /// Previous generation's snapshot to warm-start from.
    pub warm_path: PathBuf,
    /// Checkpoint dir for per-epoch snapshots (the resume anchor).
    pub checkpoint_dir: PathBuf,
    /// Where the trained parameter file is written before `ship`.
    pub params_out: PathBuf,
    /// Parameter generation this job produces.
    pub generation: u64,
    /// Trainer worker threads.
    pub workers: usize,
    /// Fine-tune epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training seed (shared by init, shuffling, and resume).
    pub seed: u64,
    /// Escalation script: `HARP_FAULT` spec armed on attempt n is
    /// `chaos[n]`; attempts past the end run clean.
    pub chaos: Vec<String>,
}

/// Encode a job for the config frame.
pub fn job_to_json(job: &TrainJob) -> Value {
    let window: Vec<Value> = job
        .window
        .iter()
        .map(|w| {
            serde_json::json!({
                "nodes": w.nodes,
                "edges": w.edges.iter().map(|&(s, d, c)| {
                    serde_json::json!([s, d, c])
                }).collect::<Vec<_>>(),
                "flows": w.flows.iter().map(|&(s, t)| {
                    serde_json::json!([s, t])
                }).collect::<Vec<_>>(),
                "tunnels": w.tunnels.clone(),
                "demands": w.demands.clone(),
                "opt": w.opt,
            })
        })
        .collect();
    serde_json::json!({
        "model": {
            "gnn_layers": job.model.gnn_layers,
            "gnn_hidden": job.model.gnn_hidden,
            "d_model": job.model.d_model,
            "settrans_layers": job.model.settrans_layers,
            "heads": job.model.heads,
            "d_ff": job.model.d_ff,
            "mlp_hidden": job.model.mlp_hidden,
            "rau_iters": job.model.rau_iters,
        },
        "window": window,
        "warm_path": job.warm_path.display().to_string(),
        "checkpoint_dir": job.checkpoint_dir.display().to_string(),
        "params_out": job.params_out.display().to_string(),
        "generation": job.generation,
        "workers": job.workers,
        "epochs": job.epochs,
        "lr": f64::from(job.lr),
        "seed": job.seed,
        "chaos": job.chaos.clone(),
    })
}

fn juint(v: &Value, key: &str) -> Result<u64, String> {
    let f = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("job field `{key}` missing or not a number"))?;
    if f < 0.0 || f.fract() != 0.0 || f > u64::MAX as f64 {
        return Err(format!("job field `{key}` is not an unsigned integer: {f}"));
    }
    Ok(f as u64) // lint: allow(as-cast) — validated integral and in range
}

fn jusize(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(juint(v, key)?).map_err(|_| format!("job field `{key}` overflows usize"))
}

fn jf64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("job field `{key}` missing or not a number"))
}

fn jstr(v: &Value, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("job field `{key}` missing or not a string"))?
        .to_string())
}

fn jarr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    Ok(v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("job field `{key}` missing or not an array"))?
        .as_slice())
}

fn pair_usize(v: &Value, what: &str) -> Result<(usize, usize), String> {
    let arr = v
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| format!("{what}: expected a 2-array"))?;
    let n = |x: &Value| -> Result<usize, String> {
        let f = x
            .as_f64()
            .filter(|f| *f >= 0.0 && f.fract() == 0.0)
            .ok_or_else(|| format!("{what}: not an unsigned integer"))?;
        usize::try_from(f as u64).map_err(|_| format!("{what}: overflows usize"))
        // lint: allow(as-cast) — validated
    };
    Ok((n(&arr[0])?, n(&arr[1])?))
}

/// Decode a job from the config frame. Strict: any missing field, wrong
/// type, or structurally-inconsistent window is a `String` error the
/// child reports via a `failed` frame.
pub fn job_from_json(v: &Value) -> Result<TrainJob, String> {
    let m = v
        .get("model")
        .ok_or_else(|| "job field `model` missing".to_string())?;
    let model = HarpConfig {
        gnn_layers: jusize(m, "gnn_layers")?,
        gnn_hidden: jusize(m, "gnn_hidden")?,
        d_model: jusize(m, "d_model")?,
        settrans_layers: jusize(m, "settrans_layers")?,
        heads: jusize(m, "heads")?,
        d_ff: jusize(m, "d_ff")?,
        mlp_hidden: jusize(m, "mlp_hidden")?,
        rau_iters: jusize(m, "rau_iters")?,
    };
    let mut window = Vec::new();
    for (i, w) in jarr(v, "window")?.iter().enumerate() {
        let mut edges = Vec::new();
        for e in jarr(w, "edges")? {
            let arr = e
                .as_array()
                .filter(|a| a.len() == 3)
                .ok_or_else(|| format!("window[{i}]: edge is not a 3-array"))?;
            let (s, d) = pair_usize(&Value::from(vec![arr[0].clone(), arr[1].clone()]), "edge")?;
            let c = arr[2]
                .as_f64()
                .ok_or_else(|| format!("window[{i}]: edge capacity is not a number"))?;
            edges.push((s, d, c));
        }
        let mut flows = Vec::new();
        for f in jarr(w, "flows")? {
            flows.push(pair_usize(f, &format!("window[{i}] flow"))?);
        }
        let mut tunnels = Vec::new();
        for ft in jarr(w, "tunnels")? {
            let group = ft
                .as_array()
                .ok_or_else(|| format!("window[{i}]: tunnel group is not an array"))?;
            let mut paths = Vec::new();
            for p in group {
                let hops = p
                    .as_array()
                    .ok_or_else(|| format!("window[{i}]: tunnel path is not an array"))?;
                let mut path = Vec::new();
                for h in hops {
                    let f = h
                        .as_f64()
                        .filter(|f| *f >= 0.0 && f.fract() == 0.0)
                        .ok_or_else(|| {
                            format!("window[{i}]: edge id is not an unsigned integer")
                        })?;
                    path.push(
                        usize::try_from(f as u64) // lint: allow(as-cast) — validated
                            .map_err(|_| format!("window[{i}]: edge id overflows usize"))?,
                    );
                }
                paths.push(path);
            }
            tunnels.push(paths);
        }
        let demands: Vec<f64> = jarr(w, "demands")?
            .iter()
            .map(|d| {
                d.as_f64()
                    .ok_or_else(|| format!("window[{i}]: demand is not a number"))
            })
            .collect::<Result<_, _>>()?;
        window.push(JobInstance {
            nodes: jusize(w, "nodes")?,
            edges,
            flows,
            tunnels,
            demands,
            opt: jf64(w, "opt")?,
        });
    }
    if window.is_empty() {
        return Err("job window is empty".to_string());
    }
    let chaos: Vec<String> = jarr(v, "chaos")?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| "job field `chaos` entry is not a string".to_string())
        })
        .collect::<Result<_, _>>()?;
    Ok(TrainJob {
        model,
        window,
        warm_path: PathBuf::from(jstr(v, "warm_path")?),
        checkpoint_dir: PathBuf::from(jstr(v, "checkpoint_dir")?),
        params_out: PathBuf::from(jstr(v, "params_out")?),
        generation: juint(v, "generation")?,
        workers: jusize(v, "workers")?,
        epochs: jusize(v, "epochs")?,
        lr: jf64(v, "lr")? as f32, // lint: allow(as-cast) — learning rate, lossy by design
        seed: juint(v, "seed")?,
        chaos,
    })
}

/// Frame writer that consults the armed chaos plan before each frame:
/// `garble-ipc` mangles the length line (the supervisor must surface a
/// typed protocol error), `slow-ipc` sleeps before writing.
struct ChaosSender<W: Write> {
    out: W,
    plan: Option<Arc<FaultPlan>>,
}

impl<W: Write> ChaosSender<W> {
    fn send(&mut self, msg: &ChildMsg) -> io::Result<()> {
        let mut bytes = encode_frame(&msg.to_value());
        if let Some(plan) = &self.plan {
            match plan.ipc_fault() {
                Some(IpcFault::Garble) => bytes[0] = b'X',
                Some(IpcFault::DelayMs(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                None => {}
            }
        }
        self.out.write_all(&bytes)?;
        self.out.flush()
    }
}

/// If this process was exec'd as a trainer child
/// (`HARP_TRAINERD_CHILD=1`), run the child protocol on stdin/stdout and
/// exit. Call first thing in `main` of any binary used as a trainer exe;
/// a normal invocation returns immediately.
pub fn maybe_run_child() {
    if std::env::var("HARP_TRAINERD_CHILD").as_deref() == Ok("1") {
        let code = trainerd_main();
        std::process::exit(code); // lint: allow(exit) — dedicated child entrypoint, nothing to unwind
    }
}

/// Run the child protocol on this process's stdin/stdout; returns the
/// exit code (0 = shipped, nonzero = structured failure).
pub fn trainerd_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    run_trainerd(BufReader::new(stdin.lock()), stdout.lock())
}

/// The child protocol over arbitrary streams (tests drive it in-memory).
pub fn run_trainerd<R: BufRead, W: Write>(input: R, output: W) -> i32 {
    let mut frames = FrameReader::new(input);
    let mut sender = ChaosSender {
        out: output,
        plan: None,
    };
    let hello = ChildMsg::Hello {
        pid: u64::from(std::process::id()),
        proto: PROTO_VERSION,
    };
    if sender.send(&hello).is_err() {
        return 2;
    }

    let (attempt, jobv) = match frames.read_frame() {
        Ok(Some(v)) => match SuperMsg::from_value(&v) {
            Ok(SuperMsg::Config { attempt, job }) => (attempt, job),
            Ok(SuperMsg::Shutdown) => return 0,
            Err(e) => {
                return fail(&mut sender, format!("bad config frame: {e}"));
            }
        },
        Ok(None) => return 2, // supervisor went away before config
        Err(e) => {
            return fail(&mut sender, format!("config read failed: {e}"));
        }
    };
    let job = match job_from_json(&jobv) {
        Ok(j) => j,
        Err(e) => return fail(&mut sender, format!("bad job: {e}")),
    };

    // Escalation script: arm only this attempt's fault spec.
    let plan = match job.chaos.get(attempt as usize) {
        Some(spec) if !spec.trim().is_empty() => match FaultPlan::parse(spec) {
            Ok(p) => Some(Arc::new(p)),
            Err(e) => return fail(&mut sender, format!("bad chaos spec: {e}")),
        },
        _ => None,
    };
    sender.plan = plan.clone();

    match run_job(&job, plan, &mut sender) {
        Ok(()) => 0,
        Err(detail) => fail(&mut sender, detail),
    }
}

fn fail<W: Write>(sender: &mut ChaosSender<W>, detail: String) -> i32 {
    let _ = sender.send(&ChildMsg::Failed { detail });
    1
}

/// Train the job epoch-at-a-time and ship. Each epoch is an independent
/// `train_model` call resuming from the checkpoint dir, so the snapshot
/// on disk always trails the reported progress by less than one epoch.
fn run_job<W: Write>(
    job: &TrainJob,
    plan: Option<Arc<FaultPlan>>,
    sender: &mut ChaosSender<W>,
) -> Result<(), String> {
    let window: Vec<(Instance, f64)> = job
        .window
        .iter()
        .map(JobInstance::compile)
        .collect::<Result<_, _>>()?;
    let refs: Vec<(&Instance, f64)> = window.iter().map(|(i, o)| (i, *o)).collect();
    let val_n = refs.len().min(3);
    let val = &refs[refs.len() - val_n..];

    let mut store = None;
    for k in 1..=job.epochs.max(1) {
        let epoch = (k - 1) as u64;
        if let Some(p) = &plan {
            if p.hang_trainer_due(epoch) {
                // scripted hang: go silent forever; the watchdog kills us
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        sender
            .send(&ChildMsg::Heartbeat { epoch })
            .map_err(|e| format!("heartbeat write failed: {e}"))?;

        let mut fresh = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(job.seed);
        let harp = Harp::new(&mut fresh, &mut rng, job.model);
        let tc = TrainConfig {
            epochs: k,
            batch_size: 4,
            lr: job.lr,
            patience: 0,
            workers: job.workers,
            checkpoint_dir: Some(job.checkpoint_dir.clone()),
            checkpoint_every: 1,
            seed: job.seed,
            chaos: plan.clone(),
            ..TrainConfig::default()
        }
        .warm_start_from(job.warm_path.clone());
        let report = train_model(&harp, &mut fresh, &refs, val, tc, EvalOptions::default())
            .map_err(|e| format!("epoch {epoch} failed: {e:?}"))?;
        // A restarted child whose snapshot already covers this epoch runs
        // zero fresh epochs (empty history): the heartbeat above keeps the
        // watchdog fed, and a progress frame would have no loss to report
        // (NaN is unrepresentable in JSON and must never hit the wire).
        if let Some(h) = report.history.last() {
            sender
                .send(&ChildMsg::Progress {
                    epoch,
                    loss: h.train_loss,
                    val: h.val_norm_mlu,
                })
                .map_err(|e| format!("progress write failed: {e}"))?;
        }
        store = Some(fresh);
    }

    let store = store.ok_or_else(|| "no epochs ran".to_string())?;
    save_params(&store, &job.params_out).map_err(|e| format!("params write failed: {e}"))?;
    if let Some(p) = &plan {
        // the parameter file is complete (atomic write); dying here tests
        // recovery at the ship rendezvous
        p.maybe_kill_trainer(0, TrainerPhase::Ship);
    }
    sender
        .send(&ChildMsg::Ship {
            generation: job.generation,
            path: job.params_out.display().to_string(),
        })
        .map_err(|e| format!("ship write failed: {e}"))?;
    sender
        .send(&ChildMsg::Done)
        .map_err(|e| format!("done write failed: {e}"))?;
    Ok(())
}
