//! SLA scoring for a lifecycle run: per-tick NormMLU against a
//! per-snapshot LP oracle, per-storm time-to-recover, served-model
//! staleness, and the deterministic event log the reproducibility test
//! compares bit for bit.

use serde_json::Value;

/// One scored virtual tick.
#[derive(Clone, Debug)]
pub struct TickSample {
    /// Virtual tick (global snapshot index within the run).
    pub tick: usize,
    /// AnonNet cluster (lifecycle phase) the tick belongs to.
    pub cluster: usize,
    /// Serve-side topology epoch after this tick's updates.
    pub epoch: u64,
    /// Parameter generation the fleet served this tick.
    pub generation: u64,
    /// Trained-but-not-yet-served generations (`available - served`).
    pub staleness: u64,
    /// Served splits' max link utilization on the true (drifted) topology.
    pub model_mlu: f64,
    /// LP oracle MLU on the same instance.
    pub oracle_mlu: f64,
    /// `model_mlu / oracle_mlu`, floored at 1.
    pub norm_mlu: f64,
    /// Whether the fleet answered from fallback splits.
    pub degraded: bool,
}

/// Outcome of one scheduled storm.
#[derive(Clone, Debug)]
pub struct StormOutcome {
    /// Storm index in the scenario schedule.
    pub id: usize,
    /// Tick the storm struck.
    pub at_tick: usize,
    /// Scheduled duration in ticks.
    pub duration: usize,
    /// Links actually taken down (connectivity-preserving draws).
    pub links: Vec<(usize, usize)>,
    /// Pre-storm rolling NormMLU baseline.
    pub baseline: f64,
    /// Tick at which NormMLU returned to within the recover factor of the
    /// baseline (`None` = never inside this run/phase).
    pub recovered_at: Option<usize>,
    /// `recovered_at - at_tick`.
    pub ttr: Option<usize>,
}

/// Outcome of one online-retrain generation.
#[derive(Clone, Debug)]
pub struct RetrainOutcome {
    /// Parameter generation this retrain produced.
    pub generation: u64,
    /// Tick the NormMLU regression trigger fired.
    pub trigger_tick: usize,
    /// Tick the parameters reached the fleet (`None` = never shipped).
    pub shipped_tick: Option<usize>,
    /// Whether fine-tuning itself succeeded.
    pub ok: bool,
    /// Whether chaos corrupted the shipped checkpoint (forcing a re-ship).
    pub corrupted_ship: bool,
    /// Failure detail for `ok == false` runs, empty otherwise.
    pub detail: String,
}

/// The full scored run. Everything except [`LifecycleReport::wall_s`] is a
/// pure function of the scenario seed.
#[derive(Clone, Debug)]
pub struct LifecycleReport {
    /// Scenario name.
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// Per-tick SLA samples.
    pub ticks: Vec<TickSample>,
    /// Per-storm outcomes.
    pub storms: Vec<StormOutcome>,
    /// Per-retrain outcomes.
    pub retrains: Vec<RetrainOutcome>,
    /// Cluster-boundary maintenance windows (fleet respawns).
    pub maintenance_windows: usize,
    /// Connections the engine lost to chaos (each retried).
    pub conn_drops: u64,
    /// Checkpoint ships the fleet rejected (corrupt file).
    pub reload_rejects: u64,
    /// Worst `available - served` generation gap observed.
    pub max_staleness: u64,
    /// Ticks served with a stale model (staleness > 0).
    pub stale_ticks: usize,
    /// Mean NormMLU over all ticks.
    pub mean_norm_mlu: f64,
    /// 95th-percentile NormMLU.
    pub p95_norm_mlu: f64,
    /// Worst single-tick NormMLU.
    pub worst_norm_mlu: f64,
    /// Ticks answered from fallback splits.
    pub degraded_ticks: usize,
    /// Fleet-reported protocol errors (must be 0 — the engine only sends
    /// well-formed requests, even under chaos).
    pub protocol_errors: u64,
    /// Fleet-reported shed requests.
    pub shed_total: u64,
    /// Fleet-reported successful checkpoint reloads (current incarnation).
    pub reload_ok: u64,
    /// Fleet-reported failed checkpoint reloads (current incarnation).
    pub reload_failed: u64,
    /// Trainer-process restarts consumed across all supervised retrains
    /// (always 0 in thread mode).
    pub trainer_restarts: u64,
    /// Supervisor-counted IPC protocol violations (garbled, truncated, or
    /// malformed frames from the trainer child; always 0 in thread mode).
    pub trainer_ipc_errors: u64,
    /// Retrains whose trainer exhausted its restart budget and was
    /// declared dead (the fleet kept serving the last good generation).
    pub trainer_deaths: u64,
    /// Pending re-ships abandoned after the reship retry budget ran out.
    pub ships_abandoned: u64,
    /// The deterministic event log (virtual-time only, no wall clock).
    pub events: Vec<String>,
    /// Wall-clock runtime in seconds (excluded from determinism checks).
    pub wall_s: f64,
}

impl LifecycleReport {
    /// Full JSON document, including the non-deterministic `wall_s`.
    pub fn to_json(&self) -> Value {
        let mut doc = self.deterministic_json();
        if let Value::Object(map) = &mut doc {
            map.insert("wall_s".into(), Value::from(self.wall_s));
        }
        doc
    }

    /// The seed-determined projection: identical (as a string) across runs
    /// with the same scenario and seed. `bench_lifecycle --check` and the
    /// crate's determinism test compare exactly this.
    pub fn deterministic_json(&self) -> Value {
        let ticks: Vec<Value> = self
            .ticks
            .iter()
            .map(|t| {
                serde_json::json!({
                    "tick": t.tick,
                    "cluster": t.cluster,
                    "epoch": t.epoch,
                    "generation": t.generation,
                    "staleness": t.staleness,
                    "model_mlu": t.model_mlu,
                    "oracle_mlu": t.oracle_mlu,
                    "norm_mlu": t.norm_mlu,
                    "degraded": t.degraded,
                })
            })
            .collect();
        let storms: Vec<Value> = self
            .storms
            .iter()
            .map(|s| {
                serde_json::json!({
                    "id": s.id,
                    "at_tick": s.at_tick,
                    "duration": s.duration,
                    "links": s.links.iter().map(|&(u, v)| {
                        serde_json::json!([u, v])
                    }).collect::<Vec<_>>(),
                    "baseline": s.baseline,
                    "recovered_at": opt_usize(s.recovered_at),
                    "ttr": opt_usize(s.ttr),
                })
            })
            .collect();
        let retrains: Vec<Value> = self
            .retrains
            .iter()
            .map(|r| {
                serde_json::json!({
                    "generation": r.generation,
                    "trigger_tick": r.trigger_tick,
                    "shipped_tick": opt_usize(r.shipped_tick),
                    "ok": r.ok,
                    "corrupted_ship": r.corrupted_ship,
                    "detail": r.detail.clone(),
                })
            })
            .collect();
        serde_json::json!({
            "scenario": self.scenario.clone(),
            "seed": self.seed,
            "ticks": ticks,
            "storms": storms,
            "retrains": retrains,
            "maintenance_windows": self.maintenance_windows,
            "conn_drops": self.conn_drops,
            "reload_rejects": self.reload_rejects,
            "max_staleness": self.max_staleness,
            "stale_ticks": self.stale_ticks,
            "mean_norm_mlu": self.mean_norm_mlu,
            "p95_norm_mlu": self.p95_norm_mlu,
            "worst_norm_mlu": self.worst_norm_mlu,
            "degraded_ticks": self.degraded_ticks,
            "protocol_errors": self.protocol_errors,
            "shed": self.shed_total,
            "reload_ok": self.reload_ok,
            "reload_failed": self.reload_failed,
            "trainer_restarts": self.trainer_restarts,
            "trainer_ipc_errors": self.trainer_ipc_errors,
            "trainer_deaths": self.trainer_deaths,
            "ships_abandoned": self.ships_abandoned,
            "events": self.events.clone(),
        })
    }
}

fn opt_usize(v: Option<usize>) -> Value {
    match v {
        Some(n) => Value::from(n as f64),
        None => Value::Null,
    }
}
