//! The scenario DSL: a declarative description of one lifecycle drill —
//! which AnonNet drift sequence to replay, when failure storms and flash
//! crowds strike, and under what policy the online trainer fires.
//!
//! A [`Scenario`] is pure data; the engine owns the virtual clock (one
//! tick per replayed snapshot) and interprets the schedule. Everything
//! downstream is deterministic in `seed`: the drift sequence, the storm
//! link draws, retrain triggers, and the resulting event log.

use harp_datasets::AnonNetConfig;

/// A burst of correlated link failures at a fixed virtual tick, restored
/// `duration` ticks later (unless a maintenance window lands first).
#[derive(Clone, Debug)]
pub struct Storm {
    /// Virtual tick at which the storm strikes.
    pub at_tick: usize,
    /// How many extra links to take down (connectivity-preserving draws;
    /// fewer may fail if the topology cannot spare them).
    pub links: usize,
    /// Ticks until the storm's links are restored.
    pub duration: usize,
}

/// A demand surge: every traffic matrix inside the window is scaled.
#[derive(Clone, Debug)]
pub struct FlashCrowd {
    /// Virtual tick at which the surge begins.
    pub at_tick: usize,
    /// Surge length in ticks.
    pub duration: usize,
    /// Demand multiplier applied while the surge is active.
    pub multiplier: f64,
}

/// When and how the online trainer fires.
#[derive(Clone, Debug)]
pub struct RetrainPolicy {
    /// Fine-tuning starts when the rolling-mean NormMLU exceeds this.
    pub normmlu_trigger: f64,
    /// Ticks in the rolling NormMLU window (also the storm baseline).
    pub rolling_window: usize,
    /// Minimum ticks between consecutive retrain triggers.
    pub min_interval: usize,
    /// Most recent scored instances kept as the fine-tuning set.
    pub train_window: usize,
    /// Fine-tuning epochs per retrain.
    pub epochs: usize,
    /// Virtual ticks a retrain takes before its parameters ship; the
    /// engine rendezvouses with the trainer thread at `trigger + delay`.
    pub ship_delay: usize,
    /// Fine-tuning learning rate.
    pub lr: f32,
}

/// One lifecycle drill, fully determined by `seed`.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (recorded in the report).
    pub name: String,
    /// Master seed: drives the AnonNet stream, storm draws, and model init.
    pub seed: u64,
    /// The drift sequence to replay (`seed` overrides its seed field).
    pub anonnet: AnonNetConfig,
    /// Stop after this many ticks (0 = replay the whole stream).
    pub max_ticks: usize,
    /// Leading snapshots used to pretrain generation 0 before serving
    /// starts (they are still replayed as live traffic afterwards).
    pub bootstrap_ticks: usize,
    /// Epochs for the generation-0 pretrain.
    pub bootstrap_epochs: usize,
    /// Scheduled failure storms.
    pub storms: Vec<Storm>,
    /// Scheduled demand surges.
    pub flash_crowds: Vec<FlashCrowd>,
    /// Online-retraining policy.
    pub retrain: RetrainPolicy,
    /// A storm counts as recovered once NormMLU returns to within this
    /// factor of its pre-storm rolling baseline.
    pub recover_factor: f64,
}

impl Scenario {
    /// The CI-sized drill: two clusters of a tiny universe, one storm,
    /// one retrain cycle, a couple hundred LP solves end to end.
    pub fn quick(seed: u64) -> Self {
        let mut anonnet = AnonNetConfig::tiny();
        anonnet.seed = seed;
        anonnet.num_clusters = 2;
        anonnet.cluster_size_range = (10, 12);
        anonnet.large_cluster_size = 12;
        Scenario {
            name: "quick".to_string(),
            seed,
            anonnet,
            max_ticks: 0,
            bootstrap_ticks: 5,
            bootstrap_epochs: 4,
            storms: vec![Storm {
                at_tick: 8,
                links: 2,
                duration: 3,
            }],
            flash_crowds: vec![FlashCrowd {
                at_tick: 14,
                duration: 3,
                multiplier: 1.5,
            }],
            retrain: RetrainPolicy {
                normmlu_trigger: 1.02,
                rolling_window: 3,
                min_interval: 5,
                train_window: 8,
                epochs: 3,
                ship_delay: 2,
                lr: 1e-3,
            },
            recover_factor: 1.10,
        }
    }

    /// The flagship drill behind `BENCH_lifecycle.json`: three phases of
    /// the full 26-node universe, three storms, a flash crowd, and several
    /// retrain generations.
    pub fn flagship(seed: u64) -> Self {
        let anonnet = AnonNetConfig {
            seed,
            num_clusters: 3,
            cluster_size_range: (20, 26),
            large_cluster_size: 26,
            tunnels_per_flow: 8,
            ..AnonNetConfig::default()
        };
        Scenario {
            name: "flagship".to_string(),
            seed,
            anonnet,
            max_ticks: 0,
            bootstrap_ticks: 8,
            bootstrap_epochs: 8,
            storms: vec![
                Storm {
                    at_tick: 14,
                    links: 3,
                    duration: 5,
                },
                Storm {
                    at_tick: 38,
                    links: 2,
                    duration: 4,
                },
                Storm {
                    at_tick: 58,
                    links: 3,
                    duration: 5,
                },
            ],
            flash_crowds: vec![FlashCrowd {
                at_tick: 28,
                duration: 6,
                multiplier: 1.6,
            }],
            retrain: RetrainPolicy {
                normmlu_trigger: 1.03,
                rolling_window: 4,
                min_interval: 10,
                train_window: 12,
                epochs: 4,
                ship_delay: 3,
                lr: 1e-3,
            },
            recover_factor: 1.10,
        }
    }

    /// Apply the `HARP_LIFECYCLE_*` environment overrides that shape the
    /// scenario itself (tick budget and training effort). Unparseable
    /// values warn and keep the scenario's defaults, mirroring
    /// `ServeConfig::from_env`.
    pub fn apply_env(mut self) -> Self {
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_TICKS") {
            match raw.parse::<usize>() {
                Ok(n) => self.max_ticks = n,
                Err(_) => warn_knob("HARP_LIFECYCLE_TICKS", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_BOOTSTRAP_EPOCHS") {
            match raw.parse::<usize>() {
                Ok(n) if n > 0 => self.bootstrap_epochs = n,
                _ => warn_knob("HARP_LIFECYCLE_BOOTSTRAP_EPOCHS", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_RETRAIN_EPOCHS") {
            match raw.parse::<usize>() {
                Ok(n) if n > 0 => self.retrain.epochs = n,
                _ => warn_knob("HARP_LIFECYCLE_RETRAIN_EPOCHS", &raw),
            }
        }
        self
    }
}

/// Warn-and-fall-back for a malformed env knob.
pub(crate) fn warn_knob(knob: &'static str, raw: &str) {
    harp_obs::warn_always(
        "lifecycle.env_fallback",
        &[("knob", knob.into()), ("raw", raw.to_string().into())],
    );
}
