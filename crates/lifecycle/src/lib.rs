//! End-to-end WAN lifecycle simulator for the HARP reproduction.
//!
//! This crate closes the loop the paper's evaluation only sketches: it
//! replays a multi-week AnonNet drift sequence — organic growth, failure
//! storms, maintenance windows, flash crowds — as live
//! `topology_update`/`infer` traffic into an in-process `harp-serve`
//! fleet, while an online trainer fine-tunes on each drifted window from
//! the last generation's checkpoint and hot-ships parameters over
//! `reload_checkpoint`. The run is scored as an SLA: NormMLU over time
//! against a per-snapshot LP oracle, time-to-recover per storm, and
//! served-model staleness.
//!
//! Three independent chaos plans ([`LifecycleConfig::chaos_serve`],
//! [`LifecycleConfig::chaos_train`], [`LifecycleConfig::chaos_ship`])
//! let one drill exercise connection drops during storms, worker kills
//! mid-fine-tune, and corrupt checkpoints mid-reload simultaneously —
//! and every run is bitwise-reproducible from a single seed.

mod engine;
mod metrics;
mod scenario;
mod supervised;
mod trainerd;

pub use engine::{run_lifecycle, LifecycleConfig, LifecycleError, TrainerMode};
pub use metrics::{LifecycleReport, RetrainOutcome, StormOutcome, TickSample};
pub use scenario::{FlashCrowd, RetrainPolicy, Scenario, Storm};
pub use supervised::{run_supervised, SupervisedResult};
pub use trainerd::{
    job_from_json, job_to_json, maybe_run_child, run_trainerd, trainerd_main, JobInstance, TrainJob,
};
