//! The lifecycle engine: a deterministic closed loop that replays an
//! AnonNet drift sequence into a live in-process `harp-serve` fleet while
//! an online trainer fine-tunes on the drifted traffic and hot-ships new
//! parameter generations over `reload_checkpoint`.
//!
//! Virtual time: one tick per replayed snapshot. Per tick the engine
//!
//! 1. handles the cluster boundary (maintenance window: fleet shutdown +
//!    respawn on the new topology with the freshest served parameters),
//! 2. translates the snapshot delta plus any scheduled storm transitions
//!    into one `topology_update`,
//! 3. rendezvouses with a due trainer thread and ships its checkpoint
//!    (optionally chaos-corrupted — the fleet rejects it and the engine
//!    re-ships clean next tick, surfacing as model staleness),
//! 4. scores one `infer` round trip against a per-snapshot LP oracle on
//!    the *true* drifted topology (snapshot capacities + storm failures),
//! 5. fires the retrain trigger when the rolling NormMLU regresses.
//!
//! Every socket round trip is sequential (one request in flight), the
//! trainer joins at a fixed virtual tick, and all randomness is seeded,
//! so the event log and every metric are bitwise-reproducible per seed —
//! `tests/determinism.rs` holds that bar.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use harp_chaos::FaultPlan;
use harp_core::{
    norm_mlu, percentile, train_model, EvalOptions, Harp, HarpConfig, Instance, SplitModel,
    TrainConfig, SNAPSHOT_FILE,
};
use harp_datasets::{SnapshotStream, StreamItem};
use harp_nn::save_params;
use harp_opt::MluOracle;
use harp_serve::{serve, NetworkState, ServeConfig, ServerHandle};
use harp_tensor::ParamStore;
use harp_topology::{EdgeId, Topology};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde_json::Value;

use crate::metrics::{LifecycleReport, RetrainOutcome, StormOutcome, TickSample};
use crate::scenario::{warn_knob, Scenario};
use crate::supervised::{run_supervised, SupervisedResult};
use crate::trainerd::{JobInstance, TrainJob};

/// A lifecycle run failed outside the scripted fault envelope.
#[derive(Debug)]
pub enum LifecycleError {
    /// Filesystem or socket failure.
    Io(io::Error),
    /// The fleet answered something the engine cannot reconcile with its
    /// mirror of the network state (a determinism bug, not chaos).
    Protocol(String),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Io(e) => write!(f, "lifecycle io error: {e}"),
            LifecycleError::Protocol(msg) => write!(f, "lifecycle protocol error: {msg}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

impl From<io::Error> for LifecycleError {
    fn from(e: io::Error) -> Self {
        LifecycleError::Io(e)
    }
}

/// Where online retraining runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainerMode {
    /// In-process trainer thread (the historical mode): cheap, but a
    /// trainer crash is a run crash.
    Thread,
    /// Exec'd `harp-trainerd` child under `harp-super` supervision: the
    /// trainer is its own failure domain — crashes, hangs, and garbled
    /// IPC surface as restarts and staleness, never as engine failures.
    Process,
}

/// Everything a lifecycle run needs beyond the [`Scenario`] itself: fleet
/// shape, trainer parallelism, scratch space, and the three independent
/// chaos plans (fleet, trainer, checkpoint shipping).
#[derive(Clone, Debug)]
pub struct LifecycleConfig {
    /// The drill to run.
    pub scenario: Scenario,
    /// Serving shards in the fleet.
    pub shards: usize,
    /// Per-request deadline. Generous by default: the drill measures SLA
    /// quality and recovery, not serving latency, and a degraded answer
    /// on a loaded CI host would break bitwise reproducibility.
    pub deadline_ms: u64,
    /// Trainer worker threads (1 keeps the rendezvous cheap).
    pub train_workers: usize,
    /// Model architecture served and fine-tuned.
    pub model: HarpConfig,
    /// Scratch directory for checkpoints and shipped parameter files;
    /// wiped at the start of every run.
    pub work_dir: PathBuf,
    /// Connection faults injected into the fleet's accept loop.
    pub chaos_serve: Option<Arc<FaultPlan>>,
    /// Worker-kill / NaN-gradient faults injected into fine-tuning runs.
    pub chaos_train: Option<Arc<FaultPlan>>,
    /// Checkpoint corruption applied to shipped parameter files.
    pub chaos_ship: Option<Arc<FaultPlan>>,
    /// Where retrains run ([`TrainerMode::Thread`] by default).
    pub trainer: TrainerMode,
    /// Child executable for [`TrainerMode::Process`]. `None` re-execs the
    /// current binary, which must call `maybe_run_child` first thing in
    /// `main` (as `bench_lifecycle` does); test harnesses pass the
    /// dedicated `harp-trainerd` binary instead.
    pub trainer_exe: Option<PathBuf>,
    /// Process-fault escalation script for supervised retrains: one
    /// `HARP_FAULT` spec per child attempt (`chaos_proc[n]` arms on
    /// attempt n, later attempts run clean). Empty = no process chaos.
    pub chaos_proc: Vec<String>,
    /// Reload retries for a fleet-rejected ship before the generation is
    /// abandoned.
    pub reship_budget: u64,
}

impl LifecycleConfig {
    /// Defaults for `scenario`: 2 shards, 60 s deadlines, 1 trainer
    /// worker, a quick HARP architecture, and a scratch dir under the
    /// system temp directory keyed by scenario name + seed.
    pub fn new(scenario: Scenario) -> Self {
        let work_dir = std::env::temp_dir().join(format!(
            "harp_lifecycle_{}_{}",
            scenario.name, scenario.seed
        ));
        LifecycleConfig {
            scenario,
            shards: 2,
            deadline_ms: 60_000,
            train_workers: 1,
            model: HarpConfig {
                gnn_layers: 1,
                settrans_layers: 1,
                rau_iters: 2,
                ..HarpConfig::default()
            },
            work_dir,
            chaos_serve: None,
            chaos_train: None,
            chaos_ship: None,
            trainer: TrainerMode::Thread,
            trainer_exe: None,
            chaos_proc: Vec::new(),
            reship_budget: 3,
        }
    }

    /// Apply the `HARP_LIFECYCLE_*` env knobs that shape the run (shards,
    /// deadline, trainer workers, scratch dir). Malformed values warn and
    /// keep defaults.
    pub fn apply_env(mut self) -> Self {
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_SHARDS") {
            match raw.parse::<usize>() {
                Ok(n) if n >= 1 => self.shards = n,
                _ => warn_knob("HARP_LIFECYCLE_SHARDS", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_DEADLINE_MS") {
            match raw.parse::<u64>() {
                Ok(ms) if ms > 0 => self.deadline_ms = ms,
                _ => warn_knob("HARP_LIFECYCLE_DEADLINE_MS", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_WORKERS") {
            match raw.parse::<usize>() {
                Ok(n) => self.train_workers = n,
                Err(_) => warn_knob("HARP_LIFECYCLE_WORKERS", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_WORK_DIR") {
            if !raw.is_empty() {
                self.work_dir = PathBuf::from(raw);
            }
        }
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_TRAINER") {
            match raw.as_str() {
                "thread" => self.trainer = TrainerMode::Thread,
                "process" => self.trainer = TrainerMode::Process,
                _ => warn_knob("HARP_LIFECYCLE_TRAINER", &raw),
            }
        }
        if let Ok(raw) = std::env::var("HARP_TRAINERD") {
            if !raw.is_empty() {
                self.trainer_exe = Some(PathBuf::from(raw));
            }
        }
        if let Ok(raw) = std::env::var("HARP_LIFECYCLE_RESHIP_BUDGET") {
            match raw.parse::<u64>() {
                Ok(n) => self.reship_budget = n,
                Err(_) => warn_knob("HARP_LIFECYCLE_RESHIP_BUDGET", &raw),
            }
        }
        self.scenario = self.scenario.apply_env();
        self
    }
}

/// A storm currently being tracked (failed, restored, or awaiting
/// NormMLU recovery).
struct ActiveStorm {
    id: usize,
    at_tick: usize,
    duration: usize,
    ends: usize,
    links: Vec<(usize, usize)>,
    baseline: f64,
    recovered: Option<usize>,
}

impl ActiveStorm {
    fn into_outcome(self) -> StormOutcome {
        StormOutcome {
            id: self.id,
            at_tick: self.at_tick,
            duration: self.duration,
            links: self.links,
            baseline: self.baseline,
            recovered_at: self.recovered,
            ttr: self.recovered.map(|t| t - self.at_tick),
        }
    }
}

/// A fine-tune in flight, joined at tick `due`. Thread mode carries the
/// trained store directly; process mode carries the supervisor's outcome
/// (the join thread only blocks on `supervise`, so the engine's virtual
/// clock keeps ticking while the child trains in real time).
enum RetrainWork {
    Thread(JoinHandle<Result<ParamStore, String>>),
    Process(JoinHandle<SupervisedResult>),
}

/// A fine-tune in flight on its own thread, joined at tick `due`.
struct InFlightRetrain {
    generation: u64,
    trigger_tick: usize,
    due: usize,
    work: RetrainWork,
}

/// Run one lifecycle drill to completion and score it.
pub fn run_lifecycle(cfg: &LifecycleConfig) -> Result<LifecycleReport, LifecycleError> {
    let started = Instant::now();
    let sc = &cfg.scenario;
    let mut anonnet = sc.anonnet.clone();
    anonnet.seed = sc.seed;
    let zero_cap = anonnet.zero_cap;

    let _ = fs::remove_dir_all(&cfg.work_dir);
    fs::create_dir_all(&cfg.work_dir)?;

    harp_obs::event("lifecycle.start")
        .field("scenario", sc.name.clone())
        .field("seed", sc.seed)
        .field("shards", cfg.shards)
        .emit();

    // ------------------------------------------------------------------
    // Bootstrap: pull the leading snapshots and pretrain generation 0.
    // The prefix is replayed as live traffic afterwards — the model
    // serves the very window it learned from, then drifts away from it.
    // ------------------------------------------------------------------
    let mut stream = SnapshotStream::new(&anonnet);
    let mut prefix: Vec<StreamItem> = Vec::new();
    for _ in 0..sc.bootstrap_ticks.max(1) {
        match stream.next() {
            Some(item) => prefix.push(item),
            None => break,
        }
    }
    if prefix.is_empty() {
        return Err(LifecycleError::Protocol(
            "snapshot stream is empty".to_string(),
        ));
    }

    let oracle = MluOracle::default();
    let boot: Vec<(Instance, f64)> = prefix
        .iter()
        .map(|item| {
            let (inst, _) = true_instance(item, &BTreeSet::new(), zero_cap, 1.0);
            let opt = oracle.solve(&inst.program).mlu;
            (inst, opt)
        })
        .collect();

    let mut init_store = ParamStore::new();
    let mut mrng = StdRng::seed_from_u64(sc.seed ^ 0x11FE_C0DE);
    let harp = Harp::new(&mut init_store, &mut mrng, cfg.model);
    {
        let refs: Vec<(&Instance, f64)> = boot.iter().map(|(i, o)| (i, *o)).collect();
        let val_n = refs.len().min(3);
        let val = &refs[refs.len() - val_n..];
        let tc = TrainConfig {
            epochs: sc.bootstrap_epochs,
            batch_size: 4,
            lr: 2e-3,
            patience: 0,
            workers: cfg.train_workers,
            checkpoint_dir: Some(gen_dir(&cfg.work_dir, 0)),
            checkpoint_every: 1,
            seed: sc.seed ^ 0xB007,
            ..TrainConfig::default()
        };
        train_model(
            &harp,
            &mut init_store,
            &refs,
            val,
            tc,
            EvalOptions::default(),
        )
        .map_err(|e| LifecycleError::Protocol(format!("bootstrap training failed: {e:?}")))?;
    }

    let model: Arc<dyn SplitModel + Send + Sync> = Arc::new(harp);
    let mut current_params = init_store;

    // ------------------------------------------------------------------
    // Engine state.
    // ------------------------------------------------------------------
    let mut events: Vec<String> = Vec::new();
    let mut ticks_out: Vec<TickSample> = Vec::new();
    let mut storms_out: Vec<StormOutcome> = Vec::new();
    let mut retrains_out: Vec<RetrainOutcome> = Vec::new();

    let mut fleet: Option<(ServerHandle, SocketAddr)> = None;
    let mut mirror: Option<NetworkState> = None;
    let mut link_ids: BTreeMap<(usize, usize), (EdgeId, EdgeId)> = BTreeMap::new();
    let mut gen_down: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut active_storms: Vec<ActiveStorm> = Vec::new();
    let mut flash: Option<(usize, f64)> = None; // (end tick, multiplier)

    let mut ring: VecDeque<(Instance, f64)> = VecDeque::new();
    // process mode keeps the raw (wire-form) twin of every ring entry so
    // a triggered retrain can serialize its window into the child's job
    let mut ring_raw: VecDeque<JobInstance> = VecDeque::new();
    let mut rolling: VecDeque<f64> = VecDeque::new();
    let mut warm: Option<Vec<f64>> = None;

    let mut in_flight: Option<InFlightRetrain> = None;
    let mut pending_reship: Option<(u64, ParamStore, u64)> = None; // (gen, params, attempts)
    let mut last_trigger: Option<usize> = None;
    let mut available_gen: u64 = 0;
    let mut served_gen: u64 = 0;
    let mut fleet_gen: u64 = 0; // per-incarnation, mirrors serve's counter

    let mut req_id: u64 = 0;
    let mut conn_drops: u64 = 0;
    let mut reload_rejects: u64 = 0;
    let mut maintenance_windows = 0usize;
    let mut max_staleness: u64 = 0;
    let mut stale_ticks = 0usize;
    let mut degraded_ticks = 0usize;
    let mut trainer_restarts: u64 = 0;
    let mut trainer_ipc_errors: u64 = 0;
    let mut trainer_deaths: u64 = 0;
    let mut ships_abandoned: u64 = 0;
    // once a supervised trainer exhausts its restart budget the engine
    // stops triggering retrains: the fleet serves its last good
    // generation for the rest of the run (the surfaced staleness signal)
    let mut trainer_dead = false;

    let mut tick = 0usize;
    let source = prefix.into_iter().chain(&mut stream);

    for item in source {
        if sc.max_ticks > 0 && tick >= sc.max_ticks {
            break;
        }
        let header = item.cluster.clone();

        // -------------------------------------------------- phase edge
        if item.delta.new_cluster {
            if let Some((h, _)) = fleet.take() {
                for st in active_storms.drain(..) {
                    events.push(format!(
                        "t={tick} storm_closed id={} recovered={}",
                        st.id,
                        st.recovered.is_some()
                    ));
                    storms_out.push(st.into_outcome());
                }
                flash = None;
                h.shutdown();
                maintenance_windows += 1;
                events.push(format!("t={tick} maintenance cluster={}", header.id));
                harp_obs::event("lifecycle.maintenance")
                    .field("tick", tick)
                    .field("cluster", header.id)
                    .emit();
            } else {
                events.push(format!("t={tick} start cluster={}", header.id));
            }

            let scfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                deadline_ms: cfg.deadline_ms,
                max_batch: 8,
                read_timeout_ms: 30_000,
                max_line_bytes: 1 << 20,
                shards: cfg.shards,
                max_conns: 64,
                queue_limit: 64,
                chaos: cfg.chaos_serve.clone(),
            };
            let h = serve(
                scfg,
                model.clone(),
                current_params.clone(),
                header.topo.clone(),
                header.tunnels.clone(),
            )?;
            let a = h.addr();
            fleet = Some((h, a));
            mirror = Some(NetworkState::new(
                header.topo.clone(),
                header.tunnels.clone(),
            ));
            link_ids = header
                .topo
                .links()
                .into_iter()
                .map(|(u, v, f, r)| ((u, v), (f, r)))
                .collect();
            gen_down.clear();
            ring.clear();
            ring_raw.clear();
            rolling.clear();
            warm = None;
            fleet_gen = 0;
            // the respawn serves the freshest trained parameters
            served_gen = available_gen;
            pending_reship = None;
        }
        let addr = fleet.as_ref().expect("fleet spawned at cluster start").1;
        let state = mirror.as_mut().expect("mirror tracks the fleet");

        // --------------------------------------- drift + storm schedule
        let mut fail: BTreeSet<(usize, usize)> = item.delta.failed_links.iter().copied().collect();
        let mut restore: BTreeSet<(usize, usize)> =
            item.delta.restored_links.iter().copied().collect();
        for l in &fail {
            gen_down.insert(*l);
        }
        for l in &restore {
            gen_down.remove(l);
        }

        for st in active_storms.iter() {
            if st.ends == tick {
                for l in &st.links {
                    // a link the generator also holds down stays down
                    if !gen_down.contains(l) {
                        restore.insert(*l);
                        fail.remove(l);
                    }
                }
                events.push(format!("t={tick} storm_end id={}", st.id));
                harp_obs::event("lifecycle.storm_end")
                    .field("tick", tick)
                    .field("storm", st.id)
                    .emit();
            }
        }

        for (i, storm) in sc.storms.iter().enumerate() {
            if storm.at_tick != tick {
                continue;
            }
            let baseline = if rolling.is_empty() {
                1.05
            } else {
                rolling.iter().sum::<f64>() / rolling.len() as f64
            };
            let mut srng = StdRng::seed_from_u64(sc.seed ^ 0x0570_0421 ^ ((i as u64) << 8));
            let links = pick_storm_links(
                state.topology(),
                &link_ids,
                &fail,
                storm.links,
                zero_cap,
                &mut srng,
            );
            if links.is_empty() {
                events.push(format!("t={tick} storm_skipped id={i}"));
                continue;
            }
            for l in &links {
                fail.insert(*l);
                restore.remove(l);
            }
            events.push(format!("t={tick} storm_start id={i} links={links:?}"));
            harp_obs::event("lifecycle.storm_start")
                .field("tick", tick)
                .field("storm", i)
                .field("links", links.len())
                .emit();
            active_storms.push(ActiveStorm {
                id: i,
                at_tick: tick,
                duration: storm.duration,
                ends: tick + storm.duration,
                links,
                baseline,
                recovered: None,
            });
        }

        if !fail.is_empty() || !restore.is_empty() {
            let fail_v: Vec<(usize, usize)> = fail.iter().copied().collect();
            let restore_v: Vec<(usize, usize)> = restore.iter().copied().collect();
            req_id += 1;
            let req = serde_json::json!({
                "id": req_id,
                "type": "topology_update",
                "fail_links": pairs_json(&fail_v),
                "restore_links": pairs_json(&restore_v),
            })
            .to_string();
            let resp = control_retry(addr, &req, tick, &mut conn_drops, &mut events)?;
            let summary = state
                .apply_update(&fail_v, &restore_v)
                .map_err(LifecycleError::Protocol)?;
            let fleet_epoch = resp.get("epoch").and_then(Value::as_f64);
            if fleet_epoch != Some(state.epoch() as f64) {
                return Err(LifecycleError::Protocol(format!(
                    "epoch skew after update: fleet {fleet_epoch:?} vs mirror {}",
                    state.epoch()
                )));
            }
            events.push(format!(
                "t={tick} topo_update fail={} restore={} epoch={} tunnels={}",
                fail_v.len(),
                restore_v.len(),
                state.epoch(),
                summary.num_tunnels,
            ));
        }

        // ------------------------------------------------ model shipping
        if let Some((g, store, attempts)) = pending_reship.take() {
            // rewrite the ship file and retry the broadcast. The ship
            // chaos plan is consulted again: a spec with several
            // corrupt-checkpoint faults can poison successive re-ships
            // and drive the retry budget.
            let path = ship_path(&cfg.work_dir, g);
            save_params(&store, &path)?;
            let mut corrupted = false;
            if let Some(plan) = &cfg.chaos_ship {
                let mut bytes = fs::read(&path)?;
                if plan.corrupt_checkpoint_write(&mut bytes).is_some() {
                    fs::write(&path, &bytes)?;
                    corrupted = true;
                }
            }
            req_id += 1;
            let (ok, resp) = reload(addr, req_id, &path, tick, &mut conn_drops, &mut events)?;
            if ok {
                fleet_gen += 1;
                state.bump_epoch();
                check_reload_reply(&resp, state.epoch(), fleet_gen)?;
                served_gen = g;
                current_params = store;
                if let Some(r) = retrains_out.iter_mut().find(|r| r.generation == g) {
                    r.shipped_tick = Some(tick);
                }
                events.push(format!(
                    "t={tick} reship gen={g} corrupted={corrupted} ok=true"
                ));
            } else {
                reload_rejects += 1;
                let attempts = attempts + 1;
                if attempts >= cfg.reship_budget {
                    // the generation is undeliverable: stop retrying and
                    // let staleness reflect the gap
                    ships_abandoned += 1;
                    events.push(format!(
                        "t={tick} ship_abandoned gen={g} attempts={attempts}"
                    ));
                    harp_obs::warn_always(
                        "lifecycle.ship_abandoned",
                        &[("generation", g.into()), ("attempts", attempts.into())],
                    );
                } else {
                    pending_reship = Some((g, store, attempts));
                    events.push(format!(
                        "t={tick} reship gen={g} corrupted={corrupted} ok=false"
                    ));
                }
            }
        }

        if in_flight.as_ref().is_some_and(|fl| tick >= fl.due) {
            let fl = in_flight.take().expect("checked in flight");
            // Reduce either trainer flavor to joined(trained-or-failed).
            // For a supervised child the wall-clock drama (restarts,
            // backoff, watchdog kills) already happened inside the join;
            // only its logical log is folded into the virtual-time event
            // stream, at this deterministic rendezvous tick.
            let joined: Result<Result<ParamStore, String>, ()> = match fl.work {
                RetrainWork::Thread(handle) => handle.join().map_err(|_| ()),
                RetrainWork::Process(handle) => match handle.join() {
                    Ok(res) => {
                        for line in &res.log {
                            events.push(format!("t={tick} super {line}"));
                        }
                        trainer_restarts += res.restarts;
                        trainer_ipc_errors += res.ipc_errors;
                        match res.params_path {
                            Some(path) => {
                                // same architecture as the fleet: load the
                                // child's file into a layout-matching store
                                let mut store = current_params.clone();
                                match harp_nn::load_params(&mut store, &path) {
                                    Ok(()) => Ok(Ok(store)),
                                    Err(e) => {
                                        // an accepted ship with unreadable
                                        // bits is a child bug, not ours
                                        trainer_ipc_errors += 1;
                                        Ok(Err(format!("shipped params unreadable: {e}")))
                                    }
                                }
                            }
                            None => {
                                trainer_deaths += 1;
                                trainer_dead = true;
                                harp_obs::warn_always(
                                    "lifecycle.trainer_dead",
                                    &[
                                        ("generation", fl.generation.into()),
                                        ("detail", res.detail.clone().into()),
                                    ],
                                );
                                Ok(Err(format!("trainer dead: {}", res.detail)))
                            }
                        }
                    }
                    Err(_) => Err(()),
                },
            };
            match joined {
                Ok(Ok(store)) => {
                    available_gen = fl.generation;
                    let path = ship_path(&cfg.work_dir, fl.generation);
                    save_params(&store, &path)?;
                    let mut corrupted = false;
                    if let Some(plan) = &cfg.chaos_ship {
                        let mut bytes = fs::read(&path)?;
                        if plan.corrupt_checkpoint_write(&mut bytes).is_some() {
                            fs::write(&path, &bytes)?;
                            corrupted = true;
                        }
                    }
                    req_id += 1;
                    let (ok, resp) =
                        reload(addr, req_id, &path, tick, &mut conn_drops, &mut events)?;
                    if ok {
                        fleet_gen += 1;
                        state.bump_epoch();
                        check_reload_reply(&resp, state.epoch(), fleet_gen)?;
                        served_gen = fl.generation;
                        current_params = store;
                    } else {
                        reload_rejects += 1;
                        pending_reship = Some((fl.generation, store, 0));
                    }
                    events.push(format!(
                        "t={tick} ship gen={} corrupted={corrupted} ok={ok}",
                        fl.generation
                    ));
                    harp_obs::event("lifecycle.ship")
                        .field("tick", tick)
                        .field("generation", fl.generation)
                        .field("corrupted", corrupted)
                        .field("accepted", ok)
                        .emit();
                    retrains_out.push(RetrainOutcome {
                        generation: fl.generation,
                        trigger_tick: fl.trigger_tick,
                        shipped_tick: if ok { Some(tick) } else { None },
                        ok: true,
                        corrupted_ship: corrupted,
                        detail: String::new(),
                    });
                }
                Ok(Err(detail)) => {
                    // a failed fine-tune leaves no usable generation; wipe
                    // its checkpoints so a later retry cannot resume them
                    let _ = fs::remove_dir_all(gen_dir(&cfg.work_dir, fl.generation));
                    events.push(format!(
                        "t={tick} retrain_failed gen={} detail={detail}",
                        fl.generation
                    ));
                    harp_obs::event("lifecycle.retrain_failed")
                        .field("tick", tick)
                        .field("generation", fl.generation)
                        .emit();
                    retrains_out.push(RetrainOutcome {
                        generation: fl.generation,
                        trigger_tick: fl.trigger_tick,
                        shipped_tick: None,
                        ok: false,
                        corrupted_ship: false,
                        detail,
                    });
                }
                Err(_) => {
                    let _ = fs::remove_dir_all(gen_dir(&cfg.work_dir, fl.generation));
                    events.push(format!("t={tick} retrain_panicked gen={}", fl.generation));
                    retrains_out.push(RetrainOutcome {
                        generation: fl.generation,
                        trigger_tick: fl.trigger_tick,
                        shipped_tick: None,
                        ok: false,
                        corrupted_ship: false,
                        detail: "trainer thread panicked".to_string(),
                    });
                }
            }
        }

        // ------------------------------------------------- flash crowds
        if let Some((ends, _)) = flash {
            if ends == tick {
                flash = None;
                events.push(format!("t={tick} flash_end"));
            }
        }
        for fc in &sc.flash_crowds {
            if fc.at_tick == tick {
                flash = Some((tick + fc.duration, fc.multiplier));
                events.push(format!(
                    "t={tick} flash_start x{:.2} ticks={}",
                    fc.multiplier, fc.duration
                ));
            }
        }

        // -------------------------------------------------- score a tick
        let storm_down: BTreeSet<(usize, usize)> = active_storms
            .iter()
            .filter(|st| st.at_tick <= tick && tick < st.ends)
            .flat_map(|st| st.links.iter().copied())
            .collect();
        let multiplier = flash.map_or(1.0, |(_, m)| m);
        let (inst, tm_pairs, scored_topo, scored_tm) = scored_instance(
            &item,
            state.tunnels(),
            &storm_down,
            &link_ids,
            zero_cap,
            multiplier,
        );
        let warm_ref = warm
            .as_deref()
            .filter(|w| w.len() == inst.program.num_tunnels());
        let sol = oracle.solve_warm(&inst.program, warm_ref);
        let oracle_mlu = sol.mlu;
        warm = Some(sol.splits);

        req_id += 1;
        let req = serde_json::json!({
            "id": req_id,
            "type": "infer",
            "demands": tm_pairs,
            "epoch": state.epoch(),
            "deadline_ms": cfg.deadline_ms,
        })
        .to_string();
        let resp = control_retry(addr, &req, tick, &mut conn_drops, &mut events)?;
        if resp.get("ok").and_then(Value::as_bool) != Some(true) {
            return Err(LifecycleError::Protocol(format!(
                "infer at tick {tick} rejected: {resp}"
            )));
        }
        let degraded = resp.get("degraded").and_then(Value::as_bool) == Some(true);
        let splits: Vec<f64> = resp
            .get("splits")
            .and_then(Value::as_array)
            .ok_or_else(|| {
                LifecycleError::Protocol(format!("infer at tick {tick}: no splits array"))
            })?
            .iter()
            .filter_map(Value::as_f64)
            .collect();
        if splits.len() != inst.program.num_tunnels() {
            return Err(LifecycleError::Protocol(format!(
                "splits length skew at tick {tick}: fleet {} vs mirror {}",
                splits.len(),
                inst.program.num_tunnels()
            )));
        }
        let model_mlu = inst.program.mlu(&splits);
        let nm = norm_mlu(model_mlu, oracle_mlu);

        if cfg.trainer == TrainerMode::Process {
            ring_raw.push_back(JobInstance::from_parts(
                &scored_topo,
                state.tunnels(),
                &scored_tm,
                oracle_mlu,
            ));
            while ring_raw.len() > sc.retrain.train_window {
                ring_raw.pop_front();
            }
        }
        ring.push_back((inst, oracle_mlu));
        while ring.len() > sc.retrain.train_window {
            ring.pop_front();
        }
        rolling.push_back(nm);
        while rolling.len() > sc.retrain.rolling_window {
            rolling.pop_front();
        }

        for st in active_storms.iter_mut() {
            if st.recovered.is_none() && tick > st.at_tick && nm <= st.baseline * sc.recover_factor
            {
                st.recovered = Some(tick);
                events.push(format!(
                    "t={tick} storm_recovered id={} ttr={}",
                    st.id,
                    tick - st.at_tick
                ));
                harp_obs::event("lifecycle.storm_recovered")
                    .field("tick", tick)
                    .field("storm", st.id)
                    .field("ttr", tick - st.at_tick)
                    .emit();
            }
        }
        let mut still = Vec::new();
        for st in active_storms.drain(..) {
            if st.recovered.is_some() && st.ends <= tick {
                storms_out.push(st.into_outcome());
            } else {
                still.push(st);
            }
        }
        active_storms = still;

        // ---------------------------------------------- retrain trigger
        let rolling_mean = rolling.iter().sum::<f64>() / rolling.len().max(1) as f64;
        let interval_ok = last_trigger.is_none_or(|t| tick >= t + sc.retrain.min_interval);
        if in_flight.is_none()
            && pending_reship.is_none()
            && !trainer_dead
            && rolling.len() >= sc.retrain.rolling_window
            && interval_ok
            && rolling_mean > sc.retrain.normmlu_trigger
            && ring.len() >= 4
        {
            let generation = available_gen + 1;
            last_trigger = Some(tick);
            let warm_path = gen_dir(&cfg.work_dir, available_gen).join(SNAPSHOT_FILE);
            let dir = gen_dir(&cfg.work_dir, generation);
            let _ = fs::remove_dir_all(&dir);
            let model_cfg = cfg.model;
            let workers = cfg.train_workers;
            let epochs = sc.retrain.epochs;
            let lr = sc.retrain.lr;
            let tseed = sc.seed ^ 0x7281 ^ generation;
            let work = match cfg.trainer {
                TrainerMode::Thread => {
                    let window: Vec<(Instance, f64)> = ring.iter().cloned().collect();
                    let chaos = cfg.chaos_train.clone();
                    RetrainWork::Thread(std::thread::spawn(move || {
                        fine_tune(
                            model_cfg, window, warm_path, dir, workers, epochs, lr, tseed, chaos,
                        )
                    }))
                }
                TrainerMode::Process => {
                    let exe = match &cfg.trainer_exe {
                        Some(p) => p.clone(),
                        None => std::env::current_exe()?,
                    };
                    let job = TrainJob {
                        model: model_cfg,
                        window: ring_raw.iter().cloned().collect(),
                        warm_path,
                        checkpoint_dir: dir,
                        params_out: cfg.work_dir.join(format!("gen_{generation}.trained.json")),
                        generation,
                        workers,
                        epochs,
                        lr,
                        seed: tseed,
                        chaos: cfg.chaos_proc.clone(),
                    };
                    let sseed = sc.seed ^ 0x5EED_0005 ^ generation;
                    RetrainWork::Process(std::thread::spawn(move || {
                        run_supervised(&job, &exe, sseed)
                    }))
                }
            };
            in_flight = Some(InFlightRetrain {
                generation,
                trigger_tick: tick,
                due: tick + sc.retrain.ship_delay,
                work,
            });
            events.push(format!(
                "t={tick} retrain_trigger gen={generation} rolling={rolling_mean:.4}"
            ));
            harp_obs::event("lifecycle.retrain_trigger")
                .field("tick", tick)
                .field("generation", generation)
                .field("rolling_norm_mlu", rolling_mean)
                .emit();
        }

        // ------------------------------------------------- tick sample
        let staleness = available_gen - served_gen;
        if staleness > 0 {
            stale_ticks += 1;
            max_staleness = max_staleness.max(staleness);
        }
        if degraded {
            degraded_ticks += 1;
        }
        ticks_out.push(TickSample {
            tick,
            cluster: header.id,
            epoch: state.epoch(),
            generation: served_gen,
            staleness,
            model_mlu,
            oracle_mlu,
            norm_mlu: nm,
            degraded,
        });
        tick += 1;
    }

    // ---------------------------------------------------------- wrap up
    if let Some(fl) = in_flight.take() {
        // the run ended before the rendezvous tick; settle the trainer
        // (thread join, or supervised child run to completion) but
        // nothing ships
        let ok = match fl.work {
            RetrainWork::Thread(handle) => matches!(handle.join(), Ok(Ok(_))),
            RetrainWork::Process(handle) => match handle.join() {
                Ok(res) => {
                    for line in &res.log {
                        events.push(format!("t={tick} super {line}"));
                    }
                    trainer_restarts += res.restarts;
                    trainer_ipc_errors += res.ipc_errors;
                    if res.dead {
                        trainer_deaths += 1;
                    }
                    res.params_path.is_some()
                }
                Err(_) => false,
            },
        };
        events.push(format!(
            "t={tick} retrain_abandoned gen={} trained={ok}",
            fl.generation
        ));
        retrains_out.push(RetrainOutcome {
            generation: fl.generation,
            trigger_tick: fl.trigger_tick,
            shipped_tick: None,
            ok,
            corrupted_ship: false,
            detail: "run ended before ship".to_string(),
        });
    }
    for st in active_storms.drain(..) {
        storms_out.push(st.into_outcome());
    }

    let (handle, addr) = fleet.take().ok_or_else(|| {
        LifecycleError::Protocol("no ticks were replayed (stream shorter than bootstrap)".into())
    })?;
    req_id += 1;
    let stats_req = serde_json::json!({"id": req_id, "type": "stats"}).to_string();
    let stats = control_retry(addr, &stats_req, tick, &mut conn_drops, &mut events)?;
    handle.shutdown();

    let counter = |key: &str| -> u64 {
        stats.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64 // lint: allow(as-cast) — non-negative counter
    };
    let norms: Vec<f64> = ticks_out.iter().map(|t| t.norm_mlu).collect();
    let mean_norm_mlu = norms.iter().sum::<f64>() / norms.len().max(1) as f64;
    let p95_norm_mlu = percentile(&norms, 95.0).unwrap_or(f64::NAN);
    let worst_norm_mlu = norms.iter().cloned().fold(f64::NAN, f64::max);

    let report = LifecycleReport {
        scenario: sc.name.clone(),
        seed: sc.seed,
        ticks: ticks_out,
        storms: storms_out,
        retrains: retrains_out,
        maintenance_windows,
        conn_drops,
        reload_rejects,
        max_staleness,
        stale_ticks,
        mean_norm_mlu,
        p95_norm_mlu,
        worst_norm_mlu,
        degraded_ticks,
        protocol_errors: counter("protocol_errors"),
        shed_total: counter("shed"),
        reload_ok: counter("reload_ok"),
        reload_failed: counter("reload_failed"),
        trainer_restarts,
        trainer_ipc_errors,
        trainer_deaths,
        ships_abandoned,
        events,
        wall_s: started.elapsed().as_secs_f64(),
    };
    harp_obs::event("lifecycle.done")
        .field("ticks", report.ticks.len())
        .field("mean_norm_mlu", report.mean_norm_mlu)
        .field("max_staleness", report.max_staleness)
        .emit();
    Ok(report)
}

/// Fine-tune a fresh same-architecture model warm-started from the
/// previous generation's snapshot on the engine's recent-instance window.
/// Runs on the trainer thread; returns the trained store.
#[allow(clippy::too_many_arguments)]
fn fine_tune(
    model_cfg: HarpConfig,
    window: Vec<(Instance, f64)>,
    warm_path: PathBuf,
    dir: PathBuf,
    workers: usize,
    epochs: usize,
    lr: f32,
    seed: u64,
    chaos: Option<Arc<FaultPlan>>,
) -> Result<ParamStore, String> {
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let harp = Harp::new(&mut store, &mut rng, model_cfg);
    let refs: Vec<(&Instance, f64)> = window.iter().map(|(i, o)| (i, *o)).collect();
    let val_n = refs.len().min(3);
    let val = &refs[refs.len() - val_n..];
    let tc = TrainConfig {
        epochs,
        batch_size: 4,
        lr,
        patience: 0,
        workers,
        checkpoint_dir: Some(dir),
        checkpoint_every: 1,
        seed,
        chaos,
        ..TrainConfig::default()
    }
    .warm_start_from(warm_path);
    train_model(&harp, &mut store, &refs, val, tc, EvalOptions::default())
        .map_err(|e| format!("{e:?}"))?;
    Ok(store)
}

/// The "true" drifted view of one tick for bootstrap labeling: snapshot
/// capacities (partial degradations included), storm links floored, and
/// the cluster's full tunnel set pruned by everything that is down.
fn true_instance(
    item: &StreamItem,
    storm_down: &BTreeSet<(usize, usize)>,
    zero_cap: f64,
    multiplier: f64,
) -> (Instance, Vec<Value>) {
    let links = item.cluster.topo.links();
    let mut caps = item.snapshot.capacities.clone();
    let mut down_edges: BTreeSet<EdgeId> = BTreeSet::new();
    for &(u, v, f, r) in &links {
        if storm_down.contains(&(u, v)) {
            caps[f] = zero_cap;
            caps[r] = zero_cap;
        }
        if caps[f] <= zero_cap * 1.000_001 {
            down_edges.insert(f);
        }
        if caps[r] <= zero_cap * 1.000_001 {
            down_edges.insert(r);
        }
    }
    let mut topo = item.cluster.topo.clone();
    topo.set_capacities(&caps)
        .expect("capacities aligned to the cluster topology");
    let tunnels = item.cluster.tunnels.without_edges(&down_edges);
    let tm = item.snapshot.tm.scaled(multiplier);
    let inst = Instance::compile(&topo, &tunnels, &tm);
    let pairs = demand_pairs(&tm);
    (inst, pairs)
}

/// The scored view of one live tick: like [`true_instance`] but with the
/// *fleet's* pruned tunnel set, so the served splits line up with the
/// program one-to-one. Also returns the drifted topology and scaled TM —
/// the raw parts a process-mode retrain serializes into its job window.
fn scored_instance(
    item: &StreamItem,
    fleet_tunnels: &harp_paths::TunnelSet,
    storm_down: &BTreeSet<(usize, usize)>,
    link_ids: &BTreeMap<(usize, usize), (EdgeId, EdgeId)>,
    zero_cap: f64,
    multiplier: f64,
) -> (Instance, Vec<Value>, Topology, harp_traffic::TrafficMatrix) {
    let mut caps = item.snapshot.capacities.clone();
    for l in storm_down {
        let (f, r) = link_ids[l];
        caps[f] = zero_cap;
        caps[r] = zero_cap;
    }
    let mut topo = item.cluster.topo.clone();
    topo.set_capacities(&caps)
        .expect("capacities aligned to the cluster topology");
    let tm = item.snapshot.tm.scaled(multiplier);
    let inst = Instance::compile(&topo, fleet_tunnels, &tm);
    let pairs = demand_pairs(&tm);
    (inst, pairs, topo, tm)
}

/// All strictly-positive demands of a TM as `[s, t, d]` JSON triples.
fn demand_pairs(tm: &harp_traffic::TrafficMatrix) -> Vec<Value> {
    let n = tm.num_nodes();
    let mut pairs = Vec::new();
    for s in 0..n {
        for t in 0..n {
            let d = tm.demand(s, t);
            if d > 0.0 {
                pairs.push(serde_json::json!([s, t, d]));
            }
        }
    }
    pairs
}

fn pairs_json(links: &[(usize, usize)]) -> Vec<Value> {
    links
        .iter()
        .map(|&(u, v)| serde_json::json!([u, v]))
        .collect()
}

/// Draw up to `want` currently-up links whose loss keeps the *active*
/// subgraph connected (the cluster topology spans the full node universe,
/// so this mirrors the generator's commissioned-subgraph failure rule
/// rather than whole-graph strong connectivity).
fn pick_storm_links(
    current: &Topology,
    link_ids: &BTreeMap<(usize, usize), (EdgeId, EdgeId)>,
    queued_fail: &BTreeSet<(usize, usize)>,
    want: usize,
    zero_cap: f64,
    rng: &mut StdRng,
) -> Vec<(usize, usize)> {
    let thresh = zero_cap * 10.0;
    let mut live: BTreeSet<(usize, usize)> = link_ids
        .iter()
        .filter(|(l, &(f, _))| current.capacity(f) > thresh && !queued_fail.contains(l))
        .map(|(l, _)| *l)
        .collect();
    // the node set is pinned before any draw: a pick that isolates a
    // currently-active node is rejected, like the generator's rule
    let nodes: BTreeSet<usize> = live.iter().flat_map(|&(u, v)| [u, v]).collect();
    let mut candidates: Vec<(usize, usize)> = live.iter().copied().collect();
    let mut picked = Vec::new();
    while picked.len() < want && !candidates.is_empty() {
        let i = rng.gen_range(0..candidates.len());
        let l = candidates.swap_remove(i);
        live.remove(&l);
        if undirected_connected(&live, &nodes) {
            picked.push(l);
        } else {
            live.insert(l);
        }
    }
    picked.sort_unstable();
    picked
}

/// Are all of `nodes` mutually reachable over the undirected `live` links?
fn undirected_connected(live: &BTreeSet<(usize, usize)>, nodes: &BTreeSet<usize>) -> bool {
    let Some(&start) = nodes.iter().next() else {
        return true;
    };
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(u, v) in live {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    seen.insert(start);
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        for &v in adj.get(&u).map_or(&[][..], Vec::as_slice) {
            if seen.insert(v) {
                stack.push(v);
            }
        }
    }
    nodes.iter().all(|n| seen.contains(n))
}

fn gen_dir(work_dir: &Path, generation: u64) -> PathBuf {
    work_dir.join(format!("gen{generation:03}"))
}

fn ship_path(work_dir: &Path, generation: u64) -> PathBuf {
    work_dir.join(format!("ship_gen{generation:03}.json"))
}

/// Ship one checkpoint file to the fleet; returns whether every shard
/// accepted it, plus the merged reply.
fn reload(
    addr: SocketAddr,
    id: u64,
    path: &Path,
    tick: usize,
    conn_drops: &mut u64,
    events: &mut Vec<String>,
) -> Result<(bool, Value), LifecycleError> {
    let req = serde_json::json!({
        "id": id,
        "type": "reload_checkpoint",
        "path": path.display().to_string(),
    })
    .to_string();
    let resp = control_retry(addr, &req, tick, conn_drops, events)?;
    let ok = resp.get("ok").and_then(Value::as_bool) == Some(true);
    Ok((ok, resp))
}

/// Cross-check a successful reload reply against the engine's mirror.
fn check_reload_reply(resp: &Value, epoch: u64, generation: u64) -> Result<(), LifecycleError> {
    let repoch = resp.get("epoch").and_then(Value::as_f64);
    let rgen = resp.get("generation").and_then(Value::as_f64);
    if repoch != Some(epoch as f64) || rgen != Some(generation as f64) {
        return Err(LifecycleError::Protocol(format!(
            "reload skew: fleet epoch {repoch:?} gen {rgen:?} vs mirror epoch {epoch} gen {generation}"
        )));
    }
    Ok(())
}

/// Fire one request on its own connection and return the parsed reply
/// (`None` = the connection died, e.g. a chaos drop at accept).
fn control_once(addr: SocketAddr, line: &str) -> Option<Value> {
    let stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = stream;
    writer.write_all(line.as_bytes()).ok()?;
    writer.write_all(b"\n").ok()?;
    writer.flush().ok()?;
    let mut resp = String::new();
    reader.read_line(&mut resp).ok()?;
    if resp.is_empty() {
        return None; // dropped before answering
    }
    serde_json::from_str(&resp).ok()
}

/// Retry a request through chaos-dropped connections, counting each drop
/// into the event log. Five consecutive losses is a real failure.
fn control_retry(
    addr: SocketAddr,
    line: &str,
    tick: usize,
    conn_drops: &mut u64,
    events: &mut Vec<String>,
) -> Result<Value, LifecycleError> {
    for _ in 0..5 {
        match control_once(addr, line) {
            Some(v) => return Ok(v),
            None => {
                *conn_drops += 1;
                events.push(format!("t={tick} conn_drop"));
                harp_obs::event("lifecycle.conn_drop")
                    .field("tick", tick)
                    .emit();
            }
        }
    }
    Err(LifecycleError::Protocol(format!(
        "connection to the fleet dropped 5 times in a row at tick {tick}"
    )))
}
