//! A certificate-backed Frank–Wolfe / multiplicative-weights solver for the
//! min-MLU path program.
//!
//! The feasible set is a product of per-flow simplices; the objective
//! `max_e load_e / c_e` is the maximum of linear functions. Each iteration:
//!
//! 1. smooths the max with a softmax over edge utilizations (weight
//!    `p_e ∝ exp(η (u_e - u_max))`),
//! 2. takes the Frank–Wolfe step: per flow, move mass toward the tunnel
//!    with the smallest weighted edge cost `Σ_{e∈P} p_e / c_e`,
//! 3. line-searches the *true* (nonsmooth) MLU along the segment, so the
//!    primal upper bound decreases monotonically,
//! 4. reads off an LP **dual lower bound** from the same weights:
//!    `y_e = p_e / c_e` satisfies `Σ_e y_e c_e = 1`, so
//!    `Σ_f d_f · min_k Σ_{e∈P_fk} y_e ≤ MLU*` (weak duality).
//!
//! The solve terminates when the relative primal–dual gap drops below the
//! configured tolerance, i.e. the returned MLU is *certified* to be within
//! `(1 + tol)` of optimal. This replaces Gurobi on instances too large for
//! the exact simplex.

use crate::program::PathProgram;
use crate::simplex::{solve_lp, LpProblem, SimplexStatus};

/// Configuration for [`solve_fw`].
#[derive(Clone, Copy, Debug)]
pub struct FwConfig {
    /// Target relative duality gap (e.g. `1e-3`).
    pub tol: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Initial softmax temperature (higher = closer to true max).
    pub eta0: f64,
}

impl Default for FwConfig {
    fn default() -> Self {
        FwConfig {
            tol: 1e-3,
            max_iters: 20_000,
            eta0: 20.0,
        }
    }
}

/// Result of a Frank–Wolfe solve.
#[derive(Clone, Debug)]
pub struct FwSolution {
    /// Best feasible MLU found (primal upper bound).
    pub mlu: f64,
    /// Best dual lower bound on the optimal MLU.
    pub lower_bound: f64,
    /// The splits achieving `mlu`.
    pub splits: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Final relative gap `(mlu - lb) / max(lb, tiny)`.
    pub gap: f64,
}

impl FwSolution {
    /// Whether the certified gap is within `tol`.
    pub fn certified(&self, tol: f64) -> bool {
        self.gap <= tol
    }
}

/// Refine the dual lower bound by solving the *restricted dual* exactly.
///
/// Weak duality: for any `y >= 0` with `Σ_e y_e c_e = 1`,
/// `Σ_f d_f · min_k Σ_{e ∈ P_fk} y_e <= MLU*`. The optimal `y` is supported
/// on bottleneck edges, so we restrict `y` to edges whose utilization is
/// within `delta` of the maximum, keep only flows all of whose tunnels
/// cross that set (others contribute 0), and solve the resulting small LP
/// with the exact simplex. Returns `None` when the restricted LP is too
/// large to be worth it or the solve fails.
fn refine_dual_bound(
    program: &PathProgram,
    utils: &[f64],
    delta: f64,
    max_lp_size: usize,
) -> Option<f64> {
    let u_max = utils.iter().cloned().fold(0.0f64, f64::max);
    if u_max <= 0.0 {
        return Some(0.0);
    }
    let support: Vec<usize> = (0..program.num_edges)
        .filter(|&e| utils[e] >= (1.0 - delta) * u_max && program.capacities[e] > 0.0)
        .collect();
    if support.is_empty() {
        return None;
    }
    let mut edge_col = vec![usize::MAX; program.num_edges];
    for (i, &e) in support.iter().enumerate() {
        edge_col[e] = i;
    }
    // flows whose every tunnel crosses the support
    let mut active_flows: Vec<usize> = Vec::new();
    for (f, flow) in program.flows.iter().enumerate() {
        if flow.demand > 0.0
            && flow
                .tunnels
                .iter()
                .all(|t| t.iter().any(|&e| edge_col[e] != usize::MAX))
        {
            active_flows.push(f);
        }
    }
    if active_flows.is_empty() {
        return None;
    }
    let n_y = support.len();
    let n_z = active_flows.len();
    let n_constraints: usize = active_flows
        .iter()
        .map(|&f| program.flows[f].tunnels.len())
        .sum();
    if (n_y + n_z) + n_constraints > max_lp_size {
        return None;
    }

    // max Σ z_f  ⇒  min -Σ z_f
    // s.t. z_f - d_f Σ_{e∈P∩E'} y_e <= 0  for every tunnel of active flows
    //      Σ_{e∈E'} c_e y_e = 1
    // variables: y (n_y) then z (n_z), all >= 0 (z >= 0 is valid since the
    // true z_f >= 0 when all tunnel costs are nonnegative).
    let mut objective = vec![0.0f64; n_y + n_z];
    for j in 0..n_z {
        objective[n_y + j] = -1.0;
    }
    let eq = vec![(
        support
            .iter()
            .enumerate()
            .map(|(i, &e)| (i, program.capacities[e]))
            .collect::<Vec<_>>(),
        1.0,
    )];
    let mut ub = Vec::with_capacity(n_constraints);
    for (j, &f) in active_flows.iter().enumerate() {
        let flow = &program.flows[f];
        for tunnel in &flow.tunnels {
            let mut row: Vec<(usize, f64)> = vec![(n_y + j, 1.0)];
            for &e in tunnel {
                if edge_col[e] != usize::MAX {
                    row.push((edge_col[e], -flow.demand));
                }
            }
            ub.push((row, 0.0));
        }
    }
    let lp = LpProblem {
        num_vars: n_y + n_z,
        objective,
        eq,
        ub,
    };
    let sol = solve_lp(&lp, 200 * (n_constraints + n_y + n_z + 10)).ok()?;
    if sol.status != SimplexStatus::Optimal {
        return None;
    }
    Some(-sol.objective)
}

/// Solve the min-MLU program from uniform initial splits; see module docs.
pub fn solve_fw(program: &PathProgram, cfg: FwConfig) -> FwSolution {
    solve_fw_warm(program, None, cfg)
}

/// Solve the min-MLU program, optionally warm-starting from `init` splits
/// (e.g. the previous snapshot's optimum — traffic is temporally
/// correlated, so warm starts certify in far fewer iterations).
///
/// Algorithm: mirror descent on the softmax-smoothed MLU over the product
/// of per-flow simplices, with temperature continuation (the smoothing
/// sharpens geometrically). Every iteration yields a naive dual bound; a
/// restricted-dual LP (exact simplex on the bottleneck support) is solved
/// periodically for a certified bound, and the solve stops at the target
/// relative gap.
pub fn solve_fw_warm(program: &PathProgram, init: Option<&[f64]>, cfg: FwConfig) -> FwSolution {
    let nt = program.num_tunnels();
    let total_demand: f64 = program.flows.iter().map(|f| f.demand).sum();
    let mut splits = match init {
        Some(x) if program.splits_are_valid(x, 1e-6) => program.normalize_splits(x),
        _ => program.uniform_splits(),
    };
    if nt == 0 || total_demand <= 0.0 {
        let mlu = if nt == 0 { 0.0 } else { program.mlu(&splits) };
        return FwSolution {
            mlu,
            lower_bound: mlu,
            splits,
            iters: 0,
            gap: 0.0,
        };
    }

    let caps = &program.capacities;
    let m = program.num_edges;
    let mut loads = program.loads(&splits);
    let mut best_ub = f64::INFINITY;
    let mut best_splits = splits.clone();
    let mut best_lb: f64 = 0.0;

    // temperature continuation: eta doubles every `phase_len` iterations
    let phase_len = 150usize;
    let eta_max = (2.0f64 * (m as f64 + 2.0).ln() / cfg.tol).max(cfg.eta0);
    let mut step = 0.5f64;
    let mut iters = 0usize;
    let mut g = vec![0.0f64; nt];
    let mut utils = vec![0.0f64; m];

    for t in 0..cfg.max_iters {
        iters = t + 1;
        // --- utilizations of the current iterate ---
        let mut u_max: f64 = 0.0;
        for e in 0..m {
            let u = if caps[e] > 0.0 {
                loads[e] / caps[e]
            } else if loads[e] > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            utils[e] = u;
            if u > u_max {
                u_max = u;
            }
        }
        if u_max < best_ub {
            best_ub = u_max;
            best_splits = splits.clone();
        }
        if u_max <= 0.0 {
            best_lb = 0.0;
            best_ub = 0.0;
            break;
        }

        // --- smoothing temperature (relative to u_max) ---
        // lint: allow(as-cast) — powi takes i32; t is a small iteration index
        let eta = (cfg.eta0 * 2f64.powi((t / phase_len) as i32)).min(eta_max);
        let scale = if u_max.is_finite() { u_max } else { 1.0 };
        let beta = eta / scale.max(1e-30);

        // softmax weights over edges
        let mut p = vec![0.0f64; m];
        let mut psum = 0.0;
        for e in 0..m {
            let z = beta * (utils[e].min(1e30) - scale.min(1e30));
            let w = if z < -40.0 { 0.0 } else { z.exp() };
            p[e] = w;
            psum += w;
        }
        for w in p.iter_mut() {
            *w /= psum;
        }

        // --- per-tunnel gradient + naive dual bound ---
        let price = |e: usize| p[e] / caps[e].max(1e-12);
        let mut lb = 0.0f64;
        let mut idx = 0usize;
        for flow in &program.flows {
            let mut best_cost = f64::INFINITY;
            for (k, tunnel) in flow.tunnels.iter().enumerate() {
                let cost: f64 = tunnel.iter().map(|&e| price(e)).sum();
                g[idx + k] = flow.demand * cost;
                if cost < best_cost {
                    best_cost = cost;
                }
            }
            if best_cost.is_finite() {
                lb += flow.demand * best_cost;
            }
            idx += flow.tunnels.len();
        }
        if lb > best_lb {
            best_lb = lb;
        }

        // --- certification ---
        let mut gap = (best_ub - best_lb) / best_lb.max(1e-12);
        if gap > cfg.tol && (t % 200 == 199 || t + 1 == cfg.max_iters) {
            for delta in [0.02, 0.1, 0.25] {
                if let Some(rlb) = refine_dual_bound(program, &utils, delta, 50_000) {
                    if rlb > best_lb {
                        best_lb = rlb;
                    }
                }
                gap = (best_ub - best_lb) / best_lb.max(1e-12);
                if gap <= cfg.tol {
                    break;
                }
            }
        }
        if gap <= cfg.tol {
            break;
        }

        // --- mirror-descent step, candidates scored on the smoothed value ---
        let mut gscale: f64 = 0.0;
        idx = 0;
        for flow in &program.flows {
            let k = flow.tunnels.len();
            let min_g = g[idx..idx + k]
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            for v in &mut g[idx..idx + k] {
                *v -= min_g;
                if v.is_finite() && *v > gscale {
                    gscale = *v;
                }
            }
            idx += k;
        }
        if gscale <= 0.0 {
            continue;
        }
        let smoothed = |l: &[f64]| -> f64 {
            let mut mx: f64 = 0.0;
            for e in 0..m {
                let u = l[e] / caps[e].max(1e-12);
                if u > mx {
                    mx = u;
                }
            }
            let mut s = 0.0;
            for e in 0..m {
                let u = l[e] / caps[e].max(1e-12);
                let z = beta * (u - mx);
                if z > -40.0 {
                    s += z.exp();
                }
            }
            mx + s.ln() / beta
        };
        let apply_step = |mu: f64, splits: &[f64]| -> Vec<f64> {
            let mut x = Vec::with_capacity(nt);
            let mut idx = 0usize;
            for flow in &program.flows {
                let k = flow.tunnels.len();
                let mut sum = 0.0;
                for i in 0..k {
                    let gg = if g[idx + i].is_finite() {
                        g[idx + i]
                    } else {
                        gscale * 50.0
                    };
                    let z = (-mu * gg / gscale).max(-50.0);
                    let v = splits[idx + i] * z.exp();
                    x.push(v);
                    sum += v;
                }
                if sum > 1e-300 {
                    for v in &mut x[idx..idx + k] {
                        *v /= sum;
                    }
                } else {
                    for v in &mut x[idx..idx + k] {
                        *v = 1.0 / k as f64;
                    }
                }
                idx += k;
            }
            x
        };
        let cur_smoothed = smoothed(&loads);
        let mut best_cand: Option<(f64, Vec<f64>, Vec<f64>, f64)> = None;
        for mu in [step * 0.5, step, step * 2.0] {
            let x = apply_step(mu, &splits);
            let l = program.loads(&x);
            let v = smoothed(&l);
            if best_cand.as_ref().is_none_or(|(bv, _, _, _)| v < *bv) {
                best_cand = Some((v, x, l, mu));
            }
        }
        let (cand_val, cand_x, cand_loads, cand_mu) = best_cand.expect("candidates");
        if cand_val <= cur_smoothed {
            splits = cand_x;
            loads = cand_loads;
            step = cand_mu.clamp(1e-6, 1e6);
        } else {
            step = (step * 0.5).max(1e-6);
        }
    }

    // Final certification attempt from the best splits' utilizations.
    if best_ub.is_finite() && (best_ub - best_lb) / best_lb.max(1e-12) > cfg.tol {
        let loads_best = program.loads(&best_splits);
        let utils_best: Vec<f64> = loads_best
            .iter()
            .zip(caps)
            .map(|(l, c)| if *c > 0.0 { l / c } else { f64::INFINITY })
            .collect();
        for delta in [0.02, 0.1, 0.25] {
            if let Some(rlb) = refine_dual_bound(program, &utils_best, delta, 100_000) {
                if rlb > best_lb {
                    best_lb = rlb;
                }
            }
            if (best_ub - best_lb) / best_lb.max(1e-12) <= cfg.tol {
                break;
            }
        }
    }

    let gap = if best_lb > 0.0 {
        (best_ub - best_lb) / best_lb
    } else if best_ub <= 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    FwSolution {
        mlu: best_ub,
        lower_bound: best_lb,
        splits: best_splits,
        iters,
        gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FlowSpec;

    fn parallel_links() -> PathProgram {
        PathProgram {
            num_edges: 2,
            capacities: vec![10.0, 30.0],
            flows: vec![FlowSpec {
                demand: 10.0,
                tunnels: vec![vec![0], vec![1]],
            }],
        }
    }

    #[test]
    fn solves_parallel_links_to_known_optimum() {
        let sol = solve_fw(&parallel_links(), FwConfig::default());
        assert!(sol.certified(2e-3), "gap = {}", sol.gap);
        assert!((sol.mlu - 0.25).abs() < 1e-3, "mlu = {}", sol.mlu);
        assert!(sol.lower_bound <= sol.mlu + 1e-12);
    }

    #[test]
    fn shared_bottleneck() {
        // two flows share edge 0; each also has a private edge
        // caps: e0 = 10, e1 = 10, e2 = 10; demands 8 and 8
        // flow A: tunnels [e0], [e1]; flow B: tunnels [e0], [e2]
        // optimum: MLU = 16/30 = 0.5333 (spread everything evenly)
        let p = PathProgram {
            num_edges: 3,
            capacities: vec![10.0, 10.0, 10.0],
            flows: vec![
                FlowSpec {
                    demand: 8.0,
                    tunnels: vec![vec![0], vec![1]],
                },
                FlowSpec {
                    demand: 8.0,
                    tunnels: vec![vec![0], vec![2]],
                },
            ],
        };
        let sol = solve_fw(&p, FwConfig::default());
        assert!(sol.certified(2e-3), "gap = {}", sol.gap);
        assert!((sol.mlu - 16.0 / 30.0).abs() < 2e-3, "mlu = {}", sol.mlu);
    }

    #[test]
    fn zero_demand_is_trivial() {
        let mut p = parallel_links();
        p.flows[0].demand = 0.0;
        let sol = solve_fw(&p, FwConfig::default());
        assert_eq!(sol.mlu, 0.0);
        assert_eq!(sol.gap, 0.0);
    }

    #[test]
    fn returned_splits_match_reported_mlu() {
        let p = parallel_links();
        let sol = solve_fw(&p, FwConfig::default());
        assert!(p.splits_are_valid(&sol.splits, 1e-6));
        assert!((p.mlu(&sol.splits) - sol.mlu).abs() < 1e-9);
    }
}
