//! # harp-opt
//!
//! Optimal-MLU computation for the HARP reproduction — the stand-in for the
//! Gurobi oracle the paper normalizes every result against.
//!
//! Minimizing Maximum Link Utilization over a fixed tunnel set is a linear
//! program:
//!
//! ```text
//! min θ
//! s.t.  Σ_k x_{f,k} = 1                              for every flow f
//!       Σ_{(f,k): e ∈ tunnel_{f,k}} d_f x_{f,k} ≤ θ c_e   for every edge e
//!       x ≥ 0
//! ```
//!
//! Two solvers are provided and cross-validated against each other:
//!
//! * `simplex` — an exact dense two-phase primal simplex. Exact, but the
//!   tableau is `O((F + E) · (T + F + E))`, so it is reserved for
//!   small/medium instances (Abilene/GEANT scale).
//! * `fw` — a Frank–Wolfe / multiplicative-weights solver whose every
//!   iterate yields both a feasible routing (upper bound) **and** an LP dual
//!   certificate (lower bound); it terminates on a proven relative gap.
//!   Scales to the largest topologies.
//!
//! [`MluOracle`] picks a solver by instance size; [`PathProgram`] is the
//! shared instance representation (also used by `harp-core` to evaluate
//! model outputs and to rescale around failures).

mod fw;
mod oracle;
mod program;
mod simplex;

pub use fw::{solve_fw, solve_fw_warm, FwConfig, FwSolution};
pub use oracle::{MluOracle, OracleSolution};
pub use program::{FlowSpec, PathProgram};
pub use simplex::{solve_lp, LpError, LpProblem, LpSolution, SimplexStatus};
