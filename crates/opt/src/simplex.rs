//! A dense two-phase primal simplex solver.
//!
//! General form accepted:
//!
//! ```text
//! min c' x   s.t.   A_eq x = b_eq,   A_ub x <= b_ub,   x >= 0
//! ```
//!
//! with all right-hand sides nonnegative (the min-MLU LP satisfies this by
//! construction). The implementation is a classic tableau simplex with
//! Dantzig pricing and an automatic switch to Bland's rule to guarantee
//! termination; it is exact up to floating-point roundoff and is used both
//! as the optimal oracle on small instances and as the ground truth the
//! approximate solver is validated against.

/// Sparse row: list of `(column, coefficient)` plus right-hand side.
type SparseRow = (Vec<(usize, f64)>, f64);

/// An LP in the accepted general form.
#[derive(Clone, Debug, Default)]
pub struct LpProblem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Objective coefficients (length `num_vars`), minimized.
    pub objective: Vec<f64>,
    /// Equality rows (rhs must be >= 0).
    pub eq: Vec<SparseRow>,
    /// `<=` rows (rhs must be >= 0).
    pub ub: Vec<SparseRow>,
}

/// Solver outcome classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimplexStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was hit (treat as a solver failure).
    IterLimit,
}

/// A solved LP.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Outcome status.
    pub status: SimplexStatus,
    /// Objective value (meaningful only for `Optimal`).
    pub objective: f64,
    /// Primal values of the structural variables.
    pub x: Vec<f64>,
    /// Simplex pivots performed (diagnostics).
    pub pivots: usize,
}

/// Errors for malformed LPs.
#[derive(Clone, Debug, PartialEq)]
pub enum LpError {
    /// A right-hand side was negative.
    NegativeRhs {
        /// The offending rhs value.
        rhs: f64,
    },
    /// Coefficient/objective indices out of range.
    BadIndex {
        /// The offending column index.
        col: usize,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::NegativeRhs { rhs } => write!(f, "negative rhs {rhs} (not supported)"),
            LpError::BadIndex { col } => write!(f, "column {col} out of range"),
        }
    }
}

impl std::error::Error for LpError {}

const EPS: f64 = 1e-9;

struct Tableau {
    m: usize,
    ncols: usize, // structural + slack + artificial
    n_structural: usize,
    n_artificial_start: usize,
    rows: Vec<Vec<f64>>, // m rows, each ncols long
    rhs: Vec<f64>,
    basis: Vec<usize>,
    pivots: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize, obj: &mut [f64], obj_val: &mut f64) {
        self.pivots += 1;
        let p = self.rows[row][col];
        debug_assert!(p.abs() > EPS, "pivot on ~zero element");
        let inv = 1.0 / p;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        self.rhs[row] *= inv;
        let prow = self.rows[row].clone();
        let prhs = self.rhs[row];
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            if factor.abs() > 0.0 {
                for (v, pv) in self.rows[r].iter_mut().zip(&prow) {
                    *v -= factor * pv;
                }
                self.rhs[r] -= factor * prhs;
            }
        }
        let factor = obj[col];
        if factor.abs() > 0.0 {
            for (v, pv) in obj.iter_mut().zip(&prow) {
                *v -= factor * pv;
            }
            *obj_val -= factor * prhs;
        }
        self.basis[row] = col;
    }

    /// Run the simplex loop on the current canonical objective row.
    /// `allow_col` filters entering candidates.
    fn optimize(
        &mut self,
        obj: &mut [f64],
        obj_val: &mut f64,
        allow_col: impl Fn(usize) -> bool,
        max_iters: usize,
    ) -> SimplexStatus {
        let bland_after = max_iters / 2;
        for iter in 0..max_iters {
            // entering variable
            let use_bland = iter >= bland_after;
            let mut enter: Option<usize> = None;
            if use_bland {
                for j in 0..self.ncols {
                    if allow_col(j) && obj[j] < -EPS {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for j in 0..self.ncols {
                    if allow_col(j) && obj[j] < best {
                        best = obj[j];
                        enter = Some(j);
                    }
                }
            }
            let enter = match enter {
                Some(j) => j,
                None => return SimplexStatus::Optimal,
            };
            // ratio test (Bland tie-break on basis index)
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let a = self.rows[r][enter];
                if a > EPS {
                    let ratio = self.rhs[r] / a;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let (leave_row, _) = match leave {
                Some(l) => l,
                None => return SimplexStatus::Unbounded,
            };
            self.pivot(leave_row, enter, obj, obj_val);
        }
        SimplexStatus::IterLimit
    }
}

/// Solve an [`LpProblem`]. `max_iters` bounds the total pivots per phase
/// (use e.g. `50 * (rows + vars)`).
pub fn solve_lp(problem: &LpProblem, max_iters: usize) -> Result<LpSolution, LpError> {
    let n = problem.num_vars;
    if problem.objective.len() != n {
        return Err(LpError::BadIndex {
            col: problem.objective.len(),
        });
    }
    for (row, rhs) in problem.eq.iter().chain(&problem.ub) {
        if *rhs < 0.0 {
            return Err(LpError::NegativeRhs { rhs: *rhs });
        }
        for &(c, _) in row {
            if c >= n {
                return Err(LpError::BadIndex { col: c });
            }
        }
    }

    let n_eq = problem.eq.len();
    let n_ub = problem.ub.len();
    let m = n_eq + n_ub;
    if m == 0 {
        // trivially minimized at x = 0 (x >= 0, min c'x with c arbitrary —
        // unbounded if any c < 0)
        if problem.objective.iter().any(|c| *c < -EPS) {
            return Ok(LpSolution {
                status: SimplexStatus::Unbounded,
                objective: f64::NEG_INFINITY,
                x: vec![0.0; n],
                pivots: 0,
            });
        }
        return Ok(LpSolution {
            status: SimplexStatus::Optimal,
            objective: 0.0,
            x: vec![0.0; n],
            pivots: 0,
        });
    }

    let n_slack = n_ub;
    let n_art = n_eq;
    let ncols = n + n_slack + n_art;
    let mut rows = vec![vec![0.0f64; ncols]; m];
    let mut rhs = vec![0.0f64; m];
    let mut basis = vec![0usize; m];

    // equality rows first (artificial basis), then ub rows (slack basis)
    for (i, (row, b)) in problem.eq.iter().enumerate() {
        for &(c, v) in row {
            rows[i][c] += v;
        }
        rows[i][n + n_slack + i] = 1.0; // artificial
        rhs[i] = *b;
        basis[i] = n + n_slack + i;
    }
    for (i, (row, b)) in problem.ub.iter().enumerate() {
        let r = n_eq + i;
        for &(c, v) in row {
            rows[r][c] += v;
        }
        rows[r][n + i] = 1.0; // slack
        rhs[r] = *b;
        basis[r] = n + i;
    }

    let mut t = Tableau {
        m,
        ncols,
        n_structural: n,
        n_artificial_start: n + n_slack,
        rows,
        rhs,
        basis,
        pivots: 0,
    };

    // ---- Phase 1: minimize sum of artificials ----
    if n_art > 0 {
        // canonical objective row: c_j - sum over artificial-basic rows
        let mut obj = vec![0.0f64; ncols];
        for j in t.n_artificial_start..ncols {
            obj[j] = 1.0;
        }
        let mut obj_val = 0.0;
        for r in 0..n_eq {
            // basic artificial has cost 1: subtract its row
            for j in 0..ncols {
                obj[j] -= t.rows[r][j];
            }
            obj_val -= t.rhs[r];
        }
        let status = t.optimize(&mut obj, &mut obj_val, |_| true, max_iters);
        if status == SimplexStatus::IterLimit {
            return Ok(LpSolution {
                status,
                objective: f64::NAN,
                x: vec![0.0; n],
                pivots: t.pivots,
            });
        }
        // phase-1 objective value = -obj_val (we tracked z as negative)
        let phase1 = -obj_val;
        if phase1 > 1e-6 {
            return Ok(LpSolution {
                status: SimplexStatus::Infeasible,
                objective: f64::NAN,
                x: vec![0.0; n],
                pivots: t.pivots,
            });
        }
        // Drive remaining artificials out of the basis when possible.
        for r in 0..t.m {
            if t.basis[r] >= t.n_artificial_start {
                if let Some(col) = (0..t.n_artificial_start).find(|&j| t.rows[r][j].abs() > 1e-7) {
                    let mut dummy_obj = vec![0.0; ncols];
                    let mut dummy_val = 0.0;
                    t.pivot(r, col, &mut dummy_obj, &mut dummy_val);
                }
                // else: redundant row; leaving the zero artificial basic is
                // harmless (its value is 0 and it never re-enters).
            }
        }
    }

    // ---- Phase 2: original objective ----
    let mut obj = vec![0.0f64; ncols];
    obj[..n].copy_from_slice(&problem.objective);
    let mut obj_val = 0.0;
    // canonicalize w.r.t. the current basis
    for r in 0..t.m {
        let b = t.basis[r];
        let cb = if b < n { problem.objective[b] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..ncols {
                obj[j] -= cb * t.rows[r][j];
            }
            obj_val -= cb * t.rhs[r];
        }
    }
    let art_start = t.n_artificial_start;
    let status = t.optimize(&mut obj, &mut obj_val, |j| j < art_start, max_iters);

    let mut x = vec![0.0f64; n];
    for r in 0..t.m {
        if t.basis[r] < t.n_structural {
            x[t.basis[r]] = t.rhs[r].max(0.0);
        }
    }
    let objective: f64 = problem.objective.iter().zip(&x).map(|(c, xi)| c * xi).sum();
    Ok(LpSolution {
        status,
        objective,
        x,
        pivots: t.pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_max_as_min() {
        // max x1 + 2 x2  s.t. x1 + x2 <= 4, x2 <= 3  → x = (1, 3), obj 7
        let lp = LpProblem {
            num_vars: 2,
            objective: vec![-1.0, -2.0],
            eq: vec![],
            ub: vec![(vec![(0, 1.0), (1, 1.0)], 4.0), (vec![(1, 1.0)], 3.0)],
        };
        let sol = solve_lp(&lp, 1000).unwrap();
        assert_eq!(sol.status, SimplexStatus::Optimal);
        assert!((sol.objective + 7.0).abs() < 1e-8);
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x1 + x2 s.t. x1 + 2 x2 = 4 → x = (0, 2), obj 2
        let lp = LpProblem {
            num_vars: 2,
            objective: vec![1.0, 1.0],
            eq: vec![(vec![(0, 1.0), (1, 2.0)], 4.0)],
            ub: vec![],
        };
        let sol = solve_lp(&lp, 1000).unwrap();
        assert_eq!(sol.status, SimplexStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-8);
        assert!((sol.x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn detects_infeasible() {
        // x1 = 2 and x1 <= 1
        let lp = LpProblem {
            num_vars: 1,
            objective: vec![0.0],
            eq: vec![(vec![(0, 1.0)], 2.0)],
            ub: vec![(vec![(0, 1.0)], 1.0)],
        };
        let sol = solve_lp(&lp, 1000).unwrap();
        assert_eq!(sol.status, SimplexStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x1, no constraints binding x1
        let lp = LpProblem {
            num_vars: 2,
            objective: vec![-1.0, 0.0],
            eq: vec![],
            ub: vec![(vec![(1, 1.0)], 1.0)],
        };
        let sol = solve_lp(&lp, 1000).unwrap();
        assert_eq!(sol.status, SimplexStatus::Unbounded);
    }

    #[test]
    fn rejects_negative_rhs() {
        let lp = LpProblem {
            num_vars: 1,
            objective: vec![1.0],
            eq: vec![],
            ub: vec![(vec![(0, 1.0)], -1.0)],
        };
        assert!(matches!(
            solve_lp(&lp, 100),
            Err(LpError::NegativeRhs { .. })
        ));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // multiple redundant constraints through the origin
        let lp = LpProblem {
            num_vars: 3,
            objective: vec![-1.0, -1.0, -1.0],
            eq: vec![],
            ub: vec![
                (vec![(0, 1.0), (1, 1.0)], 1.0),
                (vec![(0, 1.0), (1, 1.0), (2, 0.0)], 1.0),
                (vec![(2, 1.0)], 0.0),
                (vec![(0, 1.0), (2, 1.0)], 1.0),
            ],
        };
        let sol = solve_lp(&lp, 10_000).unwrap();
        assert_eq!(sol.status, SimplexStatus::Optimal);
        assert!((sol.objective + 1.0).abs() < 1e-8);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x1 + x2 = 2 twice
        let lp = LpProblem {
            num_vars: 2,
            objective: vec![1.0, 2.0],
            eq: vec![
                (vec![(0, 1.0), (1, 1.0)], 2.0),
                (vec![(0, 1.0), (1, 1.0)], 2.0),
            ],
            ub: vec![],
        };
        let sol = solve_lp(&lp, 1000).unwrap();
        assert_eq!(sol.status, SimplexStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-8); // all on x1
    }
}
