//! The optimal-MLU oracle: LP construction from a [`PathProgram`] and a
//! size-based choice between the exact simplex and the certified
//! Frank–Wolfe solver.

use crate::fw::{solve_fw, FwConfig};
use crate::program::PathProgram;
use crate::simplex::{solve_lp, LpProblem, SimplexStatus};

/// An optimal (or certified near-optimal) solution.
#[derive(Clone, Debug)]
pub struct OracleSolution {
    /// The optimal MLU (exact for the simplex path; within the configured
    /// gap for the Frank–Wolfe path).
    pub mlu: f64,
    /// Optimal splits.
    pub splits: Vec<f64>,
    /// True when produced by the exact simplex.
    pub exact: bool,
}

/// Chooses and runs a solver for min-MLU path programs.
///
/// Routing heuristic: the dense two-phase simplex costs roughly
/// `pivots x rows x cols ~ 2 (F+E)^2 (T+F+E)` flops; instances under
/// [`MluOracle::exact_cost_limit`] use it (it is *exact* and, empirically,
/// much faster than first-order methods up to GEANT/KDL-small scale), and
/// only genuinely large instances fall back to the certified Frank–Wolfe
/// solver.
#[derive(Clone, Copy, Debug)]
pub struct MluOracle {
    /// Estimated-flop ceiling for the exact simplex path.
    pub exact_cost_limit: f64,
    /// Gap tolerance for the approximate path.
    pub fw_tol: f64,
}

impl Default for MluOracle {
    fn default() -> Self {
        MluOracle {
            exact_cost_limit: 3e10,
            fw_tol: 1e-3,
        }
    }
}

/// Build the min-MLU LP for `program`. Variable layout: tunnels first (flat,
/// grouped by flow), then θ as the last variable.
pub fn build_mlu_lp(program: &PathProgram) -> LpProblem {
    let nt = program.num_tunnels();
    let theta = nt;
    let mut objective = vec![0.0f64; nt + 1];
    objective[theta] = 1.0;

    let mut eq = Vec::with_capacity(program.num_flows());
    let mut idx = 0usize;
    // per-edge accumulation of d_f x_{f,k} coefficients
    let mut edge_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); program.num_edges];
    for flow in &program.flows {
        let k = flow.tunnels.len();
        let row: Vec<(usize, f64)> = (0..k).map(|i| (idx + i, 1.0)).collect();
        eq.push((row, 1.0));
        for (i, tunnel) in flow.tunnels.iter().enumerate() {
            for &e in tunnel {
                edge_rows[e].push((idx + i, flow.demand));
            }
        }
        idx += k;
    }
    // Normalize each edge row by its capacity (`Σ (d/c) x - θ <= 0`): the
    // θ column stays ±1 regardless of how small a failed link's capacity
    // floor is, which keeps the tableau well-conditioned under failures.
    let ub = edge_rows
        .into_iter()
        .enumerate()
        .filter(|(_, row)| !row.is_empty())
        .map(|(e, row)| {
            let c = program.capacities[e].max(1e-12);
            let mut row: Vec<(usize, f64)> = row.into_iter().map(|(j, v)| (j, v / c)).collect();
            row.push((theta, -1.0));
            (row, 0.0)
        })
        .collect();

    LpProblem {
        num_vars: nt + 1,
        objective,
        eq,
        ub,
    }
}

impl MluOracle {
    /// Solve `program` to (near-)optimality.
    ///
    /// Panics if the exact solver fails on an instance routed to it (this
    /// indicates a bug — the LP is always feasible and bounded when every
    /// flow has a tunnel and demands are finite).
    pub fn solve(&self, program: &PathProgram) -> OracleSolution {
        self.solve_warm(program, None)
    }

    /// Like [`MluOracle::solve`]; a warm start (previous optimum of a
    /// similar instance) accelerates the Frank–Wolfe path and is ignored by
    /// the exact path.
    pub fn solve_warm(&self, program: &PathProgram, warm: Option<&[f64]>) -> OracleSolution {
        if self.estimated_exact_cost(program) <= self.exact_cost_limit {
            // exact first; fall back to the certified first-order solver on
            // the (rare) numerically-degenerate instance
            if let Some(sol) = self.try_exact(program) {
                return sol;
            }
            self.solve_approx(program)
        } else {
            let sol = crate::fw::solve_fw_warm(
                program,
                warm,
                FwConfig {
                    tol: self.fw_tol,
                    ..Default::default()
                },
            );
            OracleSolution {
                mlu: sol.mlu,
                splits: sol.splits,
                exact: false,
            }
        }
    }

    /// Rough flop estimate for the dense simplex on this instance.
    pub fn estimated_exact_cost(&self, program: &PathProgram) -> f64 {
        let rows = (program.num_flows() + program.num_edges) as f64;
        let cols = (program.num_tunnels() + program.num_flows() + program.num_edges) as f64;
        2.0 * rows * rows * cols
    }

    /// Force the exact simplex path. Panics when the simplex fails (use
    /// [`MluOracle::solve`] for automatic fallback).
    pub fn solve_exact(&self, program: &PathProgram) -> OracleSolution {
        self.try_exact(program)
            .expect("min-MLU LP must be solvable by the simplex")
    }

    /// Exact simplex attempt; `None` on numerical failure.
    fn try_exact(&self, program: &PathProgram) -> Option<OracleSolution> {
        let lp = build_mlu_lp(program);
        let iters = 200 * (lp.eq.len() + lp.ub.len() + 10);
        let sol = solve_lp(&lp, iters).ok()?;
        if sol.status != SimplexStatus::Optimal {
            return None;
        }
        let nt = program.num_tunnels();
        let splits = program.normalize_splits(&sol.x[..nt]);
        // Evaluate MLU from the splits (robust to tiny simplex roundoff).
        let mlu = program.mlu(&splits);
        Some(OracleSolution {
            mlu,
            splits,
            exact: true,
        })
    }

    /// MaxFlow companion (paper §7 future work): maximize total *delivered*
    /// traffic over the fixed tunnels subject to link capacities, allowing
    /// partial admission (`Σ_k a_fk <= d_f`). Returns `(throughput,
    /// per-tunnel allocations)`. Exact (simplex); intended for the same
    /// instance sizes as [`MluOracle::solve_exact`].
    pub fn solve_max_throughput(&self, program: &PathProgram) -> (f64, Vec<f64>) {
        let nt = program.num_tunnels();
        // min -Σ a  s.t.  per-flow Σ_k a <= d_f, per-edge loads <= cap
        let objective = vec![-1.0f64; nt];
        let mut ub = Vec::with_capacity(program.num_flows() + program.num_edges);
        let mut edge_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); program.num_edges];
        let mut idx = 0usize;
        for flow in &program.flows {
            let k = flow.tunnels.len();
            ub.push(((idx..idx + k).map(|i| (i, 1.0)).collect(), flow.demand));
            for (i, tunnel) in flow.tunnels.iter().enumerate() {
                for &e in tunnel {
                    edge_rows[e].push((idx + i, 1.0));
                }
            }
            idx += k;
        }
        for (e, row) in edge_rows.into_iter().enumerate() {
            if !row.is_empty() {
                ub.push((row, program.capacities[e].max(0.0)));
            }
        }
        let lp = LpProblem {
            num_vars: nt,
            objective,
            eq: vec![],
            ub,
        };
        let sol = solve_lp(&lp, 200 * (program.num_flows() + program.num_edges + 10))
            .expect("throughput LP well-formed");
        assert_eq!(sol.status, SimplexStatus::Optimal, "throughput LP solvable");
        (-sol.objective, sol.x)
    }

    /// Force the certified Frank–Wolfe path.
    pub fn solve_approx(&self, program: &PathProgram) -> OracleSolution {
        let sol = solve_fw(
            program,
            FwConfig {
                tol: self.fw_tol,
                ..Default::default()
            },
        );
        OracleSolution {
            mlu: sol.mlu,
            splits: sol.splits,
            exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FlowSpec;
    use harp_paths::TunnelSet;
    use harp_topology::Topology;
    use harp_traffic::TrafficMatrix;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn parallel_links() -> PathProgram {
        PathProgram {
            num_edges: 2,
            capacities: vec![10.0, 30.0],
            flows: vec![FlowSpec {
                demand: 10.0,
                tunnels: vec![vec![0], vec![1]],
            }],
        }
    }

    #[test]
    fn exact_solves_parallel_links() {
        let o = MluOracle::default();
        let sol = o.solve_exact(&parallel_links());
        assert!(sol.exact);
        assert!((sol.mlu - 0.25).abs() < 1e-8, "mlu = {}", sol.mlu);
    }

    #[test]
    fn exact_and_fw_agree_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..8 {
            // random ring topology with chords and random demands
            let n = 6;
            let mut topo = Topology::new(n);
            for i in 0..n {
                topo.add_link(i, (i + 1) % n, rng.gen_range(5.0..20.0))
                    .unwrap();
            }
            topo.add_link(0, 3, rng.gen_range(5.0..20.0)).unwrap();
            topo.add_link(1, 4, rng.gen_range(5.0..20.0)).unwrap();

            let edge_nodes: Vec<usize> = (0..n).collect();
            let tunnels = TunnelSet::k_shortest(&topo, &edge_nodes, 3, 0.0);
            let mut tm = TrafficMatrix::zeros(n);
            for s in 0..n {
                for t in 0..n {
                    if s != t && rng.gen::<f64>() < 0.6 {
                        tm.set_demand(s, t, rng.gen_range(0.5..4.0));
                    }
                }
            }
            let prog = PathProgram::new(&topo, &tunnels, &tm);
            let o = MluOracle::default();
            let exact = o.solve_exact(&prog);
            let approx = o.solve_approx(&prog);
            let rel = (approx.mlu - exact.mlu).abs() / exact.mlu.max(1e-9);
            assert!(
                rel < 5e-3,
                "trial {trial}: exact {} vs fw {} (rel {rel})",
                exact.mlu,
                approx.mlu
            );
            // FW never reports below the true optimum (it is primal feasible)
            assert!(approx.mlu >= exact.mlu - 1e-6);
        }
    }

    #[test]
    fn oracle_beats_uniform_splits() {
        let p = parallel_links();
        let o = MluOracle::default();
        let sol = o.solve(&p);
        assert!(sol.mlu <= p.mlu(&p.uniform_splits()) + 1e-9);
    }

    #[test]
    fn max_throughput_parallel_links() {
        // caps 10 + 30 = 40 total; demand 10 fits entirely
        let o = MluOracle::default();
        let (tp, alloc) = o.solve_max_throughput(&parallel_links());
        assert!((tp - 10.0).abs() < 1e-8, "tp = {tp}");
        assert!((alloc.iter().sum::<f64>() - 10.0).abs() < 1e-8);
        // oversubscribed: demand 100 > 40 capacity
        let mut p = parallel_links();
        p.flows[0].demand = 100.0;
        let (tp, alloc) = o.solve_max_throughput(&p);
        assert!((tp - 40.0).abs() < 1e-8, "tp = {tp}");
        assert!(alloc[0] <= 10.0 + 1e-9 && alloc[1] <= 30.0 + 1e-9);
    }

    #[test]
    fn size_routing() {
        let p = parallel_links();
        let o = MluOracle {
            exact_cost_limit: 0.0,
            fw_tol: 1e-3,
        };
        assert!(!o.solve(&p).exact);
        let o2 = MluOracle::default();
        assert!(o2.solve(&p).exact);
    }
}
