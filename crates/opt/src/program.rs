//! The shared path-routing instance: capacities, flows with demands, and
//! each flow's tunnels as edge lists.

use harp_paths::TunnelSet;
use harp_topology::{EdgeId, Topology};
use harp_traffic::TrafficMatrix;

/// One flow: a demand and the tunnels it may use.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Offered demand (same units as capacities).
    pub demand: f64,
    /// Tunnels, each a list of directed edge ids.
    pub tunnels: Vec<Vec<EdgeId>>,
}

/// A complete min-MLU instance over fixed paths.
#[derive(Clone, Debug)]
pub struct PathProgram {
    /// Number of directed edges.
    pub num_edges: usize,
    /// Capacity per edge (zero-capacity edges should be floored by the
    /// caller, e.g. to `1e-4`, as the paper does).
    pub capacities: Vec<f64>,
    /// Flows with demands and tunnels.
    pub flows: Vec<FlowSpec>,
}

impl PathProgram {
    /// Build from a topology, its tunnel set, and a traffic matrix.
    /// Flows with zero demand are kept (their splits are unconstrained but
    /// harmless) so tunnel indexing matches the neural models'.
    pub fn new(topo: &Topology, tunnels: &TunnelSet, tm: &TrafficMatrix) -> Self {
        assert_eq!(
            tm.num_nodes(),
            topo.num_nodes(),
            "traffic matrix does not match topology"
        );
        let flows = tunnels
            .flows()
            .iter()
            .enumerate()
            .map(|(f, &(s, t))| FlowSpec {
                demand: tm.demand(s, t),
                tunnels: tunnels.tunnels_of(f).iter().map(|p| p.0.clone()).collect(),
            })
            .collect();
        PathProgram {
            num_edges: topo.num_edges(),
            capacities: topo.capacities(),
            flows,
        }
    }

    /// Total number of tunnels across flows.
    pub fn num_tunnels(&self) -> usize {
        self.flows.iter().map(|f| f.tunnels.len()).sum()
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Flat tunnel index of tunnel `k` of flow `f`.
    pub fn tunnel_offset(&self, f: usize) -> usize {
        self.flows[..f].iter().map(|fl| fl.tunnels.len()).sum()
    }

    /// Per-edge load induced by `splits` (flat per-tunnel fractions,
    /// grouped by flow). Panics on length mismatch.
    pub fn loads(&self, splits: &[f64]) -> Vec<f64> {
        assert_eq!(splits.len(), self.num_tunnels(), "splits length");
        let mut loads = vec![0.0f64; self.num_edges];
        let mut idx = 0usize;
        for flow in &self.flows {
            for tunnel in &flow.tunnels {
                let traffic = flow.demand * splits[idx];
                for &e in tunnel {
                    loads[e] += traffic;
                }
                idx += 1;
            }
        }
        loads
    }

    /// Maximum link utilization induced by `splits`.
    pub fn mlu(&self, splits: &[f64]) -> f64 {
        let loads = self.loads(splits);
        loads
            .iter()
            .zip(&self.capacities)
            .map(|(l, c)| if *c > 0.0 { l / c } else { f64::INFINITY })
            .fold(0.0, f64::max)
    }

    /// Normalize raw per-tunnel weights into per-flow fractions summing to
    /// one (uniform when a flow's weights sum to ~zero).
    pub fn normalize_splits(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.num_tunnels(), "splits length");
        let mut out = raw.to_vec();
        let mut idx = 0usize;
        for flow in &self.flows {
            let k = flow.tunnels.len();
            let sum: f64 = out[idx..idx + k].iter().sum();
            if sum > 1e-12 {
                for v in &mut out[idx..idx + k] {
                    *v /= sum;
                }
            } else {
                for v in &mut out[idx..idx + k] {
                    *v = 1.0 / k as f64;
                }
            }
            idx += k;
        }
        out
    }

    /// Uniform splits (every tunnel of a flow gets `1/k`).
    pub fn uniform_splits(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_tunnels());
        for flow in &self.flows {
            let k = flow.tunnels.len();
            out.extend(std::iter::repeat_n(1.0 / k as f64, k));
        }
        out
    }

    /// Verify that `splits` is a valid per-flow distribution (within tol).
    pub fn splits_are_valid(&self, splits: &[f64], tol: f64) -> bool {
        if splits.len() != self.num_tunnels() {
            return false;
        }
        if splits.iter().any(|s| *s < -tol || !s.is_finite()) {
            return false;
        }
        let mut idx = 0usize;
        for flow in &self.flows {
            let k = flow.tunnels.len();
            let sum: f64 = splits[idx..idx + k].iter().sum();
            if (sum - 1.0).abs() > tol {
                return false;
            }
            idx += k;
        }
        true
    }

    /// Redistribute traffic away from tunnels crossing edges whose capacity
    /// is at or below `failed_threshold`, proportionally to the surviving
    /// tunnels' splits (the paper's *local rescaling* applied to DOTE/TEAL
    /// under complete link failures). Flows with no surviving tunnel keep
    /// their original splits (their traffic is stranded, yielding a huge
    /// MLU — as in the paper's "MLU of ∞" observation).
    pub fn rescale_around_failures(&self, splits: &[f64], failed_threshold: f64) -> Vec<f64> {
        assert_eq!(splits.len(), self.num_tunnels(), "splits length");
        let failed_edge: Vec<bool> = self
            .capacities
            .iter()
            .map(|c| *c <= failed_threshold)
            .collect();
        let mut out = splits.to_vec();
        let mut idx = 0usize;
        for flow in &self.flows {
            let k = flow.tunnels.len();
            let alive: Vec<bool> = flow
                .tunnels
                .iter()
                .map(|t| t.iter().all(|&e| !failed_edge[e]))
                .collect();
            let alive_mass: f64 = (0..k).filter(|&i| alive[i]).map(|i| splits[idx + i]).sum();
            let any_alive = alive.iter().any(|a| *a);
            if any_alive {
                if alive_mass > 1e-12 {
                    for i in 0..k {
                        out[idx + i] = if alive[i] {
                            splits[idx + i] / alive_mass
                        } else {
                            0.0
                        };
                    }
                } else {
                    // surviving tunnels had no mass: spread uniformly
                    let n_alive = alive.iter().filter(|a| **a).count() as f64;
                    for i in 0..k {
                        out[idx + i] = if alive[i] { 1.0 / n_alive } else { 0.0 };
                    }
                }
            }
            idx += k;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two nodes, two parallel links (cap 10 and 30), one flow of 10.
    pub(crate) fn parallel_links() -> PathProgram {
        PathProgram {
            num_edges: 2,
            capacities: vec![10.0, 30.0],
            flows: vec![FlowSpec {
                demand: 10.0,
                tunnels: vec![vec![0], vec![1]],
            }],
        }
    }

    #[test]
    fn loads_and_mlu() {
        let p = parallel_links();
        let mlu = p.mlu(&[0.5, 0.5]);
        assert!((mlu - 0.5).abs() < 1e-12); // 5/10
        let opt = p.mlu(&[0.25, 0.75]);
        assert!((opt - 0.25).abs() < 1e-12); // equalized
    }

    #[test]
    fn normalize_and_validate() {
        let p = parallel_links();
        let norm = p.normalize_splits(&[2.0, 6.0]);
        assert!((norm[0] - 0.25).abs() < 1e-12);
        assert!(p.splits_are_valid(&norm, 1e-9));
        assert!(!p.splits_are_valid(&[0.9, 0.9], 1e-9));
        let uni = p.uniform_splits();
        assert_eq!(uni, vec![0.5, 0.5]);
        // zero weights become uniform
        let z = p.normalize_splits(&[0.0, 0.0]);
        assert_eq!(z, vec![0.5, 0.5]);
    }

    #[test]
    fn rescaling_moves_mass_off_failed_links() {
        let mut p = parallel_links();
        p.capacities[0] = 1e-5; // link 0 failed
        let r = p.rescale_around_failures(&[0.6, 0.4], 1e-4);
        assert_eq!(r, vec![0.0, 1.0]);
        // no surviving tunnel: splits unchanged
        let mut p2 = parallel_links();
        p2.capacities = vec![1e-5, 1e-5];
        let r2 = p2.rescale_around_failures(&[0.6, 0.4], 1e-4);
        assert_eq!(r2, vec![0.6, 0.4]);
    }

    #[test]
    fn zero_mass_survivors_get_uniform() {
        let p = PathProgram {
            num_edges: 3,
            capacities: vec![1e-5, 10.0, 10.0],
            flows: vec![FlowSpec {
                demand: 1.0,
                tunnels: vec![vec![0], vec![1], vec![2]],
            }],
        };
        let r = p.rescale_around_failures(&[1.0, 0.0, 0.0], 1e-4);
        assert_eq!(r, vec![0.0, 0.5, 0.5]);
    }
}
