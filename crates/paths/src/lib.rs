//! # harp-paths
//!
//! Tunnel machinery for the HARP reproduction: deterministic Dijkstra,
//! Yen's k-shortest simple paths, and [`TunnelSet`] — the per-flow tunnel
//! lists that TE schemes split traffic over. Includes the deterministic
//! tunnel-reordering used by the paper's invariance experiments (Fig 7).

mod dijkstra;
mod tunnels;
mod yen;

pub use dijkstra::{shortest_path, PathFilter};
pub use tunnels::{tunnel_churn, FlowId, TunnelId, TunnelSet};
pub use yen::k_shortest_paths;

use harp_topology::{EdgeId, NodeId, Topology, TopologyError};

/// A simple path, stored as the sequence of directed edge ids it traverses.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path(pub Vec<EdgeId>);

impl Path {
    /// Number of edges (hops).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for an empty edge list.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The node sequence of this path on `topo` (len = hops + 1).
    /// Panics on an empty or non-contiguous path; see [`Path::try_nodes`]
    /// for the fallible form.
    pub fn nodes(&self, topo: &Topology) -> Vec<NodeId> {
        self.try_nodes(topo).expect("invalid path")
    }

    /// The node sequence of this path on `topo` (len = hops + 1), or a
    /// [`TopologyError`] when the path is empty, references an edge id the
    /// topology does not have, or its edges are not contiguous.
    pub fn try_nodes(&self, topo: &Topology) -> Result<Vec<NodeId>, TopologyError> {
        let first = *self.0.first().ok_or(TopologyError::EmptyPath)?;
        let mut cur = topo.try_edge(first)?.src;
        let mut out = Vec::with_capacity(self.0.len() + 1);
        out.push(cur);
        for &e in &self.0 {
            let edge = topo.try_edge(e)?;
            if edge.src != cur {
                return Err(TopologyError::NonContiguousPath { edge: e });
            }
            cur = edge.dst;
            out.push(cur);
        }
        Ok(out)
    }

    /// Validate contiguity and endpoints on `topo`.
    pub fn is_valid(&self, topo: &Topology, src: NodeId, dst: NodeId) -> bool {
        if self.0.is_empty() {
            return false;
        }
        if topo.edge(self.0[0]).src != src {
            return false;
        }
        let mut cur = src;
        for &e in &self.0 {
            let edge = topo.edge(e);
            if edge.src != cur {
                return false;
            }
            cur = edge.dst;
        }
        cur == dst
    }

    /// True when the path visits no node twice (simple path).
    pub fn is_simple(&self, topo: &Topology) -> bool {
        let nodes = self.nodes(topo);
        let mut seen = std::collections::HashSet::new();
        nodes.iter().all(|n| seen.insert(*n))
    }
}
