//! Tunnel sets: the per-flow path lists TE schemes split traffic over.

use harp_topology::{EdgeId, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::yen::k_shortest_paths;
use crate::Path;

/// Index of a flow (an ordered source/destination pair) in a [`TunnelSet`].
pub type FlowId = usize;
/// Global tunnel index in the flattened tunnel order of a [`TunnelSet`].
pub type TunnelId = usize;

/// The tunnels of every flow between edge nodes.
///
/// Tunnel order *within a flow* is meaningful to order-sensitive baselines
/// (TEAL/DOTE); [`TunnelSet::shuffled`] produces the reordered variant used
/// by the paper's Fig 7 experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct TunnelSet {
    flows: Vec<(NodeId, NodeId)>,
    tunnels: Vec<Vec<Path>>,
}

impl TunnelSet {
    /// Compute `k` shortest-path tunnels for every ordered pair of
    /// `edge_nodes` on `topo` (edges with capacity <= `cap_threshold` are
    /// excluded). Flows with no path are skipped.
    pub fn k_shortest(
        topo: &Topology,
        edge_nodes: &[NodeId],
        k: usize,
        cap_threshold: f64,
    ) -> Self {
        let mut flows = Vec::new();
        let mut tunnels = Vec::new();
        for &s in edge_nodes {
            for &t in edge_nodes {
                if s == t {
                    continue;
                }
                let ps = k_shortest_paths(topo, s, t, k, cap_threshold);
                if !ps.is_empty() {
                    flows.push((s, t));
                    tunnels.push(ps);
                }
            }
        }
        TunnelSet { flows, tunnels }
    }

    /// Construct from explicit parts (for tests and loaders). Panics when
    /// lengths differ or a flow has no tunnels.
    pub fn from_parts(flows: Vec<(NodeId, NodeId)>, tunnels: Vec<Vec<Path>>) -> Self {
        assert_eq!(flows.len(), tunnels.len(), "flows/tunnels length");
        assert!(
            tunnels.iter().all(|t| !t.is_empty()),
            "every flow needs at least one tunnel"
        );
        TunnelSet { flows, tunnels }
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total number of tunnels across flows.
    pub fn num_tunnels(&self) -> usize {
        self.tunnels.iter().map(Vec::len).sum()
    }

    /// The ordered (src, dst) pairs.
    pub fn flows(&self) -> &[(NodeId, NodeId)] {
        &self.flows
    }

    /// Tunnels of flow `f`, in order.
    pub fn tunnels_of(&self, f: FlowId) -> &[Path] {
        &self.tunnels[f]
    }

    /// Index of the flow `(s, t)`, if present.
    pub fn flow_index(&self, s: NodeId, t: NodeId) -> Option<FlowId> {
        self.flows.iter().position(|&(a, b)| (a, b) == (s, t))
    }

    /// Longest tunnel length (in hops) across all flows.
    pub fn max_tunnel_len(&self) -> usize {
        self.tunnels
            .iter()
            .flat_map(|ts| ts.iter().map(Path::len))
            .max()
            .unwrap_or(0)
    }

    /// Iterate `(flow, tunnel-in-flow index, path)` in flat global order.
    pub fn iter_flat(&self) -> impl Iterator<Item = (FlowId, usize, &Path)> {
        self.tunnels
            .iter()
            .enumerate()
            .flat_map(|(f, ts)| ts.iter().enumerate().map(move |(i, p)| (f, i, p)))
    }

    /// A copy with the order of tunnels within each flow permuted by `rng`
    /// (flows and path contents unchanged) — the Fig 7 perturbation.
    pub fn shuffled<R: Rng>(&self, rng: &mut R) -> TunnelSet {
        let tunnels = self
            .tunnels
            .iter()
            .map(|ts| {
                let mut t = ts.clone();
                t.shuffle(rng);
                t
            })
            .collect();
        TunnelSet {
            flows: self.flows.clone(),
            tunnels,
        }
    }

    /// For each directed edge of `topo`, the flat tunnel ids traversing it.
    pub fn tunnels_per_edge(&self, topo: &Topology) -> Vec<Vec<TunnelId>> {
        let mut per_edge: Vec<Vec<TunnelId>> = vec![Vec::new(); topo.num_edges()];
        for (tid, (_, _, path)) in self.iter_flat().enumerate() {
            for &e in &path.0 {
                per_edge[e].push(tid);
            }
        }
        per_edge
    }

    /// All tunnels as node sequences (comparable across topologies that
    /// share a node-id universe). Used for tunnel-churn analysis (Fig 3c).
    pub fn node_sequences(&self, topo: &Topology) -> Vec<Vec<NodeId>> {
        self.iter_flat().map(|(_, _, p)| p.nodes(topo)).collect()
    }

    /// True when every tunnel avoids the directed edge `e`.
    pub fn avoids_edge(&self, e: EdgeId) -> bool {
        self.iter_flat().all(|(_, _, p)| !p.0.contains(&e))
    }

    /// The tunnel set with every tunnel traversing any edge in `failed`
    /// removed; flows that lose all of their tunnels are dropped entirely.
    /// Flow order and within-flow tunnel order are preserved, so pruning is
    /// idempotent and composes: pruning `{a}` then `{b}` equals pruning
    /// `{a, b}` from the original set (the incremental-update invariant the
    /// serving layer relies on under link failures).
    pub fn without_edges(&self, failed: &std::collections::BTreeSet<EdgeId>) -> TunnelSet {
        let mut flows = Vec::new();
        let mut tunnels = Vec::new();
        for (f, &flow) in self.flows.iter().enumerate() {
            let surviving: Vec<Path> = self.tunnels[f]
                .iter()
                .filter(|p| p.0.iter().all(|e| !failed.contains(e)))
                .cloned()
                .collect();
            if !surviving.is_empty() {
                flows.push(flow);
                tunnels.push(surviving);
            }
        }
        TunnelSet { flows, tunnels }
    }

    /// The same tunnels on a node-relabeled copy of the topology: node `i`
    /// of `old_topo` is node `perm[i]` of `new_topo`. Within-flow tunnel
    /// order is preserved; flows are re-sorted by their *new* (src, dst)
    /// ids, mirroring how a controller on the relabeled network would
    /// enumerate them. Panics if a mapped edge is missing in `new_topo`.
    pub fn relabeled(
        &self,
        old_topo: &Topology,
        new_topo: &Topology,
        perm: &[NodeId],
    ) -> TunnelSet {
        let mut entries: Vec<((NodeId, NodeId), Vec<Path>)> = (0..self.num_flows())
            .map(|f| {
                let (s, t) = self.flows[f];
                let paths = self.tunnels[f]
                    .iter()
                    .map(|p| {
                        let edges =
                            p.0.iter()
                                .map(|&e| {
                                    let edge = old_topo.edge(e);
                                    new_topo
                                        .edge_id(perm[edge.src], perm[edge.dst])
                                        .expect("relabeled edge exists in new topology")
                                })
                                .collect();
                        Path(edges)
                    })
                    .collect();
                ((perm[s], perm[t]), paths)
            })
            .collect();
        entries.sort_by_key(|(flow, _)| *flow);
        let (flows, tunnels) = entries.into_iter().unzip();
        TunnelSet { flows, tunnels }
    }
}

/// Tunnel churn between two tunnel sets (fractions relative to each set):
/// `(common_in_b, unique_to_b, unique_to_a)` as counts of node sequences.
pub fn tunnel_churn(
    a: &TunnelSet,
    topo_a: &Topology,
    b: &TunnelSet,
    topo_b: &Topology,
) -> (usize, usize, usize) {
    use std::collections::HashSet;
    let sa: HashSet<Vec<NodeId>> = a.node_sequences(topo_a).into_iter().collect();
    let sb: HashSet<Vec<NodeId>> = b.node_sequences(topo_b).into_iter().collect();
    let common = sb.intersection(&sa).count();
    let only_b = sb.len() - common;
    let only_a = sa.len() - sa.intersection(&sb).count();
    (common, only_b, only_a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn square() -> Topology {
        let mut t = Topology::new(4);
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 2, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        t.add_link(3, 0, 1.0).unwrap();
        t
    }

    #[test]
    fn k_shortest_all_pairs() {
        let t = square();
        let ts = TunnelSet::k_shortest(&t, &[0, 1, 2, 3], 2, 0.0);
        assert_eq!(ts.num_flows(), 12);
        // every flow on a cycle has exactly 2 simple paths
        assert_eq!(ts.num_tunnels(), 24);
        assert_eq!(ts.max_tunnel_len(), 3);
        for (f, _, p) in ts.iter_flat() {
            let (s, d) = ts.flows()[f];
            assert!(p.is_valid(&t, s, d));
        }
    }

    #[test]
    fn shuffle_preserves_contents() {
        let t = square();
        let ts = TunnelSet::k_shortest(&t, &[0, 2], 2, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let sh = ts.shuffled(&mut rng);
        assert_eq!(sh.num_flows(), ts.num_flows());
        assert_eq!(sh.num_tunnels(), ts.num_tunnels());
        for f in 0..ts.num_flows() {
            let mut a: Vec<_> = ts.tunnels_of(f).to_vec();
            let mut b: Vec<_> = sh.tunnels_of(f).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tunnels_per_edge_inverts_paths() {
        let t = square();
        let ts = TunnelSet::k_shortest(&t, &[0, 2], 2, 0.0);
        let per_edge = ts.tunnels_per_edge(&t);
        let mut total = 0usize;
        for (e, tids) in per_edge.iter().enumerate() {
            for &tid in tids {
                let (_, _, p) = ts.iter_flat().nth(tid).unwrap();
                assert!(p.0.contains(&e));
                total += 1;
            }
        }
        let hops: usize = ts.iter_flat().map(|(_, _, p)| p.len()).sum();
        assert_eq!(total, hops);
    }

    #[test]
    fn churn_detects_changes() {
        let t = square();
        let a = TunnelSet::k_shortest(&t, &[0, 2], 2, 0.0);
        // after failing link 0-1, only one path family remains
        let mut t2 = square();
        for (u, v) in [(0, 1), (1, 0)] {
            let e = t2.edge_id(u, v).unwrap();
            t2.set_capacity(e, 0.0).unwrap();
        }
        let b = TunnelSet::k_shortest(&t2, &[0, 2], 2, 0.0);
        let (common, only_b, only_a) = tunnel_churn(&a, &t, &b, &t2);
        assert!(common > 0);
        assert_eq!(only_b, 0); // b's paths are a subset of a's
        assert!(only_a > 0);
    }

    #[test]
    fn without_edges_drops_exactly_traversing_tunnels() {
        let t = square();
        let ts = TunnelSet::k_shortest(&t, &[0, 1, 2, 3], 2, 0.0);
        let e01 = t.edge_id(0, 1).unwrap();
        let failed: std::collections::BTreeSet<usize> = [e01].into_iter().collect();
        let pruned = ts.without_edges(&failed);
        assert!(pruned.avoids_edge(e01));
        assert!(pruned.num_tunnels() < ts.num_tunnels());
        // every surviving path existed in the original set, same flow
        for (f, _, p) in pruned.iter_flat() {
            let (s, d) = pruned.flows()[f];
            let orig = ts.flow_index(s, d).expect("flow survives from original");
            assert!(ts.tunnels_of(orig).contains(p));
        }
        // pruning the empty set is the identity
        assert_eq!(ts.without_edges(&Default::default()), ts);
        // idempotent
        assert_eq!(pruned.without_edges(&failed), pruned);
    }

    #[test]
    fn without_edges_drops_flows_with_no_survivors() {
        // path graph 0-1-2: flow (0,2) has exactly one tunnel through both
        // edges; failing 0->1 kills the flow entirely.
        let mut t = Topology::new(3);
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 2, 1.0).unwrap();
        let ts = TunnelSet::k_shortest(&t, &[0, 2], 2, 0.0);
        assert_eq!(ts.num_flows(), 2);
        let e01 = t.edge_id(0, 1).unwrap();
        let failed: std::collections::BTreeSet<usize> = [e01].into_iter().collect();
        let pruned = ts.without_edges(&failed);
        assert_eq!(pruned.num_flows(), 1);
        assert_eq!(pruned.flows(), &[(2, 0)]);
    }

    #[test]
    fn flow_index_lookup() {
        let t = square();
        let ts = TunnelSet::k_shortest(&t, &[0, 2], 2, 0.0);
        assert_eq!(ts.flow_index(0, 2), Some(0));
        assert_eq!(ts.flow_index(2, 0), Some(1));
        assert_eq!(ts.flow_index(1, 2), None);
    }
}
