//! Yen's algorithm for k shortest simple paths (by hop count, deterministic
//! tie-breaking by the path's edge-id sequence).

use std::collections::BTreeSet;

use harp_topology::{NodeId, Topology};

/// Candidate ordering key: (hops, node sequence). Node sequences are
/// stable across topology rebuilds (edge ids are not), which keeps tunnel
/// sets aligned when a WAN evolves — see `harp-datasets`' churn stats.
type CandKey = (usize, Vec<NodeId>);

use crate::dijkstra::{shortest_path, PathFilter};
use crate::Path;

/// The `k` shortest simple paths from `src` to `dst` (hop-count metric,
/// lexicographic edge-id tie-break). Returns fewer than `k` paths when the
/// graph does not contain that many simple paths. Edges with capacity <=
/// `cap_threshold` are excluded.
pub fn k_shortest_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
    cap_threshold: f64,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let base_filter = PathFilter::none(topo);
    let first = match shortest_path(topo, src, dst, &base_filter, cap_threshold) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut result: Vec<Path> = vec![first];
    // Candidate set ordered by (hops, node sequence) for determinism that
    // survives edge relabeling.
    let mut candidates: BTreeSet<(CandKey, Path)> = BTreeSet::new();

    while result.len() < k {
        let last = match result.last() {
            Some(p) => p.clone(),
            None => break,
        };
        let last_nodes = last.nodes(topo);

        for spur_idx in 0..last.len() {
            let spur_node = last_nodes[spur_idx];
            let root_edges = &last.0[..spur_idx];

            let mut filter = PathFilter::none(topo);
            // Ban edges that would recreate an already-found path with the
            // same root.
            for p in &result {
                if p.0.len() > spur_idx && p.0[..spur_idx] == *root_edges {
                    filter.banned_edges[p.0[spur_idx]] = true;
                }
            }
            // Ban root-path nodes (except the spur node) to keep paths simple.
            for &n in &last_nodes[..spur_idx] {
                filter.banned_nodes[n] = true;
            }

            if let Some(spur) = shortest_path(topo, spur_node, dst, &filter, cap_threshold) {
                let mut total = root_edges.to_vec();
                total.extend_from_slice(&spur.0);
                let total = Path(total);
                debug_assert!(total.is_valid(topo, src, dst));
                if !result.contains(&total) {
                    let key = (total.len(), total.nodes(topo));
                    candidates.insert((key, total));
                }
            }
        }

        match candidates.iter().next().cloned() {
            Some(best) => {
                candidates.remove(&best);
                result.push(best.1);
            }
            None => break,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Topology {
        let mut t = Topology::new(6);
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 3, 1.0).unwrap();
        t.add_link(0, 2, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        t.add_link(0, 4, 1.0).unwrap();
        t.add_link(4, 5, 1.0).unwrap();
        t.add_link(5, 3, 1.0).unwrap();
        t
    }

    #[test]
    fn finds_all_three_paths_in_order() {
        let t = diamond();
        let ps = k_shortest_paths(&t, 0, 3, 5, 0.0);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].nodes(&t), vec![0, 1, 3]);
        assert_eq!(ps[1].nodes(&t), vec![0, 2, 3]);
        assert_eq!(ps[2].nodes(&t), vec![0, 4, 5, 3]);
        // non-decreasing lengths
        assert!(ps.windows(2).all(|w| w[0].len() <= w[1].len()));
        // all simple and distinct
        for p in &ps {
            assert!(p.is_simple(&t));
        }
    }

    #[test]
    fn k_limits_output() {
        let t = diamond();
        let ps = k_shortest_paths(&t, 0, 3, 2, 0.0);
        assert_eq!(ps.len(), 2);
        assert!(k_shortest_paths(&t, 0, 3, 0, 0.0).is_empty());
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut t = Topology::new(4);
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        assert!(k_shortest_paths(&t, 0, 3, 3, 0.0).is_empty());
    }

    #[test]
    fn dense_graph_many_paths() {
        // complete graph on 5 nodes: plenty of simple paths 0 -> 4
        let mut t = Topology::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                t.add_link(u, v, 1.0).unwrap();
            }
        }
        let ps = k_shortest_paths(&t, 0, 4, 8, 0.0);
        assert_eq!(ps.len(), 8);
        let unique: std::collections::HashSet<_> = ps.iter().collect();
        assert_eq!(unique.len(), 8);
        for p in &ps {
            assert!(p.is_valid(&t, 0, 4));
            assert!(p.is_simple(&t));
        }
    }
}
