//! Deterministic Dijkstra over hop count with optional node/edge bans —
//! the primitive Yen's algorithm builds on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use harp_topology::{EdgeId, NodeId, Topology};

use crate::Path;

/// Node/edge exclusion sets for a constrained shortest-path query.
#[derive(Clone, Debug, Default)]
pub struct PathFilter {
    /// Banned directed edges (e.g. the deviating edges in Yen's loop).
    pub banned_edges: Vec<bool>,
    /// Banned nodes (e.g. the root-path prefix in Yen's loop).
    pub banned_nodes: Vec<bool>,
}

impl PathFilter {
    /// A filter banning nothing, sized for `topo`.
    pub fn none(topo: &Topology) -> Self {
        PathFilter {
            banned_edges: vec![false; topo.num_edges()],
            banned_nodes: vec![false; topo.num_nodes()],
        }
    }
}

#[derive(PartialEq, Eq)]
struct HeapItem {
    dist: u64,
    node: NodeId,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap by (dist, node id) for determinism
        other
            .dist
            .cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest path by hop count from `src` to `dst`, ignoring banned
/// nodes/edges and edges with capacity <= `cap_threshold`. Ties are broken
/// deterministically by preferring the lowest predecessor edge id.
///
/// Returns `None` when `dst` is unreachable.
pub fn shortest_path(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    filter: &PathFilter,
    cap_threshold: f64,
) -> Option<Path> {
    assert!(
        src < topo.num_nodes() && dst < topo.num_nodes(),
        "endpoint range"
    );
    if src == dst || filter.banned_nodes[src] || filter.banned_nodes[dst] {
        return None;
    }
    let n = topo.num_nodes();
    let mut dist = vec![u64::MAX; n];
    let mut pred_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(HeapItem { dist: 0, node: src });

    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == dst {
            break;
        }
        for &(v, e) in topo.out_neighbors(u) {
            if filter.banned_edges[e] || filter.banned_nodes[v] {
                continue;
            }
            if topo.capacity(e) <= cap_threshold {
                continue;
            }
            let nd = d + 1;
            // Tie-break on the *predecessor node id* (not the edge id):
            // node ids are stable across topology rebuilds while edge ids
            // shift, so recomputed tunnel sets stay maximally aligned.
            let better = nd < dist[v]
                || (nd == dist[v]
                    && pred_edge[v].is_some_and(|pe| topo.edge(e).src < topo.edge(pe).src));
            if better {
                dist[v] = nd;
                pred_edge[v] = Some(e);
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }

    if dist[dst] == u64::MAX {
        return None;
    }
    let mut edges = Vec::new();
    let mut cur = dst;
    while cur != src {
        let e = pred_edge[cur].expect("predecessor chain");
        edges.push(e);
        cur = topo.edge(e).src;
    }
    edges.reverse();
    Some(Path(edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Topology {
        // 0 -> {1, 2} -> 3, plus long way 0 -> 4 -> 5 -> 3
        let mut t = Topology::new(6);
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 3, 1.0).unwrap();
        t.add_link(0, 2, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        t.add_link(0, 4, 1.0).unwrap();
        t.add_link(4, 5, 1.0).unwrap();
        t.add_link(5, 3, 1.0).unwrap();
        t
    }

    #[test]
    fn finds_shortest_and_is_deterministic() {
        let t = diamond();
        let f = PathFilter::none(&t);
        let p = shortest_path(&t, 0, 3, &f, 0.0).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.is_valid(&t, 0, 3));
        // deterministic tie-break: the 0->1->3 path has lower edge ids
        let p2 = shortest_path(&t, 0, 3, &f, 0.0).unwrap();
        assert_eq!(p, p2);
        let nodes = p.nodes(&t);
        assert_eq!(nodes, vec![0, 1, 3]);
    }

    #[test]
    fn respects_bans() {
        let t = diamond();
        let mut f = PathFilter::none(&t);
        f.banned_nodes[1] = true;
        let p = shortest_path(&t, 0, 3, &f, 0.0).unwrap();
        assert_eq!(p.nodes(&t), vec![0, 2, 3]);
        f.banned_nodes[2] = true;
        let p = shortest_path(&t, 0, 3, &f, 0.0).unwrap();
        assert_eq!(p.nodes(&t), vec![0, 4, 5, 3]);
        f.banned_nodes[4] = true;
        assert!(shortest_path(&t, 0, 3, &f, 0.0).is_none());
    }

    #[test]
    fn respects_capacity_threshold() {
        let mut t = diamond();
        for (u, v) in [(0, 1), (1, 0)] {
            let e = t.edge_id(u, v).unwrap();
            t.set_capacity(e, 1e-5).unwrap();
        }
        let f = PathFilter::none(&t);
        let p = shortest_path(&t, 0, 3, &f, 1e-3).unwrap();
        assert_eq!(p.nodes(&t), vec![0, 2, 3]);
    }

    #[test]
    fn no_path_to_self() {
        let t = diamond();
        let f = PathFilter::none(&t);
        assert!(shortest_path(&t, 2, 2, &f, 0.0).is_none());
    }
}
