//! Structural analysis: degrees, node capacity sums, betweenness
//! centrality, and the node-feature vectors HARP's GNN consumes.

use crate::graph::Topology;

/// Out-degree of every node (directed).
pub fn degrees(topo: &Topology) -> Vec<usize> {
    let mut deg = vec![0usize; topo.num_nodes()];
    for e in topo.edges() {
        deg[e.src] += 1;
    }
    deg
}

/// Sum of outgoing-edge capacities per node (the paper's first node
/// feature: "total capacity of edges connected to the node").
pub fn total_node_capacity(topo: &Topology) -> Vec<f64> {
    let mut cap = vec![0.0f64; topo.num_nodes()];
    for e in topo.edges() {
        cap[e.src] += e.capacity;
    }
    cap
}

/// The `[n, 2]` node-feature matrix used by HARP's GNN: per node, total
/// adjacent capacity and degree, both scaled for numeric stability
/// (capacity divided by the mean positive capacity, degree by max degree).
pub fn node_features(topo: &Topology) -> Vec<f32> {
    let caps = total_node_capacity(topo);
    let deg = degrees(topo);
    let mean_cap = {
        let pos: Vec<f64> = caps.iter().copied().filter(|c| *c > 0.0).collect();
        if pos.is_empty() {
            1.0
        } else {
            pos.iter().sum::<f64>() / pos.len() as f64
        }
    };
    let max_deg = deg.iter().copied().max().unwrap_or(1).max(1) as f64;
    let mut out = Vec::with_capacity(topo.num_nodes() * 2);
    for i in 0..topo.num_nodes() {
        out.push((caps[i] / mean_cap) as f32);
        out.push((deg[i] as f64 / max_deg) as f32);
    }
    out
}

/// Brandes' betweenness centrality on the unweighted directed graph
/// (edges with capacity <= `cap_threshold` are ignored). Used for dataset
/// analysis and for choosing "important" links in failure drills.
pub fn betweenness_centrality(topo: &Topology, cap_threshold: f64) -> Vec<f64> {
    let n = topo.num_nodes();
    let mut bc = vec![0.0f64; n];
    for s in 0..n {
        // BFS from s.
        let mut stack = Vec::with_capacity(n);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &(w, eid) in topo.out_neighbors(v) {
                if topo.capacity(eid) <= cap_threshold {
                    continue;
                }
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                bc[w] += delta[w];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Topology {
        // 0 - 1 - 2 (bidirectional)
        let mut t = Topology::new(3);
        t.add_link(0, 1, 5.0).unwrap();
        t.add_link(1, 2, 7.0).unwrap();
        t
    }

    #[test]
    fn degrees_and_capacity() {
        let t = path3();
        assert_eq!(degrees(&t), vec![1, 2, 1]);
        assert_eq!(total_node_capacity(&t), vec![5.0, 12.0, 7.0]);
    }

    #[test]
    fn features_shape_and_scaling() {
        let t = path3();
        let f = node_features(&t);
        assert_eq!(f.len(), 6);
        // degree feature of the middle node is 1 (max degree)
        assert!((f[3] - 1.0).abs() < 1e-6);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn betweenness_middle_node_dominates() {
        let t = path3();
        let bc = betweenness_centrality(&t, 0.0);
        assert!(bc[1] > bc[0]);
        assert!(bc[1] > bc[2]);
        // node 1 lies on 0->2 and 2->0 shortest paths: bc = 2
        assert!((bc[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_respects_failed_links() {
        let mut t = Topology::new(4);
        // square: two paths between 0 and 2
        t.add_link(0, 1, 1.0).unwrap();
        t.add_link(1, 2, 1.0).unwrap();
        t.add_link(2, 3, 1.0).unwrap();
        t.add_link(3, 0, 1.0).unwrap();
        let bc_full = betweenness_centrality(&t, 0.0);
        // fail link 1-2 both ways
        let e = t.edge_id(1, 2).unwrap();
        t.set_capacity(e, 0.0).unwrap();
        let e = t.edge_id(2, 1).unwrap();
        t.set_capacity(e, 0.0).unwrap();
        let bc_cut = betweenness_centrality(&t, 0.0);
        // node 3 becomes more central than before
        assert!(bc_cut[3] > bc_full[3]);
    }
}
