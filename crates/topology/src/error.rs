//! Error type for topology construction and mutation.

use std::fmt;

/// Errors raised by [`crate::Topology`] construction/mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A node id was outside `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the topology.
        num_nodes: usize,
    },
    /// Attempted to add a self-loop.
    SelfLoop {
        /// The node on which a self loop was attempted.
        node: usize,
    },
    /// The directed edge already exists.
    DuplicateEdge {
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
    },
    /// A negative capacity was supplied.
    NegativeCapacity {
        /// The offending capacity.
        capacity: f64,
    },
    /// An edge id was outside `0..num_edges`.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: usize,
        /// The number of edges in the topology.
        num_edges: usize,
    },
    /// A permutation was not a bijection over the node set.
    InvalidPermutation,
    /// A path with no edges was used where a node sequence is required.
    EmptyPath,
    /// A path's edges do not chain head-to-tail at this edge.
    NonContiguousPath {
        /// The first edge whose source is not the previous edge's
        /// destination.
        edge: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (num_nodes = {num_nodes})")
            }
            TopologyError::SelfLoop { node } => write!(f, "self loop on node {node}"),
            TopologyError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            TopologyError::NegativeCapacity { capacity } => {
                write!(f, "negative capacity {capacity}")
            }
            TopologyError::EdgeOutOfRange { edge, num_edges } => {
                write!(f, "edge {edge} out of range (num_edges = {num_edges})")
            }
            TopologyError::InvalidPermutation => write!(f, "invalid node permutation"),
            TopologyError::EmptyPath => write!(f, "empty path has no node sequence"),
            TopologyError::NonContiguousPath { edge } => {
                write!(f, "path edges are not contiguous at edge {edge}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}
