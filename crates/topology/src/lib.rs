//! # harp-topology
//!
//! WAN topology modelling for the HARP reproduction: directed capacitated
//! graphs, node/edge permutations (for invariance testing), failure
//! injection (full and partial link failures), structural analysis
//! (connectivity, degrees, betweenness centrality), and seeded synthetic
//! WAN generators used to stand in for Topology-Zoo graphs.
//!
//! Conventions:
//!
//! * Links are modelled as **pairs of directed edges**; capacities may be
//!   asymmetric (the paper's edge embedding makes `h_ij == h_ji` exactly
//!   when `C_ij == C_ji`, so direction matters).
//! * Node and edge ids are dense `usize` indices; relabeling produces a new
//!   [`Topology`] plus the mapping.
//! * Capacities are `f64` (the optimization side runs in double precision;
//!   the neural side converts to `f32` at instance compilation).

mod analysis;
mod error;
mod generate;
mod graph;
mod perturb;

pub use analysis::{betweenness_centrality, degrees, node_features, total_node_capacity};
pub use error::TopologyError;
pub use generate::{geometric_wan, ring_of_rings, GeometricConfig};
pub use graph::{Edge, EdgeId, NodeId, Topology};
pub use perturb::{
    fail_link_partial, random_partial_failures, undirected_link_ids, PartialFailure,
};
